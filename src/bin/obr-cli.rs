//! Interactive shell over a durable obr database.
//!
//! ```text
//! obr-cli <dir> [--pages N] [--segment-bytes B]
//! obr-cli check <dir> [--tree] [--locks] [--wal] [--all] [--live]
//! obr-cli check --crash [--budget N] [--seed S] [--segment-bytes B] [--report PATH]
//! obr-cli check --lint [--root DIR]
//! obr-cli check --protocol [--root DIR] [--report PATH]
//! obr-cli stats <dir> [--json]
//! obr-cli stats --workload [--json] [--keep DIR]
//! obr-cli trace [--out PATH]
//! obr-cli replica <dir> [--json]
//! obr-cli serve <dir> [--addr A] [--pages N] [--segment-bytes B]
//!                     [--max-sessions N] [--queue N]
//! obr-cli client <addr> <op> [args...]
//! obr-cli scenario <name>|all [--dir DIR] [--clients N] [--scale F]
//!                             [--out PATH] [--snapshots DIR]
//! ```
//!
//! Shell commands: `put K V`, `get K`, `del K`, `scan LO HI`, `stats`,
//! `reorg`, `reorg auto`, `checkpoint`, `truncate-log`, `help`, `quit`.
//! Data is durable across runs (pages + WAL live under `<dir>`; recovery
//! runs on startup).
//!
//! `check` has four modes, all sharing one exit-code contract (0 = clean
//! or warnings only, 1 = at least one error-severity finding, 2 = usage or
//! I/O problem before any checking ran):
//!
//! | mode              | what it checks                                     |
//! |-------------------|----------------------------------------------------|
//! | `check <dir>`     | files under `<dir>` without opening the database:  |
//! |                   | tree fsck over `pages.db` (`--tree`), WAL linter   |
//! |                   | over the segment dir `wal/` (or a legacy `wal.log` |
//! |                   | file) via `--wal`, lock-protocol model             |
//! |                   | checker (`--locks`, needs no files); default `--all` |
//! | `check <dir> --live` | opens and recovers the database, then walks the |
//! |                   | live sharded buffer pool (non-perturbing)          |
//! | `check --crash`   | exhaustive crash-consistency checker over scripted |
//! |                   | workloads; `--budget N --seed S` picks a           |
//! |                   | deterministic sample for CI, `--segment-bytes B`   |
//! |                   | sets the segmented-WAL scenario's seal threshold   |
//! | `check --lint`    | concurrency source lint over the workspace tree at |
//! |                   | `--root DIR` (default `.`): unjustified            |
//! |                   | `Ordering::Relaxed`, raw `std::sync`/`parking_lot` |
//! |                   | imports bypassing the `obr-sync` facade, lock      |
//! |                   | calls inside `unsafe`, undocumented `unsafe`, and  |
//! |                   | staleness of the lint whitelist itself             |
//! | `check --protocol` | interprocedural protocol checker over the engine  |
//! |                   | sources at `--root DIR` (default `.`): builds a    |
//! |                   | whole-workspace call graph and proves              |
//! |                   | WAL-before-data on every static mutation path,     |
//! |                   | latch-acquisition orders against the vetted        |
//! |                   | `check/lockorder.toml` manifest, and               |
//! |                   | Release/Acquire pairing of atomic publication;     |
//! |                   | `--report PATH` writes the full report to a file   |
//!
//! `stats` prints the metrics registry — every counter, gauge (with its
//! peak) and histogram documented in DESIGN.md "Observability" — either as
//! an aligned table or, with `--json`, one JSON object. `stats <dir>`
//! opens and recovers the durable database under `<dir>` first (so the
//! recovery and tree-shape metrics reflect that database); `stats
//! --workload` instead runs the scripted mixed workload of
//! [`obr::workloads::mixed_reorg_workload`] — reorganization passes racing
//! live updaters — in a temporary directory (kept only with `--keep DIR`)
//! and reports the metrics it produced.
//!
//! `trace` runs the deterministic scripted reorganization of
//! [`obr::workloads::scripted_reorg_trace`] and emits its structured trace
//! as JSON Lines — one event per line, schema documented in DESIGN.md — to
//! stdout or to `--out PATH`.
//!
//! `serve <dir>` opens (or creates) the durable database under `<dir>`
//! and serves it over TCP with the length-prefixed wire protocol of
//! PROTOCOL.md — per-connection sessions, admission control
//! (`--max-sessions` / `--queue`), and WAL segment shipping for network
//! replicas. The bound address is printed on startup (`--addr` defaults
//! to `127.0.0.1:4140`; port 0 picks a free port). Typing `quit` (or
//! closing stdin) drains sessions, checkpoints, and exits.
//!
//! `client <addr> <op>` runs one wire-protocol operation against a
//! running server and prints the result: `ping`, `get K`, `put K V`,
//! `del K`, `scan LO HI [LIMIT]`, `stats`, `checkpoint`,
//! `reorg [--force]`, `info`. It is a smoke-test and scripting tool, not
//! a shell; the exit code is 0 on success, 1 on a server-reported error.
//!
//! `scenario <name>|all` runs the scripted end-to-end scenario suite of
//! [`obr::server::scenario`] — each scenario boots a real server, drives
//! it with concurrent wire clients, and ends with a full integrity check
//! (`bulk-load`, `steady-churn`, `delete-epoch`, `reorg-under-load`,
//! `crash-restart`). `--out` writes the machine-readable reports,
//! `--snapshots DIR` keeps one metrics snapshot per phase (the CI
//! artifacts), and the exit code is 1 if any scenario fails its check.
//!
//! `replica <dir>` bootstraps a log-shipping read replica from the durable
//! files of the primary database under `<dir>` (never modifying them) and
//! catches it up by ingesting every WAL segment, then prints the shipping
//! progress — applied LSN, records/segments applied, checkpoints and tree
//! switches followed, keys visible — as a table or (`--json`) one JSON
//! object; CI uploads the JSON as the replica-lag artifact. When creating
//! a database, the shell's `--segment-bytes B` sets the WAL seal
//! threshold, so a small value forces the workload to seal segments for
//! the replica to ship.

use std::io::{BufRead, Write};
use std::sync::Arc;

use obr::btree::SidePointerMode;
use obr::core::{recover, Database, ReorgConfig, ReorgTrigger, Reorganizer};
use obr::txn::{Session, TxnError};

/// `obr-cli check <dir> [--tree] [--locks] [--wal] [--all] [--live]`,
/// `obr-cli check --crash [--budget N] [--seed S] [--segment-bytes B]
/// [--report PATH]`, `obr-cli check --lint [--root DIR]`, or
/// `obr-cli check --protocol [--root DIR] [--report PATH]`.
///
/// Selecting no family is the same as `--all`. With `--live` the database is
/// opened and recovered first, and the tree fsck walks the live sharded
/// buffer pool (via the non-perturbing [`obr::check::PoolSource`]) instead
/// of the raw page file — this is what a post-stress-run health check uses.
/// `--crash` needs no `<dir>`: it enumerates crash states of its own
/// scripted workloads (exhaustive by default; `--budget`/`--seed` pick a
/// deterministic sample; `--segment-bytes` sets the segmented-WAL
/// scenario's seal threshold) and optionally writes the full report to
/// `--report PATH`. `--lint` also needs no `<dir>`: it walks the `.rs`
/// sources under `--root DIR` (default the current directory) with the
/// concurrency source lint of [`obr::check::lint_sources`] and validates
/// the `Relaxed`-whitelist with [`obr::check::check_whitelist`].
/// `--protocol` likewise needs no `<dir>`: it runs the interprocedural
/// protocol checker of [`obr::check::check_protocol`] over the engine
/// sources and the lock-order manifest under `--root DIR` (default the
/// current directory). Never exits through the shell path: the process
/// status is the check result, non-zero only for error-severity findings.
fn run_check(args: &[String]) -> ! {
    const USAGE: &str = "usage: obr-cli check <dir> [--tree] [--locks] [--wal] [--all] [--live]\n\
                         \x20      obr-cli check --crash [--budget N] [--seed S] \
                         [--segment-bytes B] [--report PATH]\n\
                         \x20      obr-cli check --lint [--root DIR]\n\
                         \x20      obr-cli check --protocol [--root DIR] [--report PATH]";
    let mut dir: Option<std::path::PathBuf> = None;
    let (mut tree, mut locks, mut wal, mut live, mut crash) = (false, false, false, false, false);
    let mut lint = false;
    let mut protocol = false;
    let mut root: Option<std::path::PathBuf> = None;
    let mut budget: Option<usize> = None;
    let mut seed: u64 = 1;
    let mut segment_bytes: Option<u64> = None;
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tree" => tree = true,
            "--locks" => locks = true,
            "--wal" => wal = true,
            "--live" => live = true,
            "--crash" => crash = true,
            "--lint" => lint = true,
            "--protocol" => protocol = true,
            "--root" => match it.next() {
                Some(p) => root = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--all" => {
                tree = true;
                locks = true;
                wal = true;
            }
            "--budget" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => budget = Some(n),
                None => {
                    eprintln!("--budget needs a number\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("--seed needs a number\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--segment-bytes" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => segment_bytes = Some(n),
                None => {
                    eprintln!("--segment-bytes needs a number\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--report" => match it.next() {
                Some(p) => report_path = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--report needs a path\n{USAGE}");
                    std::process::exit(2);
                }
            },
            other if !other.starts_with("--") && dir.is_none() => {
                dir = Some(std::path::PathBuf::from(other));
            }
            other => {
                eprintln!("unknown check argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if lint {
        let root = root.unwrap_or_else(|| std::path::PathBuf::from("."));
        if !root.is_dir() {
            eprintln!("--root {} is not a directory", root.display());
            std::process::exit(2);
        }
        println!("== concurrency source lint: {}", root.display());
        let mut report = obr::check::lint_sources(&root);
        report.merge(obr::check::check_whitelist(&root));
        print!("{report}");
        exit_with(&report);
    }
    if protocol {
        let root = root.unwrap_or_else(|| std::path::PathBuf::from("."));
        if !root.is_dir() {
            eprintln!("--root {} is not a directory", root.display());
            std::process::exit(2);
        }
        println!("== interprocedural protocol check: {}", root.display());
        let report = match obr::check::check_protocol(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot scan {}: {e}", root.display());
                std::process::exit(2);
            }
        };
        print!("{report}");
        if let Some(path) = report_path {
            if let Err(e) = std::fs::write(&path, format!("{report}")) {
                eprintln!("cannot write report to {}: {e}", path.display());
                std::process::exit(2);
            }
            println!("report written to {}", path.display());
        }
        exit_with(&report);
    }
    if crash {
        println!("== crash-consistency check");
        let mut opts = obr::check::CrashCheckOptions {
            budget,
            seed,
            ..obr::check::CrashCheckOptions::default()
        };
        if let Some(b) = segment_bytes {
            opts.segment_bytes = b;
        }
        let out = obr::check::run_crash_check(&opts);
        print!("{}", out.report);
        println!(
            "coverage: {}/{} crash states, {} torn tails, {} segment states, \
             {} forward completions, {} pass-3 resumes",
            out.stats.states_checked,
            out.stats.crash_states,
            out.stats.torn_tails_checked,
            out.stats.segment_states_checked,
            out.stats.forward_units_completed,
            out.stats.pass3_resumes
        );
        if let Some(path) = report_path {
            let body = format!("{}{:#?}\n", out.report, out.stats);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write report to {}: {e}", path.display());
                std::process::exit(2);
            }
            println!("report written to {}", path.display());
        }
        exit_with(&out.report);
    }
    if !(tree || locks || wal) {
        tree = true;
        locks = true;
        wal = true;
    }
    // The lock checker is self-contained; the other two need <dir>.
    if (tree || wal || live) && dir.is_none() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    if live {
        let dir = dir.as_ref().unwrap();
        println!("== live check: {}", dir.display());
        let db = match Database::open_durable(dir, 1024, SidePointerMode::TwoWay) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot open {}: {e}", dir.display());
                std::process::exit(2);
            }
        };
        if let Err(e) = recover(&db) {
            eprintln!("recovery failed: {e}");
            std::process::exit(2);
        }
        println!(
            "pool: {} shards, {}/{} frames resident",
            db.pool().shard_count(),
            db.pool().resident(),
            db.pool().capacity()
        );
        let report = obr::check::check_database(&db);
        print!("{report}");
        exit_with(&report);
    }

    let mut report = obr::check::Report::new();
    if tree {
        let path = dir.as_ref().unwrap().join("pages.db");
        println!("== tree fsck: {}", path.display());
        match obr::check::fsck_file(&path, &obr::check::FsckOptions::default()) {
            Ok(result) => report.merge(result.report),
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if wal {
        // Prefer the segmented layout; fall back to a legacy single file.
        let base = dir.as_ref().unwrap();
        let wal_dir = base.join("wal");
        let path = if wal_dir.is_dir() {
            wal_dir
        } else {
            base.join("wal.log")
        };
        println!("== wal lint: {}", path.display());
        match obr::check::lint_wal_path(&path, &obr::check::WalLintOptions::default()) {
            Ok(r) => report.merge(r),
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if locks {
        println!("== lock-protocol model check");
        report.merge(obr::check::check_lock_protocol());
    }
    print!("{report}");
    exit_with(&report);
}

/// Exit policy shared by every check mode: warnings are advisory, only
/// error-severity findings fail the process.
fn exit_with(report: &obr::check::Report) -> ! {
    if report.has_errors() {
        println!(
            "FAILED: {} findings ({} errors)",
            report.findings.len(),
            report.error_count()
        );
        std::process::exit(1);
    }
    if report.is_clean() {
        println!("OK");
    } else {
        println!(
            "OK with {} warning finding(s); none are errors",
            report.findings.len()
        );
    }
    std::process::exit(0);
}

/// `obr-cli stats <dir> [--json]` or
/// `obr-cli stats --workload [--json] [--keep DIR]`.
///
/// Prints the full metrics-registry snapshot of a database: for `<dir>`,
/// the durable database there (opened and recovered first); for
/// `--workload`, a scratch database that just ran the scripted mixed
/// workload (reorganization under concurrent updaters), which exercises
/// the counters only concurrency can produce — forgone RX conflicts,
/// side-file backlog, WAL group-commit batching.
fn run_stats(args: &[String]) -> ! {
    const USAGE: &str = "usage: obr-cli stats <dir> [--json]\n\
                         \x20      obr-cli stats --workload [--json] [--keep DIR]";
    let mut dir: Option<std::path::PathBuf> = None;
    let (mut json, mut workload) = (false, false);
    let mut keep: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--workload" => workload = true,
            "--keep" => match it.next() {
                Some(p) => keep = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--keep needs a directory\n{USAGE}");
                    std::process::exit(2);
                }
            },
            other if !other.starts_with("--") && dir.is_none() => {
                dir = Some(std::path::PathBuf::from(other));
            }
            other => {
                eprintln!("unknown stats argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let (db, scratch) = if workload {
        let scratch = keep.is_none().then(|| {
            std::env::temp_dir().join(format!("obr-stats-workload-{}", std::process::id()))
        });
        let target = keep.clone().or_else(|| scratch.clone()).unwrap();
        if !json {
            println!("running scripted mixed workload in {}", target.display());
        }
        match obr::workloads::mixed_reorg_workload(&target) {
            Ok(db) => (db, scratch),
            Err(e) => {
                eprintln!("workload failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        let Some(dir) = dir else {
            eprintln!("{USAGE}");
            std::process::exit(2);
        };
        let db = match Database::open_durable(&dir, 1024, SidePointerMode::TwoWay) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cannot open {}: {e}", dir.display());
                std::process::exit(2);
            }
        };
        if let Err(e) = recover(&db) {
            eprintln!("recovery failed: {e}");
            std::process::exit(2);
        }
        (db, None)
    };
    let snap = match db.metrics_snapshot() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot snapshot metrics: {e}");
            std::process::exit(2);
        }
    };
    if json {
        println!("{}", snap.to_json());
    } else {
        print!("{snap}");
    }
    drop(db);
    if let Some(scratch) = scratch {
        let _ = std::fs::remove_dir_all(scratch);
    }
    std::process::exit(0);
}

/// `obr-cli trace [--out PATH]`: run the deterministic scripted
/// reorganization and emit its structured trace as JSON Lines (schema in
/// DESIGN.md "Observability") to stdout or `PATH`.
fn run_trace(args: &[String]) -> ! {
    const USAGE: &str = "usage: obr-cli trace [--out PATH]";
    let mut out: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown trace argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let (_db, events) = match obr::workloads::scripted_reorg_trace() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scripted reorganization failed: {e}");
            std::process::exit(2);
        }
    };
    let mut body = String::new();
    for e in &events {
        body.push_str(&e.to_json());
        body.push('\n');
    }
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &body) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            println!("{} events written to {}", events.len(), path.display());
        }
        None => print!("{body}"),
    }
    std::process::exit(0);
}

/// `obr-cli replica <dir> [--json]`: catch a log-shipping read replica up
/// from the primary's durable files, offline.
///
/// The replica bootstraps from a scratch copy of the primary's page file
/// (its last flushed state), declares everything below the oldest
/// surviving WAL segment already materialized, then ingests every segment
/// under `<dir>/wal/` — sealed segments whole, the active segment's intact
/// prefix — through the same page-LSN-gated redo recovery uses. Nothing
/// under `<dir>` is modified. Prints the shipping progress (applied LSN,
/// records/segments applied, checkpoints and tree switches followed, keys
/// visible); `--json` emits the same as one JSON object, which CI uploads
/// as the replica-lag artifact. Exits 2 when the catch-up fails — e.g. a
/// torn sealed segment, or a shipping gap that requires re-seeding.
fn run_replica(args: &[String]) -> ! {
    const USAGE: &str = "usage: obr-cli replica <dir> [--json]";
    let mut dir: Option<std::path::PathBuf> = None;
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            other if !other.starts_with("--") && dir.is_none() => {
                dir = Some(std::path::PathBuf::from(other));
            }
            other => {
                eprintln!("unknown replica argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let wal_dir = dir.join("wal");
    let scratch = std::env::temp_dir().join(format!("obr-replica-{}", std::process::id()));
    let outcome = (|| -> Result<(), Box<dyn std::error::Error>> {
        std::fs::create_dir_all(&scratch)?;
        std::fs::copy(dir.join("pages.db"), scratch.join("pages.db"))?;
        let disk = Arc::new(obr::storage::FileDisk::open(&scratch.join("pages.db"), 1)?);
        let db = Database::reopen(
            disk as Arc<dyn obr::storage::DiskManager>,
            Arc::new(obr::wal::LogManager::new()),
            1024,
            SidePointerMode::TwoWay,
        )?;
        let replica = obr::core::Replica::over(db);
        // The snapshot already holds everything below the oldest surviving
        // segment (the primary checkpointed before recycling it).
        if let Some((first, _)) = obr::wal::segment::list_segments(&wal_dir)?.first() {
            replica.set_applied_floor(obr::storage::Lsn(first.0.saturating_sub(1)));
        }
        let applied = replica.ingest_dir(&wal_dir)?;
        let keys = replica.scan_all()?.len();
        let snap = replica.database().metrics_snapshot()?;
        let segments = snap.counter("replica_segments_ingested");
        let lag = snap.gauge("replica_lag");
        if json {
            println!(
                "{{\"applied_lsn\":{},\"records_applied\":{applied},\
                 \"segments_ingested\":{},\"checkpoints_seen\":{},\
                 \"tree_switches\":{},\"keys\":{keys},\"replica_lag\":{}}}",
                replica.applied_lsn().0,
                segments,
                replica.checkpoints_seen(),
                replica.switches_seen(),
                lag,
            );
        } else {
            println!("replica caught up from {}", wal_dir.display());
            println!("  applied LSN        {}", replica.applied_lsn());
            println!("  records applied    {applied}");
            println!("  segments ingested  {segments}");
            println!("  checkpoints seen   {}", replica.checkpoints_seen());
            println!("  tree switches      {}", replica.switches_seen());
            println!("  keys visible       {keys}");
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&scratch);
    match outcome {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("replica catch-up failed: {e}");
            std::process::exit(2);
        }
    }
}

/// `obr-cli serve <dir> [--addr A] [--pages N] [--segment-bytes B]
/// [--max-sessions N] [--queue N]`: serve the durable database under
/// `<dir>` over TCP until `quit` is typed or stdin closes.
///
/// An existing database is opened and recovered; a missing one is
/// created with `--pages` pages. The admission knobs mirror
/// [`obr::core::EngineConfig`]: `--max-sessions` bounds concurrent
/// connections past the handshake, `--queue` bounds in-flight data-plane
/// requests; excess load is answered with a typed `BUSY` error, never
/// queued unboundedly (PROTOCOL.md §6). Shutdown drains in-flight
/// sessions, takes a final checkpoint, and exits 0.
fn run_serve(args: &[String]) -> ! {
    const USAGE: &str = "usage: obr-cli serve <dir> [--addr A] [--pages N] \
                         [--segment-bytes B] [--max-sessions N] [--queue N]";
    let mut dir: Option<std::path::PathBuf> = None;
    let mut addr = String::from("127.0.0.1:4140");
    let mut pages = 16_384u32;
    let mut cfg = obr::core::EngineConfig::default();
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str, usage: &str) -> u64 {
        match it.next().and_then(|s| s.parse().ok()) {
            Some(n) => n,
            None => {
                eprintln!("{name} needs a number\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("--addr needs an address\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--pages" => pages = num(&mut it, "--pages", USAGE) as u32,
            "--segment-bytes" => cfg.wal_segment_bytes = num(&mut it, "--segment-bytes", USAGE),
            "--max-sessions" => cfg.max_sessions = num(&mut it, "--max-sessions", USAGE) as usize,
            "--queue" => cfg.admission_queue = num(&mut it, "--queue", USAGE) as usize,
            other if !other.starts_with("--") && dir.is_none() => {
                dir = Some(std::path::PathBuf::from(other));
            }
            other => {
                eprintln!("unknown serve argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let db = if dir.join("pages.db").exists() {
        let db =
            Database::open_durable(&dir, 1024, SidePointerMode::TwoWay).expect("open database");
        let report = recover(&db).expect("recovery");
        println!(
            "recovered: {} records redone, {} units forward-completed",
            report.redo_applied, report.forward_units_completed
        );
        db
    } else {
        println!("creating new database in {} ({pages} pages)", dir.display());
        Database::create_durable_with_config(
            &dir,
            pages,
            1024,
            SidePointerMode::TwoWay,
            cfg.clone(),
        )
        .expect("create database")
    };
    let server = obr::server::Server::start(
        Arc::clone(&db),
        obr::server::ServerConfig::from_engine(&addr, &cfg),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(2);
    });
    println!(
        "serving {} on {} ({} sessions, queue {}); type quit to stop",
        dir.display(),
        server.local_addr(),
        cfg.max_sessions,
        cfg.admission_queue
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        match line.trim() {
            "quit" | "exit" => break,
            "" => {}
            other => println!("unknown command {other:?}; type quit to stop"),
        }
    }
    println!("draining sessions...");
    match server.shutdown() {
        Ok(()) => {
            println!("bye");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("shutdown checkpoint failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `obr-cli client <addr> <op> [args...]`: one wire-protocol operation
/// against a running `obr-cli serve` instance.
fn run_client(args: &[String]) -> ! {
    const USAGE: &str = "usage: obr-cli client <addr> <op> [args...]\n\
                         \x20  ops: ping | get K | put K V | del K | scan LO HI [LIMIT]\n\
                         \x20       stats | checkpoint | reorg [--force] | info";
    let Some((addr, op)) = args.split_first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let mut client = obr::server::Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(2);
    });
    let key = |s: &String| -> u64 {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad key {s:?}\n{USAGE}");
            std::process::exit(2);
        })
    };
    let strs: Vec<&str> = op.iter().map(String::as_str).collect();
    let outcome: Result<(), obr::server::ClientError> = match strs.as_slice() {
        ["ping"] => client.ping().map(|()| println!("pong")),
        ["get", k] => client.get(key(&k.to_string())).map(|v| match v {
            Some(v) => println!("{}", String::from_utf8_lossy(&v)),
            None => println!("(nil)"),
        }),
        ["put", k, v] => client
            .put(key(&k.to_string()), v.as_bytes())
            .map(|()| println!("ok")),
        ["del", k] => client
            .delete(key(&k.to_string()))
            .map(|v| println!("deleted {}", String::from_utf8_lossy(&v))),
        ["scan", lo, hi] | ["scan", lo, hi, _] => {
            let limit = strs
                .get(3)
                .and_then(|s| s.parse().ok())
                .unwrap_or(obr::server::proto::DEFAULT_SCAN_LIMIT);
            client
                .scan(key(&lo.to_string()), key(&hi.to_string()), limit)
                .map(|(rows, truncated)| {
                    for (k, v) in &rows {
                        println!("{k} = {}", String::from_utf8_lossy(v));
                    }
                    println!(
                        "({} rows{})",
                        rows.len(),
                        if truncated { ", truncated" } else { "" }
                    );
                })
        }
        ["stats"] => client.stats().map(|json| println!("{json}")),
        ["checkpoint"] => client.checkpoint().map(|()| println!("ok")),
        ["reorg"] | ["reorg", "--force"] => {
            client
                .reorg(strs.get(1) == Some(&"--force"))
                .map(|(compacted, swapped, shrunk)| {
                    println!("compacted={compacted} swapped={swapped} shrunk={shrunk}");
                })
        }
        ["info"] => client.db_info().map(|info| {
            println!(
                "pages={} side_mode={:?} first_lsn={} durable_lsn={}",
                info.pages, info.side_mode, info.first_lsn.0, info.durable_lsn.0
            );
        }),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    match outcome {
        Ok(()) => {
            let _ = client.bye();
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `obr-cli scenario <name>|all [--dir DIR] [--clients N] [--scale F]
/// [--out PATH] [--snapshots DIR]`: run the scripted end-to-end scenario
/// suite against a real server over loopback TCP.
fn run_scenarios(args: &[String]) -> ! {
    const USAGE: &str = "usage: obr-cli scenario <name>|all [--dir DIR] [--clients N] \
                         [--scale F] [--out PATH] [--snapshots DIR]";
    let mut which: Option<String> = None;
    let mut opts = obr::server::ScenarioOptions::default();
    let mut out: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => match it.next() {
                Some(p) => opts.dir = std::path::PathBuf::from(p),
                None => {
                    eprintln!("--dir needs a directory\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--clients" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.clients = n,
                None => {
                    eprintln!("--clients needs a number\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--scale" => match it.next().and_then(|s| s.parse().ok()) {
                Some(f) => opts.scale = f,
                None => {
                    eprintln!("--scale needs a number\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    std::process::exit(2);
                }
            },
            "--snapshots" => match it.next() {
                Some(p) => opts.snapshots_dir = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--snapshots needs a directory\n{USAGE}");
                    std::process::exit(2);
                }
            },
            other if !other.starts_with("--") && which.is_none() => {
                which = Some(other.to_string());
            }
            other => {
                eprintln!("unknown scenario argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(which) = which else {
        eprintln!(
            "{USAGE}\n  scenarios: {}",
            obr::server::SCENARIOS.join(", ")
        );
        std::process::exit(2);
    };
    let names: Vec<&str> = if which == "all" {
        obr::server::SCENARIOS.to_vec()
    } else if obr::server::SCENARIOS.contains(&which.as_str()) {
        vec![which.as_str()]
    } else {
        eprintln!(
            "unknown scenario {which:?}; known: {} (or `all`)",
            obr::server::SCENARIOS.join(", ")
        );
        std::process::exit(2);
    };
    let mut reports = Vec::new();
    let mut failed = false;
    for name in names {
        println!("== scenario: {name}");
        match obr::server::run_scenario(name, &opts) {
            Ok(report) => {
                for p in &report.phases {
                    println!("  {:<16} {:>7} ops, {} errors", p.name, p.ops, p.errors);
                }
                println!(
                    "  {} ({} ops total): {}",
                    name,
                    report.total_ops(),
                    if report.check_clean {
                        "check clean"
                    } else {
                        failed = true;
                        "CHECK DIRTY"
                    }
                );
                if !report.check_clean {
                    println!("  {}", report.check_summary);
                }
                reports.push(report);
            }
            Err(e) => {
                println!("  FAILED: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = out {
        let mut body = String::from("[\n");
        for (i, r) in reports.iter().enumerate() {
            body.push_str(&r.to_json());
            body.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
        }
        body.push_str("]\n");
        if let Err(e) = std::fs::write(&path, &body) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("reports written to {}", path.display());
    }
    std::process::exit(i32::from(failed));
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("check") {
        run_check(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("stats") {
        run_stats(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("trace") {
        run_trace(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("replica") {
        run_replica(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("serve") {
        run_serve(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("client") {
        run_client(&raw[1..]);
    }
    if raw.first().map(String::as_str) == Some("scenario") {
        run_scenarios(&raw[1..]);
    }
    let mut args = raw.into_iter();
    let Some(dir) = args.next() else {
        eprintln!("usage: obr-cli <dir> [--pages N]  |  obr-cli check <dir> [--all]");
        std::process::exit(2);
    };
    let mut pages = 16_384u32;
    let mut cfg = obr::core::EngineConfig::default();
    while let Some(a) = args.next() {
        if a == "--pages" {
            pages = args.next().and_then(|s| s.parse().ok()).unwrap_or(16_384);
        } else if a == "--segment-bytes" {
            if let Some(b) = args.next().and_then(|s| s.parse().ok()) {
                cfg.wal_segment_bytes = b;
            }
        }
    }
    let dir = std::path::PathBuf::from(dir);
    let db = if dir.join("pages.db").exists() {
        let db =
            Database::open_durable(&dir, 1024, SidePointerMode::TwoWay).expect("open database");
        let report = recover(&db).expect("recovery");
        println!(
            "recovered: {} records redone, {} units forward-completed",
            report.redo_applied, report.forward_units_completed
        );
        db
    } else {
        println!("creating new database in {} ({pages} pages)", dir.display());
        Database::create_durable_with_config(&dir, pages, 1024, SidePointerMode::TwoWay, cfg)
            .expect("create database")
    };
    let session = Session::new(Arc::clone(&db));
    let stdin = std::io::stdin();
    print!("obr> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!(
                    "put K V | get K | del K | scan LO HI | stats | reorg | \
                     reorg auto | checkpoint | truncate-log | quit"
                );
            }
            ["put", k, v] => match k.parse::<u64>() {
                Ok(key) => match session.insert(key, v.as_bytes()) {
                    Ok(()) => println!("ok"),
                    Err(TxnError::KeyExists(_)) => {
                        let mut t = session.begin();
                        match t.update(key, v.as_bytes()) {
                            Ok(_) => {
                                t.commit().ok();
                                println!("updated");
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
                Err(_) => println!("bad key"),
            },
            ["get", k] => match k.parse::<u64>() {
                Ok(key) => match session.read(key) {
                    Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                    Ok(None) => println!("(nil)"),
                    Err(e) => println!("error: {e}"),
                },
                Err(_) => println!("bad key"),
            },
            ["del", k] => match k.parse::<u64>() {
                Ok(key) => match session.delete(key) {
                    Ok(_) => println!("ok"),
                    Err(TxnError::KeyNotFound(_)) => println!("(nil)"),
                    Err(e) => println!("error: {e}"),
                },
                Err(_) => println!("bad key"),
            },
            ["scan", lo, hi] => match (lo.parse::<u64>(), hi.parse::<u64>()) {
                (Ok(lo), Ok(hi)) => match session.scan(lo, hi) {
                    Ok(rows) => {
                        for (k, v) in rows.iter().take(50) {
                            println!("{k} = {}", String::from_utf8_lossy(v));
                        }
                        if rows.len() > 50 {
                            println!("... {} more rows", rows.len() - 50);
                        }
                        println!("({} rows)", rows.len());
                    }
                    Err(e) => println!("error: {e}"),
                },
                _ => println!("bad range"),
            },
            ["stats"] => match db.stats() {
                Ok(s) => println!("{s}"),
                Err(e) => println!("error: {e}"),
            },
            ["reorg"] => {
                let r = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
                match r.run() {
                    Ok(st) => println!(
                        "reorganized: {} units, {} swaps, {} moves, {} pages freed",
                        st.units, st.swaps, st.moves, st.pages_freed
                    ),
                    Err(e) => println!("error: {e}"),
                }
            }
            ["reorg", "auto"] => {
                let r = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
                match r.run_if_needed(ReorgTrigger::default()) {
                    Ok(d) => println!(
                        "compacted={} swapped={} shrunk={}",
                        d.compacted, d.swapped, d.shrunk
                    ),
                    Err(e) => println!("error: {e}"),
                }
            }
            ["checkpoint"] => match db.checkpoint() {
                Ok(lsn) => println!("checkpoint at LSN {lsn}"),
                Err(e) => println!("error: {e}"),
            },
            ["truncate-log"] => match db.truncate_log() {
                Ok(n) => println!("dropped {n} log records"),
                Err(e) => println!("error: {e}"),
            },
            other => println!("unknown command {other:?}; try help"),
        }
        print!("obr> ");
        std::io::stdout().flush().ok();
    }
    // Leave the files consistent for the next run.
    if let Err(e) = db.checkpoint() {
        println!("final checkpoint failed: {e}");
    }
    println!("bye");
}
