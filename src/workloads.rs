//! Scripted workloads behind the `obr-cli stats --workload` and
//! `obr-cli trace` surfaces.
//!
//! Two shapes live here:
//!
//! * [`mixed_reorg_workload`] — a durable database under a concurrent
//!   update workload *while* the reorganizer runs passes 1 and 3. Exists to
//!   light up the observability counters that only concurrency can produce:
//!   forgone requests against held RX locks (`lock_forgone_rx`), side-file
//!   backlog during the pass-3 rebuild (`side_file_depth` peak), and WAL
//!   group-commit batching (`wal_batches` / `wal_syncs`).
//! * [`scripted_reorg_trace`] — a fully deterministic single-threaded
//!   three-pass reorganization whose trace-event stream is stable across
//!   runs; the golden trace-schema test and `obr-cli trace` both use it.
//!
//! Both drive the engine in-process. Their wire-level counterpart is the
//! scenario suite of [`obr::server::scenario`](obr_server::scenario)
//! (`obr-cli scenario`), which runs the same shapes of work — churn,
//! sparsification, reorg-under-load, crash-restart — through a real TCP
//! server and concurrent network clients instead of direct sessions.

use obr_sync::atomic::AtomicBool;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use obr_btree::SidePointerMode;
use obr_core::{CoreResult, Database, ReorgConfig, Reorganizer};
use obr_obs::TraceEvent;
use obr_storage::{DiskManager, InMemoryDisk};
use obr_txn::{run_workload, Session, WorkloadConfig};

/// Rounds of [`mixed_reorg_workload`] before giving up on the target
/// counters (each round is under a second; one round usually suffices).
const MAX_MIXED_ROUNDS: u64 = 6;

/// Create a durable database under `dir` and run a mixed update workload
/// concurrently with reorganization passes 1 and 3, repeating (up to
/// `MAX_MIXED_ROUNDS` rounds) until the concurrency-only metrics are all
/// nonzero: `lock_forgone_rx`, the `side_file_depth` peak, and `wal_syncs`.
/// Returns the database so the caller can snapshot or keep using it.
pub fn mixed_reorg_workload(dir: &Path) -> CoreResult<Arc<Database>> {
    let n: u64 = 6_000;
    let db = Database::create_durable(dir, 16_384, 1_024, SidePointerMode::TwoWay)?;
    // Full leaves — concurrent inserts split them behind pass 3's read
    // frontier, feeding the side file — under a thin upper level so pass 3
    // has a real rebuild to do (the §7 / E7 recipe).
    let records: Vec<(u64, Vec<u8>)> = (0..n).map(|k| (k * 2, vec![0x5a; 64])).collect();
    db.tree().bulk_load(&records, 0.9, 0.04)?;
    let session = Session::new(Arc::clone(&db));
    for round in 0..MAX_MIXED_ROUNDS {
        let wl = WorkloadConfig {
            readers: 1,
            updaters: 4,
            key_space: n * 2,
            scan_fraction: 0.0,
            seed: 11 + round,
            ..WorkloadConfig::default()
        };
        // Phase A: pass 3 races the updaters over the full leaves. A
        // dedicated splitter inserts ascending odd keys into the (full)
        // low-key leaves once the read frontier has passed them; those
        // splits are exactly the base-page changes the side file catches.
        let wl_a = WorkloadConfig {
            duration: Duration::from_millis(800),
            ..wl.clone()
        };
        let stop = AtomicBool::new(false);
        let split_stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let dbr = Arc::clone(&db);
            let reorg_stop = &split_stop;
            let reorg = s.spawn(move || {
                // Let the updaters warm up so pass 3 truly overlaps them,
                // then keep re-running it for the rest of the phase: each
                // run is a fresh side-file window, and a run lost to a
                // deadlock give-up (part of the scenario, not a failure)
                // just means the next one starts sooner.
                std::thread::sleep(Duration::from_millis(250));
                while !reorg_stop.load(obr_sync::atomic::Ordering::Relaxed) {
                    let cfg = ReorgConfig {
                        stable_interval: 1,
                        ..ReorgConfig::default()
                    };
                    let _ = Reorganizer::new(Arc::clone(&dbr), cfg).pass3_shrink();
                    std::thread::sleep(Duration::from_millis(20));
                }
            });
            let dbs = Arc::clone(&db);
            let split_stop = &split_stop;
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                let splitter = Session::new(dbs);
                // Oscillate the lowest-key band between overfull and empty:
                // insert epochs split leaves, delete epochs free them at
                // empty. The read frontier passes this band as soon as
                // pass 3 starts, so every later split/free is a base-entry
                // change behind it — exactly what the side file catches.
                let mut insert_epoch = true;
                'epochs: loop {
                    for k in 0..1_024u64 {
                        if split_stop.load(obr_sync::atomic::Ordering::Relaxed) {
                            break 'epochs;
                        }
                        if insert_epoch {
                            let _ = splitter.insert(k, &[0x33; 64]);
                        } else {
                            let _ = splitter.delete(k);
                        }
                    }
                    insert_epoch = !insert_epoch;
                }
            });
            run_workload(&db, &wl_a, &stop);
            split_stop.store(true, obr_sync::atomic::Ordering::Relaxed);
            reorg.join().expect("pass3 thread");
        });
        // Phase B: sparsify the leaves, then compact them (pass 1) under
        // hot-key updaters; their X requests hit the units' RX locks and
        // are forgone (Table 1). Pass 1 re-runs a few times because the
        // updaters' own deletes keep re-sparsifying leaves.
        for k in 0..n {
            if k % 4 != round % 4 {
                let _ = session.delete(k * 2);
            }
        }
        let wl_b = WorkloadConfig {
            updaters: 6,
            duration: Duration::from_millis(600),
            ..wl
        };
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let dbr = Arc::clone(&db);
            let reorg = s.spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                let r = Reorganizer::new(dbr, ReorgConfig::default());
                for _ in 0..6 {
                    let _ = r.pass1_compact();
                    std::thread::sleep(Duration::from_millis(30));
                }
            });
            run_workload(&db, &wl_b, &stop);
            reorg.join().expect("pass1 thread");
        });
        let snap = db.metrics_snapshot()?;
        if snap.counter("lock_forgone_rx") > 0
            && snap.gauge_peak("side_file_depth") > 0
            && snap.counter("wal_syncs") > 0
        {
            break;
        }
    }
    db.checkpoint()?;
    Ok(db)
}

/// A deterministic three-pass reorganization on an in-memory database:
/// sparse bulk load, then `Reorganizer::run` single-threaded. The returned
/// trace is byte-stable across runs (modulo `seq`/`us`, which
/// [`TraceEvent::to_json_stable`] omits), making it suitable as a golden
/// fixture.
pub fn scripted_reorg_trace() -> CoreResult<(Arc<Database>, Vec<TraceEvent>)> {
    let disk = Arc::new(InMemoryDisk::new(4_096));
    let db = Database::create(disk as Arc<dyn DiskManager>, 4_096, SidePointerMode::TwoWay)?;
    let records: Vec<(u64, Vec<u8>)> = (0..1_200u64).map(|k| (k * 2, vec![0x42; 48])).collect();
    // Sparse leaves give pass 1 work; the thin upper level gives pass 3 a
    // level to shrink. In-place-only placement leaves the compacted pages
    // scattered, so pass 2 has moves and swaps to trace; stable_interval 1
    // puts a pass-3 stable point after every base page.
    db.tree().bulk_load(&records, 0.25, 0.5)?;
    let cfg = ReorgConfig {
        placement: obr_core::PlacementPolicy::InPlaceOnly,
        stable_interval: 1,
        ..ReorgConfig::default()
    };
    Reorganizer::new(Arc::clone(&db), cfg).run()?;
    let events = db.tracer().events();
    Ok((db, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_reorg_trace_is_deterministic() {
        let stable = |events: Vec<TraceEvent>| -> Vec<String> {
            events.iter().map(|e| e.to_json_stable()).collect()
        };
        let (_, a) = scripted_reorg_trace().unwrap();
        let (_, b) = scripted_reorg_trace().unwrap();
        assert!(!a.is_empty());
        assert_eq!(stable(a), stable(b));
    }
}
