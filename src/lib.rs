//! **obr** — On-line reorganization of sparsely-populated B+-trees.
//!
//! A full reproduction of Salzberg & Zou, SIGMOD 1996, as a Rust workspace:
//!
//! * [`storage`] — pages, disk managers, buffer pool with careful writing,
//!   free-space map.
//! * [`wal`] — write-ahead log, the reorganization log-record vocabulary,
//!   the reorganization state table.
//! * [`lock`] — the lock manager with the paper's R/RX/RS modes.
//! * [`btree`] — the primary B+-tree (free-at-empty deletes, side pointers,
//!   bottom-up bulk loading).
//! * [`obs`] — the observability layer: label-free metrics registry and
//!   structured trace-event sink (`obr-cli stats` / `obr-cli trace`).
//! * [`core`] — the reorganizer (three passes, side file, forward
//!   recovery) and the assembled [`core::Database`].
//! * [`txn`] — transactional sessions (the §4.1.2/§4.1.3 protocols) and
//!   workload generators.
//! * [`server`] — the TCP network frontend: length-prefixed wire protocol
//!   (PROTOCOL.md), per-connection sessions, admission control, WAL
//!   segment shipping, and the scripted scenario suite
//!   (`obr-cli serve` / `client` / `scenario`).
//! * [`baseline`] — the Tandem-style comparator of §8.
//! * [`check`] — static analysis: tree fsck, lock-protocol model checker,
//!   WAL linter (`obr-cli check`).
//!
//! ```no_run
//! use std::sync::Arc;
//! use obr::core::{Database, ReorgConfig, Reorganizer};
//! use obr::btree::SidePointerMode;
//! use obr::storage::InMemoryDisk;
//! use obr::txn::Session;
//!
//! let disk = Arc::new(InMemoryDisk::new(4096));
//! let db = Database::create(disk, 4096, SidePointerMode::TwoWay).unwrap();
//! let session = Session::new(Arc::clone(&db));
//! session.insert(1, b"hello").unwrap();
//! Reorganizer::new(Arc::clone(&db), ReorgConfig::default()).run().unwrap();
//! assert_eq!(session.read(1).unwrap().unwrap(), b"hello");
//! ```

pub use obr_baseline as baseline;
pub use obr_btree as btree;
pub use obr_check as check;
pub use obr_core as core;
pub use obr_lock as lock;
pub use obr_obs as obs;
pub use obr_server as server;
pub use obr_storage as storage;
pub use obr_txn as txn;
pub use obr_wal as wal;

pub mod workloads;
