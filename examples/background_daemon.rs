//! The deployment shape: a background daemon watches the tree and
//! reorganizes only when the trigger thresholds are crossed, while the
//! application keeps reading and writing.
//!
//! ```text
//! cargo run --example background_daemon
//! ```

use std::sync::Arc;
use std::time::Duration;

use obr::btree::SidePointerMode;
use obr::core::{Database, ReorgConfig, ReorgDaemon, ReorgTrigger};
use obr::storage::InMemoryDisk;
use obr::txn::Session;

fn main() {
    let disk = Arc::new(InMemoryDisk::new(32_768));
    let db =
        Database::create_with_regions(disk, 32_768, SidePointerMode::TwoWay, 1024).expect("create");
    let session = Session::new(Arc::clone(&db));

    println!("loading 12,000 records...");
    for k in 0..12_000u64 {
        session.insert(k, &k.to_le_bytes()).expect("insert");
    }
    let daemon = ReorgDaemon::spawn(
        Arc::clone(&db),
        ReorgConfig::default(),
        ReorgTrigger {
            min_fill: 0.55,
            max_disorder: 0.2,
            ..ReorgTrigger::default()
        },
        Duration::from_millis(100),
    );

    // The application churns; the daemon heals behind it.
    for round in 1..=3u32 {
        println!("\n-- churn round {round}: delete 60% at random --");
        let keys: Vec<u64> = session
            .scan(0, u64::MAX)
            .expect("scan")
            .iter()
            .map(|(k, _)| *k)
            .collect();
        let mut rng = 0x1357u64 ^ round as u64;
        for k in keys {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            if rng % 10 < 6 {
                let _ = session.delete(k);
            }
        }
        // Refill a little so the tree stays interesting.
        for i in 0..1500u64 {
            let k = 100_000 * round as u64 + i;
            session.insert(k, &k.to_le_bytes()).expect("insert");
        }
        std::thread::sleep(Duration::from_millis(400));
        let stats = db.stats().expect("stats");
        println!("{stats}");
        println!("daemon decisions so far: {:?}", daemon.decisions());
    }

    let decisions = daemon.stop().expect("daemon");
    println!("\ndaemon made {} reorganization run(s)", decisions.len());
    db.tree().validate().expect("validate");
    println!(
        "tree valid; final fill {:.2}",
        db.tree().stats().unwrap().avg_leaf_fill
    );
}
