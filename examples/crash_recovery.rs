//! Forward Recovery (§5.1): crash the machine mid-reorganization-unit, then
//! watch recovery *finish* the interrupted unit instead of rolling it back,
//! and the reorganizer resume from LK.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use std::sync::Arc;

use obr::btree::SidePointerMode;
use obr::core::{recover, Database, FailPoint, FailSite, ReorgConfig, Reorganizer};
use obr::storage::{DiskManager, InMemoryDisk};
use obr::txn::Session;

fn main() {
    let disk = Arc::new(InMemoryDisk::new(16_384));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        16_384,
        SidePointerMode::TwoWay,
    )
    .expect("create");
    let _session = Session::new(Arc::clone(&db));
    println!("loading a sparse tree...");
    let records: Vec<(u64, Vec<u8>)> = (0..8000u64).map(|k| (k, vec![k as u8; 64])).collect();
    db.tree().bulk_load(&records, 0.25, 0.9).expect("bulk load");
    db.checkpoint().unwrap();
    let expected = db.tree().collect_all().expect("snapshot");

    // Reorganize with a fail point: "power fails" right after the second
    // unit's first MOVE record hits the log.
    println!("reorganizing... (crash injected mid-unit)");
    let cfg = ReorgConfig {
        swap_pass: false,
        shrink_pass: false,
        ..ReorgConfig::default()
    };
    let reorg = Reorganizer::new(Arc::clone(&db), cfg.clone())
        .with_fail_point(FailPoint::new(FailSite::AfterFirstMove, 1));
    let err = reorg.pass1_compact().expect_err("the fail point fires");
    println!("  crashed: {err}");

    // The OS had flushed a random half of the dirty pages (careful-writing
    // order respected); the rest of the buffer pool and the unforced log
    // tail are lost.
    let mut flip = false;
    db.crash(|_| {
        flip = !flip;
        flip
    })
    .expect("simulate power failure");

    // Reopen and recover.
    println!("recovering...");
    let db2 = Database::reopen(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        Arc::clone(db.log()),
        16_384,
        SidePointerMode::TwoWay,
    )
    .expect("reopen");
    let report = recover(&db2).expect("recovery");
    println!(
        "  redo: {} records scanned, {} applied",
        report.redo_scanned, report.redo_applied
    );
    println!(
        "  forward recovery: {} unit(s) completed forward, {} records preserved",
        report.forward_units_completed, report.records_preserved
    );
    println!(
        "  pages reclaimed by FSM rebuild: {}",
        report.pages_reclaimed
    );
    db2.tree().validate().expect("validate");
    assert_eq!(db2.tree().collect_all().expect("collect"), expected);
    println!("  all {} records intact", expected.len());

    // The reorganization resumes from LK (largest finished key).
    println!(
        "resuming reorganization from LK = {:?}...",
        db2.reorg_table().lk()
    );
    Reorganizer::new(Arc::clone(&db2), cfg)
        .pass1_compact()
        .expect("resume");
    let stats = db2.tree().stats().expect("stats");
    println!(
        "done: fill {:.2} across {} leaves",
        stats.avg_leaf_fill, stats.leaf_pages
    );
    let s2 = Session::new(Arc::clone(&db2));
    assert!(s2.read(4321).expect("read").is_some());
}
