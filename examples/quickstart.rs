//! Quickstart: build a database, degrade the tree with churn, reorganize it
//! on-line, and watch the physical shape recover.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use obr::btree::SidePointerMode;
use obr::core::{Database, ReorgConfig, Reorganizer};
use obr::storage::InMemoryDisk;
use obr::txn::Session;

fn main() {
    // 1. A database over a 16k-page disk.
    let disk = Arc::new(InMemoryDisk::new(16_384));
    let db = Database::create(disk, 16_384, SidePointerMode::TwoWay).expect("create");
    let session = Session::new(Arc::clone(&db));

    // 2. Load a table, then churn it: inserts split pages, deletes leave
    //    them sparse — the free-at-empty policy never merges.
    println!("loading 20,000 records...");
    for k in 0..20_000u64 {
        session.insert(k, &k.to_be_bytes()).expect("insert");
    }
    println!("churning (delete 2 of every 3)...");
    for k in 0..20_000u64 {
        if k % 3 != 0 {
            session.delete(k).expect("delete");
        }
    }
    let before = db.tree().stats().expect("stats");
    println!(
        "degraded:    {:4} leaves, fill {:.2}, height {}",
        before.leaf_pages, before.avg_leaf_fill, before.height
    );

    // 3. Reorganize on-line: compact, order, shrink.
    let reorg = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
    let stats = reorg.run().expect("reorganize");
    let after = db.tree().stats().expect("stats");
    println!(
        "reorganized: {:4} leaves, fill {:.2}, height {}",
        after.leaf_pages, after.avg_leaf_fill, after.height
    );
    println!(
        "units: {} ({} in-place, {} copy-switch), pass-2: {} swaps / {} moves, freed {} pages",
        stats.units,
        stats.inplace_units,
        stats.copy_switch_units,
        stats.swaps,
        stats.moves,
        stats.pages_freed
    );

    // 4. The data is untouched.
    assert_eq!(
        session.read(0).expect("read").expect("present"),
        0u64.to_be_bytes()
    );
    assert_eq!(session.read(1).expect("read"), None); // deleted
    let count = db.tree().validate().expect("validate");
    println!("validated: {count} records, tree invariants hold");
}
