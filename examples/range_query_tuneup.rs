//! The paper's motivation (§1): sparse, scattered leaves make range queries
//! slow — more pages to read, and seeks between them. Reorganization fixes
//! both. This example measures a cold range scan before and after.
//!
//! ```text
//! cargo run --example range_query_tuneup
//! ```

use std::sync::Arc;

use obr::btree::SidePointerMode;
use obr::core::{Database, ReorgConfig, Reorganizer};
use obr::storage::{DiskManager, InMemoryDisk};
use obr::txn::Session;
use obr::wal::TxnId;

fn cold_scan(disk: &Arc<InMemoryDisk>, db: &Arc<Database>, lo: u64, hi: u64) -> (usize, u64, u64) {
    db.pool().evict_all().expect("evict");
    disk.reset_stats();
    let rows = db.tree().range_scan(lo, hi).expect("scan").len();
    let s = disk.stats();
    (rows, s.reads, s.seek_distance)
}

fn main() {
    let disk = Arc::new(InMemoryDisk::new(32_768));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        32_768,
        SidePointerMode::TwoWay,
    )
    .expect("create");
    let session = Session::new(Arc::clone(&db));

    // Age a table: dense load over even keys, odd-key inserts scatter new
    // leaves, deletes hollow the pages out.
    println!("aging the table (splits scatter leaves, deletes hollow them)...");
    let records: Vec<(u64, Vec<u8>)> = (0..8000u64).map(|k| (k * 2, vec![7u8; 64])).collect();
    db.tree().bulk_load(&records, 0.85, 0.9).expect("bulk load");
    for k in 0..8000u64 {
        db.tree()
            .insert(TxnId(1), obr::storage::Lsn::ZERO, k * 2 + 1, &[9u8; 64])
            .expect("insert");
    }
    for k in 0..16_000u64 {
        if k % 7 < 5 {
            let _ = session.delete(k);
        }
    }

    let (rows, reads, seek) = cold_scan(&disk, &db, 2_000, 10_000);
    println!("before reorganization: {rows} rows in {reads} page reads, seek distance {seek}");

    let reorg = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
    reorg.run().expect("reorganize");

    let (rows2, reads2, seek2) = cold_scan(&disk, &db, 2_000, 10_000);
    println!("after  reorganization: {rows2} rows in {reads2} page reads, seek distance {seek2}");
    assert_eq!(rows, rows2, "reorganization must not change query results");
    println!(
        "improvement: {:.1}x fewer reads, {:.1}x less seeking",
        reads as f64 / reads2.max(1) as f64,
        seek as f64 / seek2.max(1) as f64
    );
    db.tree().validate().expect("validate");
}
