//! Live reorganization under a mixed read/write workload: the paper's
//! headline scenario. Readers and updaters keep running; the ones that hit
//! an RX-locked leaf take the §4.1.2 instant-RS fallback and retry.
//!
//! ```text
//! cargo run --example concurrent_reorg
//! ```

use obr_sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use obr::btree::SidePointerMode;
use obr::core::{Database, ReorgConfig, Reorganizer};
use obr::storage::InMemoryDisk;
use obr::txn::{degrade, run_workload, KeyDist, WorkloadConfig};

fn main() {
    let disk = Arc::new(InMemoryDisk::with_latency(
        32_768,
        Duration::from_micros(20),
    ));
    let db = Database::create(disk, 32_768, SidePointerMode::TwoWay).expect("create");
    println!("loading and degrading 10,000 records...");
    degrade(&db, 10_000, 64, 0.6, 42);
    let before = db.tree().stats().expect("stats");
    println!(
        "before: {} leaves at fill {:.2}",
        before.leaf_pages, before.avg_leaf_fill
    );

    let wl = WorkloadConfig {
        readers: 2,
        updaters: 2,
        key_space: 20_000,
        duration: Duration::from_millis(800),
        dist: KeyDist::Uniform,
        ..WorkloadConfig::default()
    };
    let stop = AtomicBool::new(false);
    let (report, reorg_stats) = std::thread::scope(|s| {
        let dbr = Arc::clone(&db);
        let h = s.spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            let cfg = ReorgConfig {
                shrink_pass: false,
                ..ReorgConfig::default()
            };
            let r = Reorganizer::new(dbr, cfg);
            r.pass1_compact().expect("pass 1");
            r.pass2_swap_move().expect("pass 2");
            r.stats()
        });
        let report = run_workload(&db, &wl, &stop);
        (report, h.join().expect("reorg thread"))
    });

    let after = db.tree().stats().expect("stats");
    println!(
        "after:  {} leaves at fill {:.2} ({} units, {} records moved)",
        after.leaf_pages, after.avg_leaf_fill, reorg_stats.units, reorg_stats.records_moved
    );
    println!(
        "workload during reorganization: {:.0} ops/s  \
         (reads {}, scans {}, inserts {}, deletes {})",
        report.throughput(),
        report.reads,
        report.scans,
        report.inserts,
        report.deletes
    );
    println!(
        "protocol events: {} RS fallbacks (blocked by RX), {} restarts, \
         p99 read {:?}",
        report.rs_fallbacks,
        report.restarts,
        report.read_latency.percentile(0.99)
    );
    db.tree().validate().expect("tree stays consistent");
    println!("tree validated under concurrency");
}
