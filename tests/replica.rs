//! Log-shipping replica: sealed-segment ingest, tail streaming, and
//! following the primary through checkpoints and a live pass-3 tree
//! switch. The acceptance shape: after shipping, the replica's scan is
//! byte-identical to the primary's committed snapshot.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use obr_btree::SidePointerMode;
use obr_core::{Database, EngineConfig, ReorgConfig, Reorganizer, Replica};
use obr_txn::Session;

/// A scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("obr-replica-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const PAGES: u32 = 4096;
const FRAMES: usize = 1024;

/// A durable primary with a tiny segment threshold so workloads seal
/// several segments, paired with a same-geometry replica.
fn primary_and_replica(tag: &str) -> (Scratch, Arc<Database>, Replica) {
    let scratch = Scratch::new(tag);
    let db = Database::create_durable_with_config(
        scratch.path(),
        PAGES,
        FRAMES,
        SidePointerMode::TwoWay,
        EngineConfig {
            wal_segment_bytes: 2048,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let replica = Replica::new(PAGES, FRAMES, SidePointerMode::TwoWay).unwrap();
    (scratch, db, replica)
}

#[test]
fn replica_follows_sealed_segments_and_tail() {
    let (scratch, db, replica) = primary_and_replica("basic");
    let session = Session::new(Arc::clone(&db));
    for k in 0..300u64 {
        session.insert(k, &[0x21; 48]).unwrap();
    }
    db.log().flush_all().unwrap();
    assert!(
        db.log().segment_catalog().len() >= 2,
        "workload must seal at least one segment, got {:?}",
        db.log().segment_catalog().len()
    );

    // Out-of-process path: ship the files.
    let shipped = replica.ingest_dir(&scratch.path().join("wal")).unwrap();
    assert!(shipped > 0);
    // In-process path: stream whatever the files missed.
    replica.sync_from(db.log()).unwrap();
    assert_eq!(replica.lag(db.log()), 0);
    assert_eq!(replica.applied_lsn(), db.log().durable_lsn());

    assert_eq!(
        replica.scan_all().unwrap(),
        db.tree().collect_all().unwrap()
    );
    assert_eq!(replica.get(123).unwrap(), Some(vec![0x21; 48]));
    assert_eq!(replica.get(300).unwrap(), None);
    assert_eq!(replica.scan(10, 20).unwrap().len(), 11);

    let snap = replica.database().metrics().snapshot();
    assert_eq!(snap.gauge("replica_applied_lsn"), replica.applied_lsn().0);
    assert!(snap.counter("replica_records_applied") >= shipped);
    assert!(snap.counter("replica_segments_ingested") >= 1);
}

#[test]
fn replica_follows_a_live_pass3_switch() {
    let (_scratch, db, replica) = primary_and_replica("switch");
    let session = Session::new(Arc::clone(&db));
    for k in 0..800u64 {
        session.insert(k, &[0x37; 40]).unwrap();
    }
    // Punch holes so every pass has work, and checkpoint mid-history so the
    // replica crosses a checkpoint record too.
    for k in 0..800u64 {
        if k % 4 != 0 {
            session.delete(k).unwrap();
        }
    }
    db.checkpoint().unwrap();
    let reorg = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
    reorg.run().unwrap();
    db.log().flush_all().unwrap();

    replica.sync_from(db.log()).unwrap();
    assert_eq!(replica.lag(db.log()), 0);
    assert!(
        replica.switches_seen() >= 1,
        "the reorganization must have switched trees"
    );
    assert!(replica.checkpoints_seen() >= 1);
    // The replica's reads run against the *new* tree, matching the primary.
    assert_eq!(
        replica.scan_all().unwrap(),
        db.tree().collect_all().unwrap()
    );
    replica.database().tree().validate().unwrap();

    // More writes after the switch keep shipping cleanly.
    for k in 1000..1100u64 {
        session.insert(k, &[0x55; 32]).unwrap();
    }
    db.log().flush_all().unwrap();
    replica.sync_from(db.log()).unwrap();
    assert_eq!(
        replica.scan_all().unwrap(),
        db.tree().collect_all().unwrap()
    );
}

#[test]
fn replica_that_missed_recycled_segments_reports_it() {
    let (_scratch, db, replica) = primary_and_replica("behind");
    let session = Session::new(Arc::clone(&db));
    for k in 0..300u64 {
        session.insert(k, &[0x44; 48]).unwrap();
    }
    // Checkpoint + truncate: sealed segments below the low-water mark are
    // recycled before the replica ever saw them.
    db.truncate_log().unwrap();
    assert!(
        db.log().first_lsn().0 > 1,
        "truncation must have dropped a segment for this test to bite"
    );
    let err = replica.sync_from(db.log()).unwrap_err();
    assert!(
        err.to_string().contains("re-seed"),
        "unexpected error: {err}"
    );
}

#[test]
fn fresh_replica_rejects_recycled_history_without_a_floor() {
    let (scratch, db, replica) = primary_and_replica("floorless");
    let session = Session::new(Arc::clone(&db));
    for k in 0..300u64 {
        session.insert(k, &[0x44; 48]).unwrap();
    }
    // Recycle sealed segments below the checkpoint low-water mark, so the
    // surviving WAL directory starts mid-history.
    db.truncate_log().unwrap();
    assert!(
        db.log().first_lsn().0 > 1,
        "truncation must have dropped a segment for this test to bite"
    );
    // A blank replica (applied == ZERO, no declared floor) must refuse to
    // apply from mid-history instead of silently diverging.
    let err = replica.ingest_dir(&scratch.path().join("wal")).unwrap_err();
    assert!(
        err.to_string().contains("set_applied_floor"),
        "unexpected error: {err}"
    );
    // Declaring the snapshot floor (what `obr-cli replica` does after
    // copying the page file) unblocks ingestion.
    let first = obr_wal::segment::list_segments(&scratch.path().join("wal")).unwrap()[0].0;
    replica.set_applied_floor(obr_storage::Lsn(first.0.saturating_sub(1)));
    replica.ingest_dir(&scratch.path().join("wal")).unwrap();
}

#[test]
fn sealed_segment_ingest_rejects_torn_files() {
    let (scratch, db, replica) = primary_and_replica("torn");
    let session = Session::new(Arc::clone(&db));
    for k in 0..300u64 {
        session.insert(k, &[0x66; 48]).unwrap();
    }
    db.log().flush_all().unwrap();
    let segments = obr_wal::segment::list_segments(&scratch.path().join("wal")).unwrap();
    assert!(segments.len() >= 2);
    // Chop the first sealed segment mid-record and ship it.
    let (_, sealed) = &segments[0];
    let bytes = std::fs::read(sealed).unwrap();
    std::fs::write(sealed, &bytes[..bytes.len() - 3]).unwrap();
    let err = replica.ingest_segment(sealed).unwrap_err();
    assert!(err.to_string().contains("torn"), "unexpected error: {err}");
}
