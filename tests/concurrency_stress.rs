//! Threaded stress: the sharded buffer pool and group-commit WAL under
//! racing readers, writers, flushers, and a live reorganization daemon.
//! Every run must end fsck-clean — these tests are the executable form of
//! the lock-ordering argument in DESIGN.md's "Concurrency architecture".

use obr_sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use obr::btree::SidePointerMode;
use obr::core::{Database, EngineConfig, ReorgConfig, ReorgDaemon, ReorgTrigger};
use obr::storage::{BufferPool, DiskManager, InMemoryDisk, PageId};
use obr::txn::{Session, TxnError};

/// 8 threads hammer a pool of 32 frames over 256 pages: pin/unpin, dirty,
/// targeted flush, full-pool flush, and discard all race the clock-hand
/// eviction. Each thread owns a disjoint page range, so after a final
/// `flush_all` the disk must hold every thread's last write.
#[test]
fn pool_churn_under_eviction_and_flush() {
    const THREADS: u32 = 8;
    const PAGES_PER_THREAD: u32 = 32;
    const ROUNDS: u64 = 60;
    let disk = Arc::new(InMemoryDisk::new(1 + THREADS * PAGES_PER_THREAD));
    let pool = Arc::new(BufferPool::with_shards(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        32,
        8,
    ));
    let barrier = Barrier::new(THREADS as usize);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = Arc::clone(&pool);
            let barrier = &barrier;
            s.spawn(move || {
                let base = 1 + t * PAGES_PER_THREAD;
                barrier.wait();
                for round in 0..ROUNDS {
                    for i in 0..PAGES_PER_THREAD {
                        let id = PageId(base + i);
                        {
                            let g = pool.fetch(id).expect("fetch under churn");
                            let mut page = g.write();
                            page.bytes_mut()[..8].copy_from_slice(&(round + 1).to_le_bytes());
                        }
                        match round % 4 {
                            0 => pool.flush_page(id).expect("flush_page"),
                            1 if i == 0 => pool.flush_all().expect("flush_all"),
                            2 if i.is_multiple_of(7) => {
                                pool.flush_page(id).expect("flush before discard");
                                pool.discard(id);
                            }
                            _ => {}
                        }
                    }
                }
            });
        }
    });
    assert!(pool.resident() <= pool.capacity());
    pool.flush_all().expect("final flush");
    for t in 0..THREADS {
        for i in 0..PAGES_PER_THREAD {
            let id = PageId(1 + t * PAGES_PER_THREAD + i);
            let page = disk.read_page(id).expect("read back");
            let mut got = [0u8; 8];
            got.copy_from_slice(&page.bytes()[..8]);
            assert_eq!(
                u64::from_le_bytes(got),
                ROUNDS,
                "page {id} lost its last write"
            );
        }
    }
}

/// Full-engine stress: 8+ session threads (inserts, deletes, reads, scans)
/// race the reorganization daemon on a small sharded pool, then the live
/// database must pass every `obr-check` checker.
#[test]
fn engine_stress_with_reorg_daemon_ends_fsck_clean() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    let disk = Arc::new(InMemoryDisk::new(16_384));
    let db = Database::create_with_config(
        disk as Arc<dyn DiskManager>,
        512, // small pool: eviction runs throughout
        SidePointerMode::TwoWay,
        EngineConfig::default(),
    )
    .unwrap();
    assert!(db.pool().shard_count() >= 8, "stress needs a sharded pool");
    // Sparse preload gives the daemon real compaction work.
    let records: Vec<(u64, Vec<u8>)> = (0..3000u64).map(|k| (k, vec![0xAB; 48])).collect();
    db.tree().bulk_load(&records, 0.4, 0.9).unwrap();

    let daemon = ReorgDaemon::spawn(
        Arc::clone(&db),
        ReorgConfig::default(),
        ReorgTrigger::default(),
        Duration::from_millis(15),
    );
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(WRITERS + READERS);
    std::thread::scope(|s| {
        for w in 0..WRITERS as u64 {
            let db = Arc::clone(&db);
            let (stop, barrier) = (&stop, &barrier);
            s.spawn(move || {
                let session = Session::new(db);
                // Disjoint per-writer key range, far above the preload.
                let base = 1_000_000 + w * 1_000_000;
                let mut k = 0u64;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let key = base + (k % 500);
                    let mut txn = session.begin();
                    let op = if k % 3 == 2 {
                        txn.delete(key).map(|_| ())
                    } else {
                        txn.insert(key, &key.to_be_bytes()).map(|_| ())
                    };
                    match op {
                        Ok(()) => {
                            txn.commit().unwrap();
                        }
                        Err(TxnError::KeyExists(_)) | Err(TxnError::KeyNotFound(_)) => {
                            txn.commit().unwrap();
                        }
                        Err(TxnError::Deadlock) | Err(TxnError::Timeout) => {
                            let _ = txn.abort();
                        }
                        Err(e) => panic!("writer {w} failed: {e}"),
                    }
                    k += 1;
                }
            });
        }
        for r in 0..READERS as u64 {
            let db = Arc::clone(&db);
            let (stop, barrier) = (&stop, &barrier);
            s.spawn(move || {
                let session = Session::new(db);
                let mut rng = 0x243F6A88u64 ^ (r + 1);
                barrier.wait();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 3000;
                    let outcome = if i.is_multiple_of(32) {
                        session.scan(key, key + 40).map(|_| ())
                    } else {
                        session.read(key).map(|_| ())
                    };
                    match outcome {
                        Ok(()) | Err(TxnError::Deadlock) | Err(TxnError::Timeout) => {}
                        Err(e) => panic!("reader {r} failed: {e}"),
                    }
                    i += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });
    daemon.stop().unwrap();

    // Quiescent now: the live pool must check clean end to end.
    db.tree().validate().unwrap();
    let report = obr::check::check_database(&db);
    assert!(report.is_clean(), "post-stress check found:\n{report}");
}
