//! Golden test for the structured trace schema.
//!
//! [`obr::workloads::scripted_reorg_trace`] runs a fully deterministic
//! three-pass reorganization; its event stream — rendered with
//! [`obr::obs::TraceEvent::to_json_stable`], which omits the two
//! timing-dependent fields (`seq`, `us`) — must match the checked-in
//! fixture byte for byte. Regenerate after an intentional change with:
//!
//! ```text
//! OBR_UPDATE_GOLDEN=1 cargo test --test trace_schema
//! ```

use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scripted_reorg_trace.jsonl")
}

#[test]
fn scripted_reorg_trace_matches_golden() {
    let (_db, events) = obr::workloads::scripted_reorg_trace().unwrap();
    let mut actual = String::new();
    for e in &events {
        actual.push_str(&e.to_json_stable());
        actual.push('\n');
    }
    let path = golden_path();
    if std::env::var_os("OBR_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "scripted reorg trace diverged from tests/golden/scripted_reorg_trace.jsonl; \
         if the change is intentional, regenerate with OBR_UPDATE_GOLDEN=1"
    );
}

#[test]
fn trace_events_obey_the_fixed_schema() {
    let (_db, events) = obr::workloads::scripted_reorg_trace().unwrap();
    assert!(!events.is_empty());
    // seq strictly increases; the full rendering carries every field of
    // the fixed schema in order.
    for pair in events.windows(2) {
        assert!(pair[1].seq > pair[0].seq);
    }
    for e in &events {
        let json = e.to_json();
        for key in [
            "\"seq\":",
            "\"us\":",
            "\"event\":\"",
            "\"unit\":",
            "\"pass\":",
            "\"page\":",
            "\"a\":",
            "\"b\":",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        assert!(e.pass <= 3, "pass out of range in {json}");
    }
    // A full run traces all three passes, in order, and ends each one.
    let passes: Vec<(String, u8)> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                obr::obs::TraceKind::PassEnter | obr::obs::TraceKind::PassExit
            )
        })
        .map(|e| (e.kind.as_str().to_string(), e.pass))
        .collect();
    assert_eq!(
        passes,
        vec![
            ("pass_enter".into(), 1),
            ("pass_exit".into(), 1),
            ("pass_enter".into(), 2),
            ("pass_exit".into(), 2),
            ("pass_enter".into(), 3),
            ("pass_exit".into(), 3),
        ]
    );
    // Every unit that begins also ends, exactly once.
    let begun: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == obr::obs::TraceKind::UnitBegin)
        .map(|e| e.unit)
        .collect();
    let ended: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == obr::obs::TraceKind::UnitEnd)
        .map(|e| e.unit)
        .collect();
    assert_eq!(begun, ended);
}
