//! Property-based whole-system tests: random operation sequences,
//! interleaved with reorganization passes and crash/recovery cycles, checked
//! against a `BTreeMap` model.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use obr::btree::SidePointerMode;
use obr::core::{recover, Database, ReorgConfig, Reorganizer};
use obr::storage::{DiskManager, InMemoryDisk};
use obr::txn::Session;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, Vec<u8>),
    Delete(u64),
    Read(u64),
    Scan(u64, u64),
    Pass1,
    Pass2,
    Pass3,
    CrashRecover(bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..500, prop::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        6 => (0u64..500).prop_map(Op::Delete),
        4 => (0u64..500).prop_map(Op::Read),
        2 => (0u64..500, 0u64..200).prop_map(|(lo, d)| Op::Scan(lo, lo + d)),
        1 => Just(Op::Pass1),
        1 => Just(Op::Pass2),
        1 => Just(Op::Pass3),
        1 => any::<bool>().prop_map(Op::CrashRecover),
    ]
}

fn check_against_model(db: &Arc<Database>, model: &BTreeMap<u64, Vec<u8>>) {
    let got = db.tree().collect_all().unwrap();
    let want: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
    assert_eq!(got, want, "tree contents diverged from model");
    db.tree().validate().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a whole database lifetime
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_system_matches_model(ops in prop::collection::vec(op_strategy(), 1..120),
                                 seed in any::<u64>()) {
        let disk = Arc::new(InMemoryDisk::new(8192));
        let mut db = Database::create(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            8192,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut rng = seed | 1;
        let cfg = ReorgConfig { swap_pass: false, shrink_pass: false, ..ReorgConfig::default() };
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let s = Session::new(Arc::clone(&db));
                    match s.insert(k, &v) {
                        Ok(()) => { prop_assert!(model.insert(k, v).is_none()); }
                        Err(obr::txn::TxnError::KeyExists(_)) => {
                            prop_assert!(model.contains_key(&k));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("insert: {e}"))),
                    }
                }
                Op::Delete(k) => {
                    let s = Session::new(Arc::clone(&db));
                    match s.delete(k) {
                        Ok(old) => { prop_assert_eq!(model.remove(&k), Some(old)); }
                        Err(obr::txn::TxnError::KeyNotFound(_)) => {
                            prop_assert!(!model.contains_key(&k));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                    }
                }
                Op::Read(k) => {
                    let s = Session::new(Arc::clone(&db));
                    prop_assert_eq!(s.read(k).unwrap(), model.get(&k).cloned());
                }
                Op::Scan(lo, hi) => {
                    let s = Session::new(Arc::clone(&db));
                    let got = s.scan(lo, hi).unwrap();
                    let want: Vec<(u64, Vec<u8>)> = model
                        .range(lo..=hi)
                        .map(|(k, v)| (*k, v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::Pass1 => {
                    Reorganizer::new(Arc::clone(&db), cfg.clone())
                        .pass1_compact()
                        .unwrap();
                    check_against_model(&db, &model);
                }
                Op::Pass2 => {
                    let r = Reorganizer::new(Arc::clone(&db), cfg.clone());
                    r.pass1_compact().unwrap();
                    r.pass2_swap_move().unwrap();
                    check_against_model(&db, &model);
                }
                Op::Pass3 => {
                    Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
                        .pass3_shrink()
                        .unwrap();
                    check_against_model(&db, &model);
                }
                Op::CrashRecover(flush_first) => {
                    if flush_first {
                        db.pool().flush_all().unwrap();
                    }
                    db.log().flush_all();
                    // A committed-state crash: every session op committed
                    // (and forced the log), so the model must survive.
                    db.crash(|_| {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng % 3 == 0
                    })
                    .unwrap();
                    let db2 = Database::reopen(
                        Arc::clone(&disk) as Arc<dyn DiskManager>,
                        Arc::clone(db.log()),
                        8192,
                        SidePointerMode::TwoWay,
                    )
                    .unwrap();
                    recover(&db2).unwrap();
                    db = db2;
                    check_against_model(&db, &model);
                }
            }
        }
        check_against_model(&db, &model);
    }

    /// Random insert/delete/reorganize interleavings leave a structure the
    /// static checker certifies: `fsck_db` must report zero findings after
    /// every pass and at the end of the lifetime.
    #[test]
    fn prop_fsck_clean_after_reorg(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let disk = Arc::new(InMemoryDisk::new(8192));
        let db = Database::create(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            8192,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let cfg = ReorgConfig { swap_pass: false, shrink_pass: false, ..ReorgConfig::default() };
        let fsck_clean = |when: &str| {
            let r = obr::check::fsck_db(&db, &obr::check::FsckOptions::default());
            if r.report.is_clean() {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("fsck {when}: {}", r.report)))
            }
        };
        for op in ops {
            let s = Session::new(Arc::clone(&db));
            match op {
                Op::Insert(k, v) => { let _ = s.insert(k, &v); }
                Op::Delete(k) => { let _ = s.delete(k); }
                Op::Read(k) => { let _ = s.read(k); }
                Op::Scan(lo, hi) => { let _ = s.scan(lo, hi); }
                Op::Pass1 => {
                    Reorganizer::new(Arc::clone(&db), cfg.clone()).pass1_compact().unwrap();
                    fsck_clean("after pass 1")?;
                }
                Op::Pass2 => {
                    let r = Reorganizer::new(Arc::clone(&db), cfg.clone());
                    r.pass1_compact().unwrap();
                    r.pass2_swap_move().unwrap();
                    fsck_clean("after pass 2")?;
                }
                Op::Pass3 => {
                    Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
                        .pass3_shrink()
                        .unwrap();
                    fsck_clean("after pass 3")?;
                }
                // Crash cycles are covered by prop_system_matches_model;
                // here the database stays live so the pool is the source
                // of truth for the fsck walk.
                Op::CrashRecover(_) => {}
            }
        }
        fsck_clean("at end of lifetime")?;
    }

    /// The WAL reader round-trips torn logs: truncating an encoded log at
    /// an *arbitrary byte* must never panic, must yield exactly the records
    /// of some whole-frame prefix, and re-scanning the reported clean
    /// prefix must reproduce those records with no torn tail left.
    #[test]
    fn prop_log_reader_survives_arbitrary_truncation(
        ops in prop::collection::vec((any::<u64>(), prop::collection::vec(any::<u8>(), 0..64)), 1..40),
        cut_permille in 0u64..=1000,
    ) {
        use obr::wal::{LogManager, LogRecord, LogReader, TxnId};

        let log = LogManager::new();
        for (i, (key, value)) in ops.iter().enumerate() {
            let txn = TxnId(i as u64 + 1);
            log.append(&LogRecord::TxnBegin { txn });
            log.append(&LogRecord::TxnInsert {
                txn,
                page: obr::storage::PageId(1),
                key: *key,
                value: value.clone(),
                prev_lsn: obr::storage::Lsn::ZERO,
            });
            log.append(&LogRecord::TxnCommit { txn });
        }
        let (first_lsn, frames) = log.frames_snapshot();
        let bytes = LogReader::encode_frames(frames.iter().map(Vec::as_slice));
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;

        let out = LogReader::scan(&bytes[..cut]);
        // The intact records are a whole-frame prefix of what was written.
        prop_assert!(out.records.len() <= frames.len());
        prop_assert!(out.good_end as usize <= cut);
        for (frame, got) in frames.iter().zip(out.frames.iter()) {
            prop_assert_eq!(frame, got);
        }
        if cut == bytes.len() {
            prop_assert!(out.torn.is_none());
            prop_assert_eq!(out.records.len(), frames.len());
        }
        // The clean prefix must re-scan with nothing torn and the same
        // records — the fixpoint recovery relies on.
        let clean = LogReader::scan(&bytes[..out.good_end as usize]);
        prop_assert!(clean.torn.is_none());
        prop_assert_eq!(clean.records.len(), out.records.len());
        prop_assert_eq!(
            LogReader::last_lsn(&clean, first_lsn),
            LogReader::last_lsn(&out, first_lsn)
        );
    }
}
