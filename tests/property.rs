//! Property-based whole-system tests: random operation sequences,
//! interleaved with reorganization passes and crash/recovery cycles, checked
//! against a `BTreeMap` model.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use obr::btree::SidePointerMode;
use obr::core::{recover, Database, ReorgConfig, Reorganizer};
use obr::storage::{DiskManager, InMemoryDisk};
use obr::txn::Session;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, Vec<u8>),
    Delete(u64),
    Read(u64),
    Scan(u64, u64),
    Pass1,
    Pass2,
    Pass3,
    CrashRecover(bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u64..500, prop::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        6 => (0u64..500).prop_map(Op::Delete),
        4 => (0u64..500).prop_map(Op::Read),
        2 => (0u64..500, 0u64..200).prop_map(|(lo, d)| Op::Scan(lo, lo + d)),
        1 => Just(Op::Pass1),
        1 => Just(Op::Pass2),
        1 => Just(Op::Pass3),
        1 => any::<bool>().prop_map(Op::CrashRecover),
    ]
}

fn check_against_model(db: &Arc<Database>, model: &BTreeMap<u64, Vec<u8>>) {
    let got = db.tree().collect_all().unwrap();
    let want: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
    assert_eq!(got, want, "tree contents diverged from model");
    db.tree().validate().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a whole database lifetime
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_system_matches_model(ops in prop::collection::vec(op_strategy(), 1..120),
                                 seed in any::<u64>()) {
        let disk = Arc::new(InMemoryDisk::new(8192));
        let mut db = Database::create(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            8192,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut rng = seed | 1;
        let cfg = ReorgConfig { swap_pass: false, shrink_pass: false, ..ReorgConfig::default() };
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let s = Session::new(Arc::clone(&db));
                    match s.insert(k, &v) {
                        Ok(()) => { prop_assert!(model.insert(k, v).is_none()); }
                        Err(obr::txn::TxnError::KeyExists(_)) => {
                            prop_assert!(model.contains_key(&k));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("insert: {e}"))),
                    }
                }
                Op::Delete(k) => {
                    let s = Session::new(Arc::clone(&db));
                    match s.delete(k) {
                        Ok(old) => { prop_assert_eq!(model.remove(&k), Some(old)); }
                        Err(obr::txn::TxnError::KeyNotFound(_)) => {
                            prop_assert!(!model.contains_key(&k));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                    }
                }
                Op::Read(k) => {
                    let s = Session::new(Arc::clone(&db));
                    prop_assert_eq!(s.read(k).unwrap(), model.get(&k).cloned());
                }
                Op::Scan(lo, hi) => {
                    let s = Session::new(Arc::clone(&db));
                    let got = s.scan(lo, hi).unwrap();
                    let want: Vec<(u64, Vec<u8>)> = model
                        .range(lo..=hi)
                        .map(|(k, v)| (*k, v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::Pass1 => {
                    Reorganizer::new(Arc::clone(&db), cfg.clone())
                        .pass1_compact()
                        .unwrap();
                    check_against_model(&db, &model);
                }
                Op::Pass2 => {
                    let r = Reorganizer::new(Arc::clone(&db), cfg.clone());
                    r.pass1_compact().unwrap();
                    r.pass2_swap_move().unwrap();
                    check_against_model(&db, &model);
                }
                Op::Pass3 => {
                    Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
                        .pass3_shrink()
                        .unwrap();
                    check_against_model(&db, &model);
                }
                Op::CrashRecover(flush_first) => {
                    if flush_first {
                        db.pool().flush_all().unwrap();
                    }
                    db.log().flush_all().unwrap();
                    // A committed-state crash: every session op committed
                    // (and forced the log), so the model must survive.
                    db.crash(|_| {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng % 3 == 0
                    })
                    .unwrap();
                    let db2 = Database::reopen(
                        Arc::clone(&disk) as Arc<dyn DiskManager>,
                        Arc::clone(db.log()),
                        8192,
                        SidePointerMode::TwoWay,
                    )
                    .unwrap();
                    recover(&db2).unwrap();
                    db = db2;
                    check_against_model(&db, &model);
                }
            }
        }
        check_against_model(&db, &model);
    }

    /// Random insert/delete/reorganize interleavings leave a structure the
    /// static checker certifies: `fsck_db` must report zero findings after
    /// every pass and at the end of the lifetime.
    #[test]
    fn prop_fsck_clean_after_reorg(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let disk = Arc::new(InMemoryDisk::new(8192));
        let db = Database::create(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            8192,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let cfg = ReorgConfig { swap_pass: false, shrink_pass: false, ..ReorgConfig::default() };
        let fsck_clean = |when: &str| {
            let r = obr::check::fsck_db(&db, &obr::check::FsckOptions::default());
            if r.report.is_clean() {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("fsck {when}: {}", r.report)))
            }
        };
        for op in ops {
            let s = Session::new(Arc::clone(&db));
            match op {
                Op::Insert(k, v) => { let _ = s.insert(k, &v); }
                Op::Delete(k) => { let _ = s.delete(k); }
                Op::Read(k) => { let _ = s.read(k); }
                Op::Scan(lo, hi) => { let _ = s.scan(lo, hi); }
                Op::Pass1 => {
                    Reorganizer::new(Arc::clone(&db), cfg.clone()).pass1_compact().unwrap();
                    fsck_clean("after pass 1")?;
                }
                Op::Pass2 => {
                    let r = Reorganizer::new(Arc::clone(&db), cfg.clone());
                    r.pass1_compact().unwrap();
                    r.pass2_swap_move().unwrap();
                    fsck_clean("after pass 2")?;
                }
                Op::Pass3 => {
                    Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
                        .pass3_shrink()
                        .unwrap();
                    fsck_clean("after pass 3")?;
                }
                // Crash cycles are covered by prop_system_matches_model;
                // here the database stays live so the pool is the source
                // of truth for the fsck walk.
                Op::CrashRecover(_) => {}
            }
        }
        fsck_clean("at end of lifetime")?;
    }

    /// The WAL reader round-trips torn logs: truncating an encoded log at
    /// an *arbitrary byte* must never panic, must yield exactly the records
    /// of some whole-frame prefix, and re-scanning the reported clean
    /// prefix must reproduce those records with no torn tail left.
    #[test]
    fn prop_log_reader_survives_arbitrary_truncation(
        ops in prop::collection::vec((any::<u64>(), prop::collection::vec(any::<u8>(), 0..64)), 1..40),
        cut_permille in 0u64..=1000,
    ) {
        use obr::wal::{LogManager, LogRecord, LogReader, TxnId};

        let log = LogManager::new();
        for (i, (key, value)) in ops.iter().enumerate() {
            let txn = TxnId(i as u64 + 1);
            log.append(&LogRecord::TxnBegin { txn });
            log.append(&LogRecord::TxnInsert {
                txn,
                page: obr::storage::PageId(1),
                key: *key,
                value: value.clone(),
                prev_lsn: obr::storage::Lsn::ZERO,
            });
            log.append(&LogRecord::TxnCommit { txn });
        }
        let (first_lsn, frames) = log.frames_snapshot();
        let bytes = LogReader::encode_frames(frames.iter().map(Vec::as_slice));
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;

        let out = LogReader::scan(&bytes[..cut]);
        // The intact records are a whole-frame prefix of what was written.
        prop_assert!(out.records.len() <= frames.len());
        prop_assert!(out.good_end as usize <= cut);
        for (frame, got) in frames.iter().zip(out.frames.iter()) {
            prop_assert_eq!(frame, got);
        }
        if cut == bytes.len() {
            prop_assert!(out.torn.is_none());
            prop_assert_eq!(out.records.len(), frames.len());
        }
        // The clean prefix must re-scan with nothing torn and the same
        // records — the fixpoint recovery relies on.
        let clean = LogReader::scan(&bytes[..out.good_end as usize]);
        prop_assert!(clean.torn.is_none());
        prop_assert_eq!(clean.records.len(), out.records.len());
        prop_assert_eq!(
            LogReader::last_lsn(&clean, first_lsn),
            LogReader::last_lsn(&out, first_lsn)
        );
    }

    /// The segmented WAL is observationally equivalent to the legacy
    /// single-file log it replaced. The same append/force pattern is driven
    /// into both layouts, then the equivalence is checked at every split
    /// point the segmentation introduces:
    ///
    /// 1. fully flushed — identical LSNs, records, checkpoints, and the
    ///    segment files concatenate byte-for-byte to the single-file image;
    /// 2. torn tail — a crash cut at an arbitrary byte of the active
    ///    segment reopens to exactly the state the single file cut at the
    ///    same global offset reopens to;
    /// 3. truncate + recycle — after `truncate_before` at an arbitrary LSN,
    ///    the segmented log (whole-file recycling, rounded down to a
    ///    segment boundary) retains a superset of what the single file
    ///    (exact rewrite) retains, agreeing record-for-record past the
    ///    truncation point, both live and across a reopen.
    #[test]
    fn prop_segmented_log_matches_single_file_oracle(
        ops in prop::collection::vec(
            (0u64..1000, prop::collection::vec(any::<u8>(), 0..48), any::<bool>(), 0u8..16),
            1..50),
        seg_bytes in 48u64..512,
        cut_permille in 0u64..=1000,
        trunc_permille in 0u64..=1000,
    ) {
        use obr::storage::{Lsn, PageId};
        use obr::wal::{segment, CheckpointData, LogManager, LogRecord, TxnId};

        static DIRS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        // relaxed: scratch-directory name uniqueness counter only.
        let n = DIRS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!("obr-prop-seg-{}-{n}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        let file_path = root.join("wal.log");
        let dir_path = root.join("wal");
        let single = LogManager::open_file(&file_path).unwrap();
        let seg = LogManager::open_dir(&dir_path, seg_bytes).unwrap();

        for (i, (key, value, force, kind)) in ops.iter().enumerate() {
            let record = if *kind == 0 {
                LogRecord::Checkpoint { data: CheckpointData::default() }
            } else {
                LogRecord::TxnInsert {
                    txn: TxnId(i as u64 + 1),
                    page: PageId(1),
                    key: *key,
                    value: value.clone(),
                    prev_lsn: Lsn::ZERO,
                }
            };
            let a = single.append(&record);
            let b = seg.append(&record);
            prop_assert_eq!(a, b, "append must assign the same LSN in both layouts");
            if *force {
                single.flush_to(a).unwrap();
                seg.flush_to(b).unwrap();
            }
        }
        single.flush_all().unwrap();
        seg.flush_all().unwrap();

        // 1) Fully flushed: observationally identical.
        prop_assert_eq!(single.durable_lsn(), seg.durable_lsn());
        prop_assert_eq!(
            single.records_from(Lsn(1)).unwrap(),
            seg.records_from(Lsn(1)).unwrap()
        );
        prop_assert_eq!(
            single.last_checkpoint().unwrap(),
            seg.last_checkpoint().unwrap()
        );
        let single_bytes = std::fs::read(&file_path).unwrap();
        let segments = segment::list_segments(&dir_path).unwrap();
        let mut cat_bytes = Vec::new();
        for (_, p) in &segments {
            cat_bytes.extend(std::fs::read(p).unwrap());
        }
        prop_assert_eq!(
            &single_bytes,
            &cat_bytes,
            "segment files must concatenate to the single-file image"
        );

        // 2) Torn tail: a byte cut inside the active segment is the same
        // crash as cutting the single file at the same global offset.
        let (_, active_path) = segments.last().unwrap();
        let active_bytes = std::fs::read(active_path).unwrap();
        let sealed_total = cat_bytes.len() - active_bytes.len();
        let cut = active_bytes.len() * cut_permille as usize / 1000;
        let torn_file = root.join("torn.log");
        std::fs::write(&torn_file, &single_bytes[..sealed_total + cut]).unwrap();
        let torn_dir = root.join("torn-wal");
        std::fs::create_dir_all(&torn_dir).unwrap();
        for (_, p) in &segments {
            std::fs::copy(p, torn_dir.join(p.file_name().unwrap())).unwrap();
        }
        std::fs::write(
            torn_dir.join(active_path.file_name().unwrap()),
            &active_bytes[..cut],
        )
        .unwrap();
        {
            let a = LogManager::open_file(&torn_file).unwrap();
            let b = LogManager::open_dir(&torn_dir, seg_bytes).unwrap();
            prop_assert_eq!(
                a.durable_lsn(),
                b.durable_lsn(),
                "torn reopen must land on the same record boundary"
            );
            prop_assert_eq!(
                a.records_from(Lsn(1)).unwrap(),
                b.records_from(Lsn(1)).unwrap()
            );
        }

        // 3) Truncate + recycle vs. truncate + compact.
        let end = single.durable_lsn().0;
        let t = Lsn(1 + (end - 1) * trunc_permille / 1000);
        single.truncate_before(t);
        single.compact_file().unwrap();
        seg.truncate_before(t);
        seg.recycle_segments().unwrap();
        prop_assert_eq!(single.first_lsn(), t, "single-file truncation is exact");
        prop_assert!(
            seg.first_lsn() <= t,
            "segmented truncation rounds down to a boundary, never past the mark"
        );
        prop_assert_eq!(
            single.records_from(t).unwrap(),
            seg.records_from(t).unwrap(),
            "both layouts must agree on every record past the truncation point"
        );
        drop(single);
        drop(seg);

        // Reopen both from disk. The single file was rewritten so its LSN
        // labels restart at 1; the segmented dir keeps true labels. The
        // retained *records* must line up: the single file's contents are
        // exactly the tail of the segmented log's.
        let single2 = LogManager::open_file(&file_path).unwrap();
        let seg2 = LogManager::open_dir(&dir_path, seg_bytes).unwrap();
        let vals_a: Vec<LogRecord> = single2
            .records_from(Lsn(1))
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let vals_b: Vec<LogRecord> = seg2
            .records_from(Lsn(1))
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        prop_assert!(vals_b.len() >= vals_a.len());
        prop_assert_eq!(
            &vals_b[vals_b.len() - vals_a.len()..],
            &vals_a[..],
            "single-file tail must be a suffix of the recycled segmented log"
        );
        drop(single2);
        drop(seg2);
        std::fs::remove_dir_all(&root).ok();
    }
}
