//! Cross-crate integration tests through the public umbrella API.

use std::sync::Arc;

use obr::btree::SidePointerMode;
use obr::core::{recover, Database, FailPoint, FailSite, ReorgConfig, ReorgTrigger, Reorganizer};
use obr::storage::{DiskManager, InMemoryDisk};
use obr::txn::Session;

fn fresh(pages: u32) -> (Arc<InMemoryDisk>, Arc<Database>) {
    let disk = Arc::new(InMemoryDisk::new(pages));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        pages as usize,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    (disk, db)
}

#[test]
fn lifecycle_insert_degrade_reorganize_query() {
    let (_disk, db) = fresh(16_384);
    let s = Session::new(Arc::clone(&db));
    for k in 0..5000u64 {
        s.insert(k, &k.to_be_bytes()).unwrap();
    }
    for k in 0..5000u64 {
        if k % 4 != 0 {
            s.delete(k).unwrap();
        }
    }
    let before = db.tree().stats().unwrap();
    Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
        .run()
        .unwrap();
    let after = db.tree().stats().unwrap();
    assert!(after.leaf_pages < before.leaf_pages);
    assert!(after.avg_leaf_fill > before.avg_leaf_fill * 2.0);
    // Every surviving record is still reachable.
    for k in (0..5000u64).step_by(4) {
        assert_eq!(s.read(k).unwrap().unwrap(), k.to_be_bytes());
    }
    assert_eq!(s.read(1).unwrap(), None);
    db.tree().validate().unwrap();
}

#[test]
fn scans_agree_with_point_reads_after_reorg() {
    let (_disk, db) = fresh(8192);
    let s = Session::new(Arc::clone(&db));
    for k in 0..2000u64 {
        s.insert(k * 5, &k.to_le_bytes()).unwrap();
    }
    for k in 0..2000u64 {
        if k % 2 == 0 {
            s.delete(k * 5).unwrap();
        }
    }
    Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
        .run()
        .unwrap();
    let scan = s.scan(0, 10_000).unwrap();
    for (k, v) in &scan {
        assert_eq!(s.read(*k).unwrap().as_deref(), Some(v.as_slice()));
    }
    assert_eq!(
        scan.len(),
        (0..2000).filter(|k| k % 2 == 1 && k * 5 <= 10_000).count()
    );
}

#[test]
fn pass3_crash_resumes_from_stable_key() {
    let (disk, db) = fresh(32_768);
    // Tall, wide tree so pass 3 takes several stable points.
    let records: Vec<(u64, Vec<u8>)> = (0..12_000u64).map(|k| (k, vec![3u8; 64])).collect();
    db.tree().bulk_load(&records, 0.9, 0.05).unwrap();
    let before = db.tree().stats().unwrap();
    assert!(before.height >= 2);
    db.checkpoint().unwrap();
    let expected = db.tree().collect_all().unwrap();

    // Crash after the second stable point.
    let cfg = ReorgConfig {
        swap_pass: false,
        stable_interval: 3,
        ..ReorgConfig::default()
    };
    let reorg = Reorganizer::new(Arc::clone(&db), cfg.clone())
        .with_fail_point(FailPoint::new(FailSite::Pass3AfterStable, 1));
    let err = reorg.pass3_shrink().unwrap_err();
    assert!(err.to_string().contains("injected crash"));
    let mut flip = false;
    db.crash(|_| {
        flip = !flip;
        flip
    })
    .unwrap();

    let db2 = Database::reopen(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        Arc::clone(db.log()),
        32_768,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let report = recover(&db2).unwrap();
    let resume = report
        .pass3_resume
        .expect("pass 3 was in flight: recovery must report the restart state");
    assert!(resume.new_root.is_valid());
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), expected);

    // Resume pass 3 from the stable key and finish the switch.
    let reorg2 = Reorganizer::new(Arc::clone(&db2), cfg);
    reorg2.pass3_resume(resume).unwrap();
    let after = db2.tree().stats().unwrap();
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), expected);
    assert!(
        after.height < before.height,
        "resumed pass 3 must still shrink the tree ({} -> {})",
        before.height,
        after.height
    );
}

#[test]
fn crash_between_passes_preserves_everything() {
    let (disk, db) = fresh(16_384);
    let records: Vec<(u64, Vec<u8>)> = (0..4000u64).map(|k| (k, vec![1u8; 64])).collect();
    db.tree().bulk_load(&records, 0.3, 0.9).unwrap();
    db.checkpoint().unwrap();
    let expected = db.tree().collect_all().unwrap();
    let cfg = ReorgConfig {
        swap_pass: false,
        shrink_pass: false,
        ..ReorgConfig::default()
    };
    Reorganizer::new(Arc::clone(&db), cfg)
        .pass1_compact()
        .unwrap();
    // Crash with NOTHING extra flushed (the log is volatile past the last
    // force); recovery must replay the whole pass from the log.
    db.log().flush_all().unwrap();
    db.crash(|_| false).unwrap();
    let db2 = Database::reopen(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        Arc::clone(db.log()),
        16_384,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    recover(&db2).unwrap();
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), expected);
}

#[test]
fn aborted_transactions_never_survive_recovery() {
    let (disk, db) = fresh(4096);
    let s = Session::new(Arc::clone(&db));
    for k in 0..100u64 {
        s.insert(k, b"committed").unwrap();
    }
    db.checkpoint().unwrap();
    // An in-flight transaction dies with the crash.
    let mut t = s.begin();
    t.insert(1000, b"uncommitted").unwrap();
    t.delete(5).unwrap();
    db.log().flush_all().unwrap(); // even if its records reached the durable log
    std::mem::forget(t); // crash before commit
    db.crash(|_| true).unwrap();
    let db2 = Database::reopen(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        Arc::clone(db.log()),
        4096,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let report = recover(&db2).unwrap();
    assert!(report.losers_undone >= 1);
    let s2 = Session::new(Arc::clone(&db2));
    assert_eq!(s2.read(1000).unwrap(), None, "loser insert rolled back");
    assert_eq!(
        s2.read(5).unwrap().unwrap(),
        b"committed",
        "loser delete rolled back"
    );
}

#[test]
fn file_disk_round_trip() {
    use obr::storage::FileDisk;
    let dir = std::env::temp_dir().join(format!("obr-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.db");
    {
        let disk = Arc::new(FileDisk::open(&path, 2048).unwrap());
        let db =
            Database::create(disk as Arc<dyn DiskManager>, 2048, SidePointerMode::TwoWay).unwrap();
        let s = Session::new(Arc::clone(&db));
        for k in 0..500u64 {
            s.insert(k, &k.to_le_bytes()).unwrap();
        }
        Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
            .run()
            .unwrap();
        db.pool().flush_all().unwrap();
    }
    // Reopen the file: the tree is durable.
    {
        let disk = Arc::new(FileDisk::open(&path, 2048).unwrap());
        let pool = Arc::new(obr::storage::BufferPool::new(
            disk as Arc<dyn DiskManager>,
            2048,
        ));
        let fsm = Arc::new(obr::storage::FreeSpaceMap::new_all_allocated(2048));
        let log = Arc::new(obr::wal::LogManager::new());
        let tree = obr::btree::BTree::open(
            pool,
            fsm,
            log,
            obr::storage::PageId(0),
            SidePointerMode::TwoWay,
        )
        .unwrap();
        assert_eq!(tree.validate().unwrap(), 500);
        assert_eq!(tree.search(123).unwrap().unwrap(), 123u64.to_le_bytes());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn baseline_and_ours_produce_identical_data() {
    use obr::baseline::{TandemConfig, TandemReorganizer};
    let mk = || {
        let (_d, db) = fresh(8192);
        let records: Vec<(u64, Vec<u8>)> = (0..3000u64).map(|k| (k, vec![2u8; 64])).collect();
        db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
        db
    };
    let ours = mk();
    let theirs = mk();
    Reorganizer::new(Arc::clone(&ours), ReorgConfig::default())
        .run()
        .unwrap();
    TandemReorganizer::new(Arc::clone(&theirs), TandemConfig::default())
        .run()
        .unwrap();
    assert_eq!(
        ours.tree().collect_all().unwrap(),
        theirs.tree().collect_all().unwrap()
    );
    ours.tree().validate().unwrap();
    theirs.tree().validate().unwrap();
}

#[test]
fn full_reorganization_races_live_transactions() {
    use obr::core::ReorgTrigger;
    use obr::txn::{run_workload, KeyDist, WorkloadConfig};
    use obr_sync::atomic::AtomicBool;
    use std::time::Duration;

    let disk = Arc::new(InMemoryDisk::new(32_768));
    let db = Database::create_with_regions(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        32_768,
        SidePointerMode::TwoWay,
        1024,
    )
    .unwrap();
    // A sparse, tall tree (low node fill) so every pass has work.
    let records: Vec<(u64, Vec<u8>)> = (0..6000u64).map(|k| (k * 4, vec![6u8; 64])).collect();
    db.tree().bulk_load(&records, 0.3, 0.1).unwrap();

    let stop = AtomicBool::new(false);
    let decision = std::thread::scope(|s| {
        let dbr = Arc::clone(&db);
        let h = s.spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let r = Reorganizer::new(dbr, ReorgConfig::default());
            r.run_if_needed(ReorgTrigger::default()).unwrap()
        });
        let wl = WorkloadConfig {
            readers: 2,
            updaters: 2,
            key_space: 30_000,
            duration: Duration::from_millis(700),
            dist: KeyDist::Uniform,
            ..WorkloadConfig::default()
        };
        let report = run_workload(&db, &wl, &stop);
        assert!(report.total_ops() > 0);
        h.join().unwrap()
    });
    assert!(decision.compacted, "{decision:?}");
    assert!(decision.shrunk, "{decision:?}");
    db.tree().validate().unwrap();
    // Every originally loaded key that was not deleted by the workload is
    // still present with its value; scan/point agreement holds.
    let s = Session::new(Arc::clone(&db));
    let scan = s.scan(0, u64::MAX).unwrap();
    for (k, v) in scan.iter().take(500) {
        assert_eq!(s.read(*k).unwrap().as_deref(), Some(v.as_slice()));
    }
}

#[test]
fn pass3_crash_during_catchup_resumes_after_build_finished() {
    use obr::core::STABLE_ALL_READ;
    let disk = Arc::new(InMemoryDisk::new(32_768));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        32_768,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..8000u64).map(|k| (k, vec![8u8; 64])).collect();
    db.tree().bulk_load(&records, 0.9, 0.1).unwrap();
    let before = db.tree().stats().unwrap();
    db.checkpoint().unwrap();
    let expected = db.tree().collect_all().unwrap();
    // Crash after the build finished but before the switch.
    let cfg = ReorgConfig {
        swap_pass: false,
        ..ReorgConfig::default()
    };
    let reorg = Reorganizer::new(Arc::clone(&db), cfg.clone())
        .with_fail_point(FailPoint::new(FailSite::Pass3BeforeSwitch, 0));
    let _ = reorg.pass3_shrink().unwrap_err();
    db.crash(|p| p.0 % 2 == 0).unwrap();
    let db2 = Database::reopen(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        Arc::clone(db.log()),
        32_768,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let report = recover(&db2).unwrap();
    let resume = report.pass3_resume.expect("pass 3 in flight");
    assert_eq!(
        resume.stable_key, STABLE_ALL_READ,
        "the final stable record marks the build complete"
    );
    assert_eq!(db2.tree().collect_all().unwrap(), expected);
    // Resume goes straight to catch-up + switch.
    Reorganizer::new(Arc::clone(&db2), cfg)
        .pass3_resume(resume)
        .unwrap();
    let after = db2.tree().stats().unwrap();
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), expected);
    assert!(after.height < before.height);
}

#[test]
fn durable_database_restarts_from_files() {
    let dir = std::env::temp_dir().join(format!("obr-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let expected;
    {
        // Process 1: create, load, reorganize with a mid-unit "power cut"
        // (process exits without flushing anything further).
        let db = Database::create_durable(&dir, 8192, 256, SidePointerMode::TwoWay).unwrap();
        let s = Session::new(Arc::clone(&db));
        for k in 0..1500u64 {
            s.insert(k, &k.to_le_bytes()).unwrap();
        }
        for k in 0..1500u64 {
            if k % 3 != 0 {
                s.delete(k).unwrap();
            }
        }
        db.checkpoint().unwrap();
        expected = db.tree().collect_all().unwrap();
        let cfg = ReorgConfig {
            swap_pass: false,
            shrink_pass: false,
            ..ReorgConfig::default()
        };
        let reorg = Reorganizer::new(Arc::clone(&db), cfg)
            .with_fail_point(FailPoint::new(FailSite::AfterFirstMove, 1));
        let _ = reorg.pass1_compact().unwrap_err();
        db.log().flush_all().unwrap(); // the WAL contract: the log is durable
                                       // Drop everything without flushing pages: the "process" dies here.
    }
    {
        // Process 2: restart purely from the files on disk.
        let db = Database::open_durable(&dir, 256, SidePointerMode::TwoWay).unwrap();
        let report = recover(&db).unwrap();
        assert_eq!(report.forward_units_completed, 1);
        db.tree().validate().unwrap();
        assert_eq!(db.tree().collect_all().unwrap(), expected);
        // Finish the job and make it durable.
        Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
            .run()
            .unwrap();
        db.pool().flush_all().unwrap();
        db.log().flush_all().unwrap();
    }
    {
        // Process 3: clean restart sees the reorganized tree.
        let db = Database::open_durable(&dir, 256, SidePointerMode::TwoWay).unwrap();
        recover(&db).unwrap();
        db.tree().validate().unwrap();
        assert_eq!(db.tree().collect_all().unwrap(), expected);
        assert!(db.tree().stats().unwrap().avg_leaf_fill > 0.7);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Long-running soak: a bigger tree, several full churn/reorganize/crash
/// cycles. Run explicitly with `cargo test -- --ignored soak`.
#[test]
#[ignore = "soak test; run explicitly"]
fn soak_churn_reorganize_crash_cycles() {
    let disk = Arc::new(InMemoryDisk::new(131_072));
    let mut db = Database::create_with_regions(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        131_072,
        SidePointerMode::TwoWay,
        4096,
    )
    .unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..40_000u64).map(|k| (k * 2, vec![9u8; 64])).collect();
    db.tree().bulk_load(&records, 0.9, 0.5).unwrap();
    let mut rng: u64 = 0x50A1C;
    for cycle in 0..5u64 {
        let s = Session::new(Arc::clone(&db));
        // Churn.
        for i in 0..8_000u64 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let k = rng % 120_000;
            if i % 3 == 0 {
                let _ = s.insert(k, &k.to_le_bytes());
            } else {
                let _ = s.delete(k);
            }
        }
        db.checkpoint().unwrap();
        let expected = db.tree().collect_all().unwrap();
        // Reorganize with a crash in the middle of pass 1.
        let cfg = ReorgConfig::default();
        let reorg = Reorganizer::new(Arc::clone(&db), cfg.clone())
            .with_fail_point(FailPoint::new(FailSite::AfterFirstMove, 3 + cycle));
        match reorg.run() {
            Ok(_) => {}
            Err(_) => {
                db.crash(|p| p.0 % 2 == cycle as u32 % 2).unwrap();
                let db2 = Database::reopen(
                    Arc::clone(&disk) as Arc<dyn DiskManager>,
                    Arc::clone(db.log()),
                    131_072,
                    SidePointerMode::TwoWay,
                )
                .unwrap();
                let report = recover(&db2).unwrap();
                if let Some(state) = report.pass3_resume {
                    Reorganizer::new(Arc::clone(&db2), cfg.clone())
                        .pass3_resume(state)
                        .unwrap();
                }
                Reorganizer::new(Arc::clone(&db2), cfg).run().unwrap();
                db = db2;
            }
        }
        db.tree().validate().unwrap();
        assert_eq!(db.tree().collect_all().unwrap(), expected, "cycle {cycle}");
        let stats = db.tree().stats().unwrap();
        assert!(
            stats.avg_leaf_fill > 0.6,
            "cycle {cycle}: {}",
            stats.avg_leaf_fill
        );
        // Log hygiene between cycles.
        db.truncate_log().unwrap();
    }
}

// ---- moved from crates/core (needs the txn layer) ----

fn edge_db(pages: u32) -> Arc<Database> {
    let disk = Arc::new(InMemoryDisk::new(pages));
    Database::create(
        disk as Arc<dyn DiskManager>,
        pages as usize,
        SidePointerMode::TwoWay,
    )
    .unwrap()
}

#[test]
fn repeated_reorganizations_converge_and_stay_converged() {
    use obr::txn::Session;
    let d = edge_db(16_384);
    let s = Session::new(Arc::clone(&d));
    for k in 0..4000u64 {
        s.insert(k, &k.to_le_bytes()).unwrap();
    }
    for k in 0..4000u64 {
        if k % 5 != 0 {
            s.delete(k).unwrap();
        }
    }
    // Three back-to-back full runs: the first does the work, the rest are
    // no-ops under the trigger.
    let mut acted = 0;
    for _ in 0..3 {
        let r = Reorganizer::new(Arc::clone(&d), ReorgConfig::default());
        let decision = r.run_if_needed(ReorgTrigger::default()).unwrap();
        if decision.compacted || decision.swapped || decision.shrunk {
            acted += 1;
        }
    }
    assert_eq!(acted, 1, "only the first run should find work");
    d.tree().validate().unwrap();
    assert_eq!(d.tree().stats().unwrap().records, 800);
}

#[test]
fn concurrent_partitioned_writers_with_reorganizer() {
    use obr::txn::{Session, TxnError};
    use std::collections::BTreeMap;
    // Each writer owns a disjoint key partition and keeps a private model;
    // the reorganizer runs across all partitions concurrently. At the end,
    // the union of the models must equal the tree exactly.
    let d = edge_db(32_768);
    let s0 = Session::new(Arc::clone(&d));
    for k in 0..8_000u64 {
        s0.insert(k, &k.to_be_bytes()).unwrap();
    }
    const WRITERS: u64 = 4;
    const SPAN: u64 = 2_000;
    let models: Vec<BTreeMap<u64, Vec<u8>>> = std::thread::scope(|scope| {
        let reorg_db = Arc::clone(&d);
        let rh = scope.spawn(move || {
            let cfg = ReorgConfig::default();
            for _ in 0..2 {
                let r = Reorganizer::new(Arc::clone(&reorg_db), cfg.clone());
                r.run().unwrap();
            }
        });
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let db = Arc::clone(&d);
            handles.push(scope.spawn(move || {
                let session = Session::new(db);
                let base = w * SPAN;
                let mut model: BTreeMap<u64, Vec<u8>> = (base..base + SPAN)
                    .map(|k| (k, k.to_be_bytes().to_vec()))
                    .collect();
                let mut rng = 0xFACE ^ w;
                for _ in 0..1_500 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let k = base + rng % SPAN;
                    if let std::collections::btree_map::Entry::Vacant(slot) = model.entry(k) {
                        let v = rng.to_le_bytes().to_vec();
                        match session.insert(k, &v) {
                            Ok(()) => {
                                slot.insert(v);
                            }
                            Err(TxnError::Deadlock) | Err(TxnError::Timeout) => {}
                            Err(e) => panic!("insert: {e}"),
                        }
                    } else {
                        match session.delete(k) {
                            Ok(_) => {
                                model.remove(&k);
                            }
                            Err(TxnError::Deadlock) | Err(TxnError::Timeout) => {}
                            Err(e) => panic!("delete: {e}"),
                        }
                    }
                }
                model
            }));
        }
        let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        rh.join().unwrap();
        models
    });
    d.tree().validate().unwrap();
    let mut want: Vec<(u64, Vec<u8>)> = models.into_iter().flat_map(|m| m.into_iter()).collect();
    want.sort();
    assert_eq!(d.tree().collect_all().unwrap(), want);
}
