//! Scheduler smoke tests, compiled only under `--cfg obr_model`.
#![cfg(obr_model)]

use std::collections::HashSet;
use std::sync::Arc;

use obr_sync::atomic::{AtomicU64, Ordering};
use obr_sync::model::{run_controlled, PrefixChooser, RandomChooser, RunResult};
use obr_sync::{thread, Condvar, Mutex};

#[test]
fn counter_is_race_free_across_seeds() {
    for seed in 0..40u64 {
        let report = run_controlled(Box::new(RandomChooser::new(seed)), 10_000, || {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let n = n.clone();
                    thread::spawn(move || {
                        for _ in 0..4 {
                            n.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 12);
        });
        assert!(
            report.result.is_complete(),
            "seed {seed}: {:?}",
            report.result
        );
    }
}

#[test]
fn same_seed_same_schedule() {
    let run = |seed| {
        run_controlled(Box::new(RandomChooser::new(seed)), 10_000, || {
            let m = Arc::new(Mutex::named(0u32, "test.m"));
            let hs: Vec<_> = (0..3)
                .map(|_| {
                    let m = m.clone();
                    thread::spawn(move || {
                        *m.lock() += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*m.lock(), 3);
        })
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.schedule_hash, b.schedule_hash);
    // Different seeds should find at least one different schedule over a
    // couple of tries (not guaranteed per-seed, but 7 vs 8 diverge here).
    assert!(a.schedule_hash != c.schedule_hash || a.schedule == c.schedule);
}

#[test]
fn seeds_cover_many_distinct_schedules() {
    let mut seen = HashSet::new();
    for seed in 0..64u64 {
        let report = run_controlled(Box::new(RandomChooser::new(seed)), 10_000, || {
            let m = Arc::new(Mutex::new(Vec::new()));
            let hs: Vec<_> = (0..3)
                .map(|i| {
                    let m = m.clone();
                    thread::spawn(move || {
                        m.lock().push(i);
                        m.lock().push(i * 10);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        });
        assert!(report.result.is_complete());
        seen.insert(report.schedule_hash);
    }
    assert!(seen.len() > 8, "only {} distinct schedules", seen.len());
}

#[test]
fn replaying_choices_reproduces_schedule() {
    let orig = run_controlled(Box::new(RandomChooser::new(42)), 10_000, || {
        let m = Arc::new(Mutex::new(0u32));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    *m.lock() += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    });
    let replay = run_controlled(
        Box::new(PrefixChooser::new(orig.choices.clone())),
        10_000,
        || {
            let m = Arc::new(Mutex::new(0u32));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = m.clone();
                    thread::spawn(move || {
                        *m.lock() += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        },
    );
    assert_eq!(orig.schedule, replay.schedule);
}

#[test]
fn deadlock_is_detected() {
    let report = run_controlled(Box::new(RandomChooser::new(3)), 10_000, || {
        let a = Arc::new(Mutex::named(0u32, "test.a"));
        let b = Arc::new(Mutex::named(0u32, "test.b"));
        let (a2, b2) = (a.clone(), b.clone());
        let h = thread::spawn(move || {
            let _g1 = b2.lock();
            thread::yield_now();
            let _g2 = a2.lock();
        });
        let _g1 = a.lock();
        thread::yield_now();
        let _g2 = b.lock();
        drop(_g2);
        drop(_g1);
        let _ = h.join();
    });
    // Some schedules deadlock (a then b vs b then a), others complete;
    // across enough seeds the deadlock must show up. Seed 3 finds it —
    // pinned by the determinism test above.
    match report.result {
        RunResult::Deadlock { ref detail } => {
            assert!(detail.contains("test.a") || detail.contains("test.b"));
        }
        RunResult::Complete => {
            // Acceptable for this seed; verify a deadlock exists somewhere.
            let mut found = false;
            for seed in 0..50 {
                let r = run_controlled(Box::new(RandomChooser::new(seed)), 10_000, || {
                    let a = Arc::new(Mutex::named(0u32, "test.a"));
                    let b = Arc::new(Mutex::named(0u32, "test.b"));
                    let (a2, b2) = (a.clone(), b.clone());
                    let h = thread::spawn(move || {
                        let _g1 = b2.lock();
                        thread::yield_now();
                        let _g2 = a2.lock();
                    });
                    let _g1 = a.lock();
                    thread::yield_now();
                    let _g2 = b.lock();
                    drop(_g2);
                    drop(_g1);
                    let _ = h.join();
                });
                if matches!(r.result, RunResult::Deadlock { .. }) {
                    found = true;
                    break;
                }
            }
            assert!(found, "no seed found the a/b deadlock");
        }
        other => panic!("unexpected result {other:?}"),
    }
}

#[test]
fn assertion_failures_are_reported_as_panics() {
    let report = run_controlled(Box::new(RandomChooser::new(1)), 10_000, || {
        let h = thread::spawn(|| panic!("boom from child"));
        let _ = h.join();
    });
    match report.result {
        RunResult::Panic { message, .. } => assert!(message.contains("boom")),
        other => panic!("expected panic result, got {other:?}"),
    }
}

#[test]
fn condvar_handoff_completes() {
    for seed in 0..30u64 {
        let report = run_controlled(Box::new(RandomChooser::new(seed)), 10_000, || {
            let pair = Arc::new((Mutex::named(false, "test.flag"), Condvar::new()));
            let p2 = pair.clone();
            let h = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_one();
            }
            h.join().unwrap();
        });
        assert!(
            report.result.is_complete(),
            "seed {seed}: {:?}",
            report.result
        );
    }
}

#[test]
fn lock_order_edges_are_recorded() {
    let report = run_controlled(Box::new(RandomChooser::new(5)), 10_000, || {
        let outer = Mutex::named(0u32, "test.outer");
        let inner = Mutex::named(0u32, "test.inner");
        let _a = outer.lock();
        let _b = inner.lock();
    });
    assert!(report.result.is_complete());
    assert!(report.edges.contains(&("test.outer", "test.inner")));
    assert!(!report.edges.contains(&("test.inner", "test.outer")));
}
