//! Facade implementation used under `--cfg obr_model`: every operation
//! reports to the scheduler in [`crate::model`] as a yield point before
//! touching the real primitive.
//!
//! Each lock wraps a *real* `parking_lot` shim primitive for data access:
//! the scheduler only grants an acquisition when the lock is virtually
//! free, so the inner acquisition never blocks — which keeps the whole
//! model free of `unsafe`. Operations on threads that are not part of a
//! controlled run fall through to the plain behavior.
//!
//! Constraint (documented, not enforced): a lock or condvar used inside a
//! controlled scenario must only be touched by threads of that scenario.
//! Mixing controlled and uncontrolled threads on one primitive bypasses
//! the virtual state and can wedge the inner lock.

use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;
use std::time::Instant;

use crate::model;

fn obj_id(slot: &OnceLock<u64>) -> u64 {
    *slot.get_or_init(model::alloc_obj_id)
}

/// A mutual-exclusion lock whose acquisitions are scheduled by the model
/// runtime inside controlled runs.
pub struct Mutex<T> {
    class: &'static str,
    obj: OnceLock<u64>,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an anonymous mutex (lock class `"mutex.anon"`).
    pub const fn new(value: T) -> Self {
        Self::named(value, "mutex.anon")
    }

    /// Creates a mutex tagged with a lock-class name for the model
    /// scheduler's lock-order graph.
    pub const fn named(value: T, class: &'static str) -> Self {
        Self {
            class,
            obj: OnceLock::new(),
            inner: parking_lot::Mutex::new(value),
        }
    }

    fn obj(&self) -> u64 {
        obj_id(&self.obj)
    }

    /// Acquires the mutex — a scheduler yield point in controlled runs.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let controlled = model::on_mutex_lock(self.obj(), self.class);
        // Inside a controlled run the scheduler granted the lock while it
        // was virtually free, so this inner acquisition cannot block.
        let inner = self.inner.lock();
        MutexGuard {
            lock: self,
            controlled,
            inner: Some(inner),
        }
    }

    /// Attempts to acquire the mutex without blocking. In controlled runs
    /// the attempt itself is a yield point and its outcome is decided by
    /// the virtual lock state at the granted moment.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match model::on_mutex_try_lock(self.obj(), self.class) {
            Some(true) => Some(MutexGuard {
                lock: self,
                controlled: true,
                inner: Some(self.inner.lock()),
            }),
            Some(false) => None,
            None => self.inner.try_lock().map(|g| MutexGuard {
                lock: self,
                controlled: false,
                inner: Some(g),
            }),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mutex({})", self.class)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    controlled: bool,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if self.controlled {
                model::on_release(self.lock.obj(), self.lock.class, true);
            }
        }
    }
}

/// A reader-writer lock whose acquisitions are scheduled by the model
/// runtime inside controlled runs.
pub struct RwLock<T> {
    class: &'static str,
    obj: OnceLock<u64>,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an anonymous reader-writer lock (class `"rwlock.anon"`).
    pub const fn new(value: T) -> Self {
        Self::named(value, "rwlock.anon")
    }

    /// Creates a reader-writer lock tagged with a lock-class name.
    pub const fn named(value: T, class: &'static str) -> Self {
        Self {
            class,
            obj: OnceLock::new(),
            inner: parking_lot::RwLock::new(value),
        }
    }

    fn obj(&self) -> u64 {
        obj_id(&self.obj)
    }

    /// Acquires shared read access — a scheduler yield point in
    /// controlled runs.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let controlled = model::on_rw_acquire(self.obj(), self.class, false);
        RwLockReadGuard {
            lock: self,
            controlled,
            inner: Some(self.inner.read()),
        }
    }

    /// Acquires exclusive write access — a scheduler yield point in
    /// controlled runs.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let controlled = model::on_rw_acquire(self.obj(), self.class, true);
        RwLockWriteGuard {
            lock: self,
            controlled,
            inner: Some(self.inner.write()),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RwLock({})", self.class)
    }
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    controlled: bool,
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if self.controlled {
                model::on_release(self.lock.obj(), self.lock.class, false);
            }
        }
    }
}

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    controlled: bool,
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if self.controlled {
                model::on_release(self.lock.obj(), self.lock.class, true);
            }
        }
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline passed rather
    /// than because the condvar was notified.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose waits are scheduled by the model runtime
/// inside controlled runs (no spurious wakeups; `notify_one` wakes the
/// FIFO-first waiter).
pub struct Condvar {
    obj: OnceLock<u64>,
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            obj: OnceLock::new(),
            inner: parking_lot::Condvar::new(),
        }
    }

    fn obj(&self) -> u64 {
        obj_id(&self.obj)
    }

    fn model_wait<T>(&self, guard: &mut MutexGuard<'_, T>, timed: bool) -> bool {
        let mutex = guard.lock;
        // Drop the inner guard before the virtual release so the real
        // lock is free by the time another thread is granted it.
        drop(guard.inner.take());
        let timed_out = model::on_cond_wait(self.obj(), mutex.obj(), mutex.class, timed)
            .expect("controlled wait outside a controlled run");
        // The grant reacquired the mutex virtually, so this cannot block.
        guard.inner = Some(mutex.inner.lock());
        timed_out
    }

    /// Atomically releases the guard's mutex and parks until notified,
    /// reacquiring the mutex before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if guard.controlled {
            self.model_wait(guard, false);
        } else {
            self.inner.wait(guard.inner.as_mut().expect("guard active"));
        }
    }

    /// Like [`Condvar::wait`] but with a deadline. In controlled runs the
    /// wall-clock deadline is ignored: the timeout fires only in
    /// schedules where no other thread is enabled (i.e. where real
    /// execution would also have waited the timeout out).
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        if guard.controlled {
            WaitTimeoutResult {
                timed_out: self.model_wait(guard, true),
            }
        } else {
            let r = self
                .inner
                .wait_until(guard.inner.as_mut().expect("guard active"), deadline);
            WaitTimeoutResult {
                timed_out: r.timed_out(),
            }
        }
    }

    /// Wakes one waiter (the FIFO-first un-notified one in controlled
    /// runs).
    pub fn notify_one(&self) {
        if !model::on_notify(self.obj(), false) {
            self.inner.notify_one();
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if !model::on_notify(self.obj(), true) {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Modeled atomics: every operation is a scheduler yield point carrying
/// its declared `Ordering` (recorded in the schedule trace).
pub mod atomic {
    use std::sync::OnceLock;

    use crate::model;

    pub use std::sync::atomic::Ordering;

    fn ord_name(ord: Ordering) -> &'static str {
        match ord {
            // relaxed: naming the ordering for traces, not performing an
            // atomic access.
            Ordering::Relaxed => "Relaxed",
            Ordering::Acquire => "Acquire",
            Ordering::Release => "Release",
            Ordering::AcqRel => "AcqRel",
            Ordering::SeqCst => "SeqCst",
            _ => "Other",
        }
    }

    macro_rules! model_atomic {
        ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$meta])*
            pub struct $name {
                obj: OnceLock<u64>,
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $prim) -> Self {
                    Self { obj: OnceLock::new(), inner: <$std>::new(v) }
                }

                fn hook(&self, write: bool, rmw: bool, ord: Ordering) {
                    let obj = *self.obj.get_or_init(model::alloc_obj_id);
                    model::on_atomic(obj, write, rmw, ord_name(ord));
                }

                /// Loads the value.
                pub fn load(&self, ord: Ordering) -> $prim {
                    self.hook(false, false, ord);
                    self.inner.load(ord)
                }

                /// Stores a value.
                pub fn store(&self, v: $prim, ord: Ordering) {
                    self.hook(true, false, ord);
                    self.inner.store(v, ord);
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                    self.hook(true, true, ord);
                    self.inner.swap(v, ord)
                }

                /// Returns a mutable reference to the underlying value.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }

                /// Consumes the atomic, returning the contained value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
            model_atomic!($(#[$meta])* $name, $std, $prim);

            impl $name {
                /// Adds to the value, returning the previous one.
                pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                    self.hook(true, true, ord);
                    self.inner.fetch_add(v, ord)
                }

                /// Subtracts from the value, returning the previous one.
                pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                    self.hook(true, true, ord);
                    self.inner.fetch_sub(v, ord)
                }

                /// Stores the maximum of the current and given values,
                /// returning the previous one.
                pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                    self.hook(true, true, ord);
                    self.inner.fetch_max(v, ord)
                }

                /// Stores the minimum of the current and given values,
                /// returning the previous one.
                pub fn fetch_min(&self, v: $prim, ord: Ordering) -> $prim {
                    self.hook(true, true, ord);
                    self.inner.fetch_min(v, ord)
                }

                /// Applies a closure to the value until it succeeds or
                /// the closure returns `None`.
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$prim, $prim>
                where
                    F: FnMut($prim) -> Option<$prim>,
                {
                    self.hook(true, true, set_order);
                    self.inner.fetch_update(set_order, fetch_order, f)
                }

                /// Compare-and-exchange; returns `Ok(previous)` on
                /// success.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.hook(true, true, success);
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    model_atomic!(
        /// Modeled `AtomicBool`.
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );
    model_atomic_int!(
        /// Modeled `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );
    model_atomic_int!(
        /// Modeled `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    model_atomic_int!(
        /// Modeled `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    model_atomic_int!(
        /// Modeled `AtomicI64`.
        AtomicI64,
        std::sync::atomic::AtomicI64,
        i64
    );

    impl AtomicBool {
        /// Logical-or with the value, returning the previous one.
        pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
            self.hook(true, true, ord);
            self.inner.fetch_or(v, ord)
        }

        /// Logical-and with the value, returning the previous one.
        pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
            self.hook(true, true, ord);
            self.inner.fetch_and(v, ord)
        }
    }
}
