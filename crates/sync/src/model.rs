//! The deterministic cooperative scheduler behind the `obr_model` build.
//!
//! Scenario bodies run on real OS threads, but only **one thread runs at a
//! time**: every facade operation (lock acquire, atomic op, condvar wait,
//! spawn/join/yield) is a *yield point* where the running thread parks and
//! a scheduling decision picks which parked thread continues. The decision
//! is delegated to a [`Chooser`], so the same seed (or the same replayed
//! choice prefix) always produces the same interleaving.
//!
//! Key design points:
//!
//! * **Worker-driven token passing.** There is no separate host thread:
//!   the thread that just parked runs the scheduling decision inline and
//!   either continues itself (no context switch) or wakes the chosen
//!   thread via a condvar.
//! * **Releases and notifies are inline**, not yield points: the next
//!   operation of the running thread is a yield point anyway, so making
//!   releases schedulable would only square the schedule space without
//!   adding observable interleavings. They do mark the executed step
//!   "dirty" so the DPOR-lite pruner in `obr-race` treats it as dependent
//!   on everything.
//! * **Timed condvar waits fire only when nothing else is enabled.** This
//!   models "the timeout eventually fires" without spurious `Timeout`
//!   results in schedules where real execution would have made progress.
//! * **No spurious wakeups**: a waiter becomes runnable only once
//!   notified (FIFO order for `notify_one`) or timeout-eligible, and its
//!   grant atomically reacquires the mutex.
//! * **Deadlock detection for free**: if no parked thread is enabled and
//!   at least one is unfinished, the run fails with a dump of every
//!   thread's pending operation and held locks.
//!
//! A run that fails (deadlock, panic, step limit) aborts the remaining
//! threads: they wake, unwind with a private sentinel panic (releasing
//! their locks via RAII), and the report records the first real failure.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// Thread-id within a controlled run (index into the run's thread table).
pub type ThreadId = usize;

static NEXT_OBJ: StdAtomicU64 = StdAtomicU64::new(1);

/// Allocates a process-unique id for a sync object (lock, condvar, atomic).
pub(crate) fn alloc_obj_id() -> u64 {
    // relaxed: uniqueness is all that matters; ids are never compared for
    // ordering across threads.
    NEXT_OBJ.fetch_add(1, StdOrdering::Relaxed)
}

thread_local! {
    static CURRENT: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct WorkerCtx {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) id: ThreadId,
}

pub(crate) fn current() -> Option<WorkerCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Sentinel panic payload used to unwind workers when a run aborts.
struct ScheduleAbort;

fn abort_unwind() -> ! {
    panic::panic_any(ScheduleAbort)
}

/// One schedulable operation a parked thread is waiting to perform.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum PendingOp {
    /// First grant of a freshly spawned thread.
    Start,
    /// Voluntary yield (also emitted after a spawn).
    Yield,
    /// Trace marker inserted by [`annotate`].
    Annotate(&'static str),
    /// Blocking mutex acquisition.
    MutexLock {
        /// Instance id of the mutex.
        obj: u64,
        /// Lock class of the mutex.
        class: &'static str,
    },
    /// Non-blocking mutex acquisition attempt (always enabled; the grant
    /// decides success).
    MutexTryLock {
        /// Instance id of the mutex.
        obj: u64,
        /// Lock class of the mutex.
        class: &'static str,
    },
    /// Shared read acquisition of an rwlock.
    RwRead {
        /// Instance id of the rwlock.
        obj: u64,
        /// Lock class of the rwlock.
        class: &'static str,
    },
    /// Exclusive write acquisition of an rwlock.
    RwWrite {
        /// Instance id of the rwlock.
        obj: u64,
        /// Lock class of the rwlock.
        class: &'static str,
    },
    /// Parked on a condvar; the grant atomically reacquires the mutex.
    CondWait {
        /// Instance id of the condvar.
        cv: u64,
        /// Instance id of the mutex to reacquire.
        mutex: u64,
        /// Lock class of the mutex.
        class: &'static str,
        /// Whether the wait carries a deadline (timeout-eligible).
        timed: bool,
    },
    /// An atomic operation with its declared memory ordering.
    Atomic {
        /// Instance id of the atomic.
        obj: u64,
        /// True for stores and read-modify-writes.
        write: bool,
        /// True for read-modify-write operations.
        rmw: bool,
        /// Name of the declared `Ordering` (e.g. `"Relaxed"`).
        ord: &'static str,
    },
    /// Joining a finished child thread.
    Join {
        /// Thread id of the child being joined.
        child: ThreadId,
    },
}

impl fmt::Debug for PendingOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PendingOp::Start => write!(f, "start"),
            PendingOp::Yield => write!(f, "yield"),
            PendingOp::Annotate(l) => write!(f, "annotate({l})"),
            PendingOp::MutexLock { obj, class } => write!(f, "lock({class}#{obj})"),
            PendingOp::MutexTryLock { obj, class } => write!(f, "try_lock({class}#{obj})"),
            PendingOp::RwRead { obj, class } => write!(f, "read({class}#{obj})"),
            PendingOp::RwWrite { obj, class } => write!(f, "write({class}#{obj})"),
            PendingOp::CondWait {
                cv,
                mutex,
                class,
                timed,
            } => {
                write!(f, "cond_wait(cv#{cv}, {class}#{mutex}, timed={timed})")
            }
            PendingOp::Atomic {
                obj,
                write,
                rmw,
                ord,
            } => {
                write!(
                    f,
                    "atomic#{obj}({}, {ord})",
                    if *rmw {
                        "rmw"
                    } else if *write {
                        "store"
                    } else {
                        "load"
                    }
                )
            }
            PendingOp::Join { child } => write!(f, "join(t{child})"),
        }
    }
}

/// Conflict-analysis classification of a candidate, used by the
/// DPOR-lite pruner in `obr-race`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CandKind {
    /// Touches no shared sync object (start/yield/annotate) — independent
    /// of everything.
    Pure,
    /// Touches sync object `obj`; `write` is true unless it is a pure
    /// read (atomic load, rwlock read).
    Sync {
        /// Instance id of the touched object.
        obj: u64,
        /// Whether the access mutates the object.
        write: bool,
    },
    /// Join — conservatively dependent on everything.
    Join,
}

/// One enabled choice at a scheduling decision.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// Thread that would run.
    pub thread: ThreadId,
    /// The operation that would be granted.
    pub op: PendingOp,
    /// Conflict classification of `op`.
    pub kind: CandKind,
    /// True when this candidate is a timed condvar wait firing its
    /// timeout (only offered when nothing else is enabled).
    pub timeout_fire: bool,
}

/// Summary of the previously executed step, handed to the chooser for
/// DPOR-style pruning decisions.
#[derive(Clone, Copy, Debug)]
pub struct Executed {
    /// Thread that executed the step.
    pub thread: ThreadId,
    /// Conflict classification of the granted operation.
    pub kind: CandKind,
    /// True when the thread performed inline releases/notifies after the
    /// grant — such a step must be treated as dependent on everything.
    pub span_dirty: bool,
}

/// Picks which enabled candidate runs at each scheduling decision.
pub trait Chooser {
    /// Returns an index into `candidates` (callers take it modulo the
    /// candidate count). `last` is the previously executed step with its
    /// completed span, or `None` at the first decision.
    fn choose(&mut self, step: usize, last: Option<&Executed>, candidates: &[Candidate]) -> usize;
}

/// Seeded xorshift64* chooser: the same seed always produces the same
/// schedule for a deterministic scenario.
pub struct RandomChooser {
    state: u64,
}

impl RandomChooser {
    /// Creates a chooser from a non-zero-normalized seed. The seed is
    /// scrambled with splitmix64 so consecutive seeds (`1, 2, 3, …`, the
    /// natural sweep shape) land in unrelated streams — `seed | 1` alone
    /// made even/odd neighbours identical.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }
}

impl Chooser for RandomChooser {
    fn choose(
        &mut self,
        _step: usize,
        _last: Option<&Executed>,
        candidates: &[Candidate],
    ) -> usize {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize % candidates.len()
    }
}

/// Replays a recorded prefix of candidate indices, then always picks the
/// first enabled candidate. This is the exhaustive explorer's replay
/// vehicle and the way a failing schedule is reproduced from a report.
pub struct PrefixChooser {
    prefix: Vec<usize>,
}

impl PrefixChooser {
    /// Creates a chooser that replays `prefix` (indices into each step's
    /// candidate list).
    pub fn new(prefix: Vec<usize>) -> Self {
        Self { prefix }
    }
}

impl Chooser for PrefixChooser {
    fn choose(&mut self, step: usize, _last: Option<&Executed>, candidates: &[Candidate]) -> usize {
        self.prefix.get(step).copied().unwrap_or(0) % candidates.len()
    }
}

/// Record of one scheduling decision: the enabled candidates, which was
/// chosen, and whether the chosen thread's run span performed inline
/// releases/notifies.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// Enabled candidates at this decision, in thread-id order.
    pub candidates: Vec<Candidate>,
    /// Index into `candidates` of the granted choice.
    pub chosen: usize,
    /// True when the granted thread released locks or notified condvars
    /// before parking again.
    pub span_dirty: bool,
}

/// One event in the linear execution trace of a schedule.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A scheduling decision granted `op` to `thread`.
    Grant {
        /// Decision index.
        step: usize,
        /// Granted thread.
        thread: ThreadId,
        /// Granted operation.
        op: PendingOp,
        /// True when a timed wait fired its timeout.
        timeout_fire: bool,
    },
    /// `thread` released a lock inline.
    Release {
        /// Releasing thread.
        thread: ThreadId,
        /// Instance id of the released lock.
        obj: u64,
        /// Lock class of the released lock.
        class: &'static str,
        /// True for mutex/write guards, false for read guards.
        write: bool,
    },
    /// `thread` notified a condvar inline.
    Notify {
        /// Notifying thread.
        thread: ThreadId,
        /// Instance id of the condvar.
        cv: u64,
        /// True for `notify_all`.
        all: bool,
    },
    /// `thread` finished its closure.
    Finished {
        /// Finished thread.
        thread: ThreadId,
    },
}

/// Why a controlled run ended.
#[derive(Clone, Debug)]
pub enum RunResult {
    /// All threads ran to completion.
    Complete,
    /// A thread panicked (assertion failure in the scenario body).
    Panic {
        /// Panicking thread.
        thread: ThreadId,
        /// Captured panic message.
        message: String,
    },
    /// No thread was enabled while some were unfinished.
    Deadlock {
        /// Human-readable dump of pending ops and held locks.
        detail: String,
    },
    /// The decision count exceeded the configured step budget.
    StepLimit,
}

impl RunResult {
    /// True only for [`RunResult::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, RunResult::Complete)
    }
}

/// Everything observed while executing one schedule.
pub struct RunReport {
    /// How the run ended.
    pub result: RunResult,
    /// Number of scheduling decisions taken.
    pub steps: usize,
    /// Candidate index chosen at each decision (replayable via
    /// [`PrefixChooser`]).
    pub choices: Vec<usize>,
    /// Thread granted at each decision; hashing this identifies the
    /// schedule.
    pub schedule: Vec<ThreadId>,
    /// FNV-1a hash of `schedule` — two runs with equal hashes executed
    /// the same interleaving.
    pub schedule_hash: u64,
    /// Lock-acquisition-order edges observed (held class → acquired
    /// class), deduplicated.
    pub edges: BTreeSet<(&'static str, &'static str)>,
    /// Full linear event trace.
    pub trace: Vec<TraceEvent>,
    /// Per-decision records for exhaustive exploration/backtracking.
    pub records: Vec<StepRecord>,
}

#[derive(Clone, Copy)]
struct Grant {
    timed_out: bool,
    try_ok: bool,
}

impl Default for Grant {
    fn default() -> Self {
        Self {
            timed_out: false,
            try_ok: true,
        }
    }
}

struct Held {
    obj: u64,
    class: &'static str,
    write: bool,
}

#[derive(Default)]
struct LockState {
    writer: Option<ThreadId>,
    readers: Vec<ThreadId>,
}

impl LockState {
    fn free(&self) -> bool {
        self.writer.is_none() && self.readers.is_empty()
    }
}

struct Waiter {
    thread: ThreadId,
    notified: bool,
}

#[derive(Default)]
struct CvState {
    waiters: VecDeque<Waiter>,
}

struct ThreadState {
    name: String,
    parked: bool,
    finished: bool,
    pending: Option<PendingOp>,
    granted: Option<Grant>,
    held: Vec<Held>,
    last_record: Option<usize>,
    span_dirty: bool,
}

struct SchedState {
    chooser: Box<dyn Chooser + Send>,
    max_steps: usize,
    steps: usize,
    threads: Vec<ThreadState>,
    locks: HashMap<u64, LockState>,
    cvs: HashMap<u64, CvState>,
    edges: BTreeSet<(&'static str, &'static str)>,
    trace: Vec<TraceEvent>,
    records: Vec<StepRecord>,
    running: Option<ThreadId>,
    aborting: bool,
    failure: Option<RunResult>,
    done: bool,
}

pub(crate) struct Scheduler {
    mu: StdMutex<SchedState>,
    cv_workers: StdCondvar,
    cv_done: StdCondvar,
}

fn fnv1a(ids: &[ThreadId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &id in ids {
        for b in (id as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl Scheduler {
    fn new(chooser: Box<dyn Chooser + Send>, max_steps: usize) -> Self {
        Self {
            mu: StdMutex::new(SchedState {
                chooser,
                max_steps,
                steps: 0,
                threads: Vec::new(),
                locks: HashMap::new(),
                cvs: HashMap::new(),
                edges: BTreeSet::new(),
                trace: Vec::new(),
                records: Vec::new(),
                running: None,
                aborting: false,
                failure: None,
                done: false,
            }),
            cv_workers: StdCondvar::new(),
            cv_done: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, SchedState> {
        self.mu.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn register_thread(&self) -> ThreadId {
        let mut st = self.lock();
        let id = st.threads.len();
        st.threads.push(ThreadState {
            name: format!("t{id}"),
            parked: true,
            finished: false,
            pending: Some(PendingOp::Start),
            granted: None,
            held: Vec::new(),
            last_record: None,
            span_dirty: false,
        });
        id
    }

    /// Parks `me` with `op` pending, runs a scheduling decision, and waits
    /// until granted. Panics with the abort sentinel if the run aborts.
    fn yield_point(&self, me: ThreadId, op: PendingOp) -> Grant {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            abort_unwind();
        }
        finish_span(&mut st, me);
        st.threads[me].pending = Some(op);
        st.threads[me].parked = true;
        st.running = None;
        self.schedule(&mut st);
        loop {
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            if let Some(g) = st.threads[me].granted.take() {
                st.threads[me].parked = false;
                return g;
            }
            st = self.cv_workers.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Waits for the initial `Start` grant of a freshly spawned thread.
    fn wait_for_start(&self, me: ThreadId) {
        let mut st = self.lock();
        loop {
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            if st.threads[me].granted.take().is_some() {
                st.threads[me].parked = false;
                return;
            }
            st = self.cv_workers.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Runs one scheduling decision. Caller must have parked/finished the
    /// previously running thread. May set `aborting` or grant a thread.
    fn schedule(&self, st: &mut SchedState) {
        if st.aborting || st.done {
            self.cv_workers.notify_all();
            return;
        }
        if st.threads.iter().all(|t| t.finished) {
            st.done = true;
            self.cv_done.notify_all();
            return;
        }
        let candidates = enabled_candidates(st);
        if candidates.is_empty() {
            let detail = deadlock_dump(st);
            self.fail(st, RunResult::Deadlock { detail });
            return;
        }
        if st.steps >= st.max_steps {
            self.fail(st, RunResult::StepLimit);
            return;
        }
        let last = st.records.last().map(|r| Executed {
            thread: r.candidates[r.chosen].thread,
            kind: r.candidates[r.chosen].kind,
            span_dirty: r.span_dirty,
        });
        let step = st.steps;
        let idx = if candidates.len() == 1 {
            0
        } else {
            st.chooser.choose(step, last.as_ref(), &candidates) % candidates.len()
        };
        let cand = candidates[idx];
        let grant = apply_grant(st, &cand);
        st.trace.push(TraceEvent::Grant {
            step,
            thread: cand.thread,
            op: cand.op,
            timeout_fire: cand.timeout_fire,
        });
        st.records.push(StepRecord {
            candidates,
            chosen: idx,
            span_dirty: false,
        });
        let rec = st.records.len() - 1;
        let t = &mut st.threads[cand.thread];
        t.last_record = Some(rec);
        t.pending = None;
        t.granted = Some(grant);
        st.running = Some(cand.thread);
        st.steps += 1;
        self.cv_workers.notify_all();
    }

    fn fail(&self, st: &mut SchedState, result: RunResult) {
        if st.failure.is_none() {
            st.failure = Some(result);
        }
        st.aborting = true;
        self.cv_workers.notify_all();
    }

    fn finish_thread(&self, me: ThreadId) {
        let mut st = self.lock();
        finish_span(&mut st, me);
        let t = &mut st.threads[me];
        t.finished = true;
        t.parked = false;
        t.pending = None;
        if st.running == Some(me) {
            st.running = None;
        }
        st.trace.push(TraceEvent::Finished { thread: me });
        if st.aborting {
            if st.threads.iter().all(|t| t.finished) {
                st.done = true;
                self.cv_done.notify_all();
            }
            self.cv_workers.notify_all();
        } else {
            self.schedule(&mut st);
        }
    }

    fn record_worker_panic(&self, me: ThreadId, payload: &(dyn std::any::Any + Send)) {
        if payload.is::<ScheduleAbort>() {
            return;
        }
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let mut st = self.lock();
        let result = RunResult::Panic {
            thread: me,
            message,
        };
        self.fail(&mut st, result);
    }

    // ---- inline (non-yield) operations, called by the running thread ----

    pub(crate) fn release_lock(&self, me: ThreadId, obj: u64, class: &'static str, write: bool) {
        let mut st = self.lock();
        if let Some(l) = st.locks.get_mut(&obj) {
            if write {
                if l.writer == Some(me) {
                    l.writer = None;
                }
            } else {
                l.readers.retain(|&r| r != me);
            }
        }
        let t = &mut st.threads[me];
        if let Some(pos) = t
            .held
            .iter()
            .rposition(|h| h.obj == obj && h.write == write)
        {
            t.held.remove(pos);
        }
        t.span_dirty = true;
        st.trace.push(TraceEvent::Release {
            thread: me,
            obj,
            class,
            write,
        });
    }

    pub(crate) fn notify_cv(&self, me: ThreadId, cv: u64, all: bool) {
        let mut st = self.lock();
        if let Some(c) = st.cvs.get_mut(&cv) {
            if all {
                for w in c.waiters.iter_mut() {
                    w.notified = true;
                }
            } else if let Some(w) = c.waiters.iter_mut().find(|w| !w.notified) {
                w.notified = true;
            }
        }
        st.threads[me].span_dirty = true;
        st.trace.push(TraceEvent::Notify {
            thread: me,
            cv,
            all,
        });
    }

    /// Virtually releases `mutex`, enqueues `me` on `cv`, parks until
    /// notified (or the timeout fires), and reacquires the mutex as part
    /// of the grant. Returns true when the timeout fired.
    pub(crate) fn cond_wait(
        &self,
        me: ThreadId,
        cv: u64,
        mutex: u64,
        class: &'static str,
        timed: bool,
    ) -> bool {
        {
            let mut st = self.lock();
            if let Some(l) = st.locks.get_mut(&mutex) {
                if l.writer == Some(me) {
                    l.writer = None;
                }
            }
            let t = &mut st.threads[me];
            if let Some(pos) = t.held.iter().rposition(|h| h.obj == mutex) {
                t.held.remove(pos);
            }
            t.span_dirty = true;
            st.trace.push(TraceEvent::Release {
                thread: me,
                obj: mutex,
                class,
                write: true,
            });
            st.cvs.entry(cv).or_default().waiters.push_back(Waiter {
                thread: me,
                notified: false,
            });
        }
        self.yield_point(
            me,
            PendingOp::CondWait {
                cv,
                mutex,
                class,
                timed,
            },
        )
        .timed_out
    }
}

fn finish_span(st: &mut SchedState, me: ThreadId) {
    let dirty = st.threads[me].span_dirty;
    st.threads[me].span_dirty = false;
    if let Some(i) = st.threads[me].last_record {
        st.records[i].span_dirty = dirty;
    }
}

fn cand_kind(op: &PendingOp) -> CandKind {
    match *op {
        PendingOp::Start | PendingOp::Yield | PendingOp::Annotate(_) => CandKind::Pure,
        PendingOp::MutexLock { obj, .. }
        | PendingOp::MutexTryLock { obj, .. }
        | PendingOp::RwWrite { obj, .. } => CandKind::Sync { obj, write: true },
        PendingOp::RwRead { obj, .. } => CandKind::Sync { obj, write: false },
        PendingOp::CondWait { mutex, .. } => CandKind::Sync {
            obj: mutex,
            write: true,
        },
        PendingOp::Atomic {
            obj, write, rmw, ..
        } => CandKind::Sync {
            obj,
            write: write || rmw,
        },
        PendingOp::Join { .. } => CandKind::Join,
    }
}

fn lock_free(st: &SchedState, obj: u64) -> bool {
    st.locks.get(&obj).is_none_or(|l| l.free())
}

fn enabled_candidates(st: &SchedState) -> Vec<Candidate> {
    let mut normal = Vec::new();
    let mut timeouts = Vec::new();
    for (i, t) in st.threads.iter().enumerate() {
        if t.finished || !t.parked {
            continue;
        }
        let Some(op) = t.pending else { continue };
        let mk = |timeout_fire| Candidate {
            thread: i,
            op,
            kind: cand_kind(&op),
            timeout_fire,
        };
        match op {
            PendingOp::Start
            | PendingOp::Yield
            | PendingOp::Annotate(_)
            | PendingOp::Atomic { .. }
            | PendingOp::MutexTryLock { .. } => normal.push(mk(false)),
            PendingOp::MutexLock { obj, .. } | PendingOp::RwWrite { obj, .. } => {
                if lock_free(st, obj) {
                    normal.push(mk(false));
                }
            }
            PendingOp::RwRead { obj, .. } => {
                if st.locks.get(&obj).is_none_or(|l| l.writer.is_none()) {
                    normal.push(mk(false));
                }
            }
            PendingOp::Join { child } => {
                if st.threads[child].finished {
                    normal.push(mk(false));
                }
            }
            PendingOp::CondWait {
                cv, mutex, timed, ..
            } => {
                let notified = st
                    .cvs
                    .get(&cv)
                    .and_then(|c| c.waiters.iter().find(|w| w.thread == i))
                    .map(|w| w.notified)
                    .unwrap_or(false);
                if lock_free(st, mutex) {
                    if notified {
                        normal.push(mk(false));
                    } else if timed {
                        timeouts.push(mk(true));
                    }
                }
            }
        }
    }
    if normal.is_empty() {
        timeouts
    } else {
        normal
    }
}

fn record_acquire(st: &mut SchedState, me: ThreadId, obj: u64, class: &'static str, write: bool) {
    let mut new_edges = Vec::new();
    for h in &st.threads[me].held {
        if h.obj != obj {
            new_edges.push((h.class, class));
        }
    }
    st.edges.extend(new_edges);
    let l = st.locks.entry(obj).or_default();
    if write {
        l.writer = Some(me);
    } else {
        l.readers.push(me);
    }
    st.threads[me].held.push(Held { obj, class, write });
}

fn apply_grant(st: &mut SchedState, cand: &Candidate) -> Grant {
    let me = cand.thread;
    match cand.op {
        PendingOp::Start
        | PendingOp::Yield
        | PendingOp::Annotate(_)
        | PendingOp::Atomic { .. }
        | PendingOp::Join { .. } => Grant::default(),
        PendingOp::MutexLock { obj, class } | PendingOp::RwWrite { obj, class } => {
            record_acquire(st, me, obj, class, true);
            Grant::default()
        }
        PendingOp::RwRead { obj, class } => {
            record_acquire(st, me, obj, class, false);
            Grant::default()
        }
        PendingOp::MutexTryLock { obj, class } => {
            if lock_free(st, obj) {
                record_acquire(st, me, obj, class, true);
                Grant {
                    timed_out: false,
                    try_ok: true,
                }
            } else {
                Grant {
                    timed_out: false,
                    try_ok: false,
                }
            }
        }
        PendingOp::CondWait {
            cv, mutex, class, ..
        } => {
            let notified = if let Some(c) = st.cvs.get_mut(&cv) {
                if let Some(pos) = c.waiters.iter().position(|w| w.thread == me) {
                    c.waiters.remove(pos).map(|w| w.notified).unwrap_or(false)
                } else {
                    false
                }
            } else {
                false
            };
            record_acquire(st, me, mutex, class, true);
            Grant {
                timed_out: !notified,
                try_ok: true,
            }
        }
    }
}

fn deadlock_dump(st: &SchedState) -> String {
    let mut out = String::new();
    for (i, t) in st.threads.iter().enumerate() {
        if t.finished {
            continue;
        }
        let held: Vec<String> = t
            .held
            .iter()
            .map(|h| format!("{}#{}", h.class, h.obj))
            .collect();
        out.push_str(&format!(
            "{} (t{i}): pending {:?}, holds [{}]\n",
            t.name,
            t.pending,
            held.join(", ")
        ));
    }
    out
}

// ---- worker entry points used by the facade types ----

fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // Worker panics inside a controlled run (including the abort
            // sentinel) are captured and reported via RunReport — keep
            // stderr quiet for the thousands of schedules the explorer
            // replays. Panics outside a run keep the default hook.
            let controlled = CURRENT.with(|c| c.borrow().is_some());
            if !controlled {
                prev(info);
            }
        }));
    });
}

fn worker_main<F, T>(sched: Arc<Scheduler>, id: ThreadId, f: F) -> Option<T>
where
    F: FnOnce() -> T,
{
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(WorkerCtx {
            sched: sched.clone(),
            id,
        })
    });
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        sched.wait_for_start(id);
        f()
    }));
    let out = match result {
        Ok(v) => Some(v),
        Err(payload) => {
            sched.record_worker_panic(id, payload.as_ref());
            None
        }
    };
    sched.finish_thread(id);
    CURRENT.with(|c| *c.borrow_mut() = None);
    out
}

/// Executes `body` as thread 0 of a controlled run, driving every facade
/// operation through `chooser`, and returns the full schedule report.
/// Deterministic: the same chooser decisions yield the same report.
pub fn run_controlled<F>(chooser: Box<dyn Chooser + Send>, max_steps: usize, body: F) -> RunReport
where
    F: FnOnce() + Send + 'static,
{
    install_panic_hook();
    let sched = Arc::new(Scheduler::new(chooser, max_steps));
    let root = sched.register_thread();
    let schedc = sched.clone();
    let real = std::thread::spawn(move || worker_main(schedc, root, body));
    {
        let mut st = sched.lock();
        sched.schedule(&mut st);
    }
    let mut st = sched.lock();
    while !st.done {
        st = sched.cv_done.wait(st).unwrap_or_else(|p| p.into_inner());
    }
    let schedule: Vec<ThreadId> = st
        .records
        .iter()
        .map(|r| r.candidates[r.chosen].thread)
        .collect();
    let report = RunReport {
        result: st.failure.clone().unwrap_or(RunResult::Complete),
        steps: st.steps,
        choices: st.records.iter().map(|r| r.chosen).collect(),
        schedule_hash: fnv1a(&schedule),
        schedule,
        edges: st.edges.clone(),
        trace: std::mem::take(&mut st.trace),
        records: std::mem::take(&mut st.records),
    };
    drop(st);
    let _ = real.join();
    report
}

/// Inserts a named marker into the schedule trace (a yield point), used
/// by regression tests to anchor interleaving predicates. No-op outside a
/// controlled run.
pub fn annotate(label: &'static str) {
    if let Some(ctx) = current() {
        ctx.sched.yield_point(ctx.id, PendingOp::Annotate(label));
    }
}

// ---- hooks used by the modeled facade types ----

pub(crate) fn on_mutex_lock(obj: u64, class: &'static str) -> bool {
    if let Some(ctx) = current() {
        ctx.sched
            .yield_point(ctx.id, PendingOp::MutexLock { obj, class });
        true
    } else {
        false
    }
}

pub(crate) fn on_mutex_try_lock(obj: u64, class: &'static str) -> Option<bool> {
    current().map(|ctx| {
        ctx.sched
            .yield_point(ctx.id, PendingOp::MutexTryLock { obj, class })
            .try_ok
    })
}

pub(crate) fn on_rw_acquire(obj: u64, class: &'static str, write: bool) -> bool {
    if let Some(ctx) = current() {
        let op = if write {
            PendingOp::RwWrite { obj, class }
        } else {
            PendingOp::RwRead { obj, class }
        };
        ctx.sched.yield_point(ctx.id, op);
        true
    } else {
        false
    }
}

pub(crate) fn on_release(obj: u64, class: &'static str, write: bool) {
    if let Some(ctx) = current() {
        ctx.sched.release_lock(ctx.id, obj, class, write);
    }
}

pub(crate) fn on_notify(cv: u64, all: bool) -> bool {
    if let Some(ctx) = current() {
        ctx.sched.notify_cv(ctx.id, cv, all);
        true
    } else {
        false
    }
}

pub(crate) fn on_cond_wait(cv: u64, mutex: u64, class: &'static str, timed: bool) -> Option<bool> {
    current().map(|ctx| ctx.sched.cond_wait(ctx.id, cv, mutex, class, timed))
}

pub(crate) fn on_atomic(obj: u64, write: bool, rmw: bool, ord: &'static str) {
    if let Some(ctx) = current() {
        ctx.sched.yield_point(
            ctx.id,
            PendingOp::Atomic {
                obj,
                write,
                rmw,
                ord,
            },
        );
    }
}

/// Thread-spawn implementation for model builds (used via
/// `obr_sync::thread`).
pub mod thread_impl {
    use super::{current, worker_main, PendingOp, ThreadId};

    /// Handle to a spawned facade thread.
    pub enum JoinHandle<T> {
        /// Thread spawned outside a controlled run — plain `std::thread`.
        Std(std::thread::JoinHandle<T>),
        /// Thread participating in a controlled run.
        Model {
            /// Underlying OS thread (its closure returns `None` when the
            /// run aborted mid-thread).
            real: std::thread::JoinHandle<Option<T>>,
            /// Model thread id of the child.
            child: ThreadId,
        },
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result. In a
        /// controlled run this is a yield point enabled once the child
        /// has finished.
        pub fn join(self) -> std::thread::Result<T> {
            match self {
                JoinHandle::Std(h) => h.join(),
                JoinHandle::Model { real, child } => {
                    let ctx = current().expect("joining a model thread outside a controlled run");
                    ctx.sched.yield_point(ctx.id, PendingOp::Join { child });
                    match real.join() {
                        Ok(Some(v)) => Ok(v),
                        // The child unwound because the run aborted; abort
                        // the joiner too so the whole run tears down.
                        Ok(None) => super::abort_unwind(),
                        Err(e) => Err(e),
                    }
                }
            }
        }
    }

    /// Spawns a thread. Inside a controlled run the child is registered
    /// with the scheduler and starts only when a decision grants it;
    /// outside, this is plain `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current() {
            None => JoinHandle::Std(std::thread::spawn(f)),
            Some(ctx) => {
                let child = ctx.sched.register_thread();
                let sched = ctx.sched.clone();
                let real = std::thread::spawn(move || worker_main(sched, child, f));
                // Yield so the decision point right after a spawn can
                // schedule either parent or child.
                ctx.sched.yield_point(ctx.id, PendingOp::Yield);
                JoinHandle::Model { real, child }
            }
        }
    }

    /// Voluntary yield point (plain `std::thread::yield_now` outside a
    /// controlled run).
    pub fn yield_now() {
        match current() {
            None => std::thread::yield_now(),
            Some(ctx) => {
                ctx.sched.yield_point(ctx.id, PendingOp::Yield);
            }
        }
    }
}
