//! Synchronization facade for the whole engine.
//!
//! Every concurrent hot path in the workspace takes its `Mutex`, `RwLock`,
//! `Condvar`, and atomics from this crate instead of importing
//! `parking_lot` or `std::sync::atomic` directly (`obr-cli check --lint`
//! enforces this). The facade has two personalities:
//!
//! * **Normal builds** (the default): a zero-cost passthrough. Lock types
//!   are `#[inline]` newtypes over the in-repo `parking_lot` shim, atomics
//!   are literal re-exports of `std::sync::atomic` — the optimizer sees
//!   exactly the code it would have seen without the facade.
//! * **Model builds** (`RUSTFLAGS="--cfg obr_model"`): every lock
//!   acquisition/release, condvar wait/notify, and atomic operation (with
//!   its `Ordering`) becomes a *yield point* routed through the
//!   cooperative scheduler in `model` (the module only exists in model
//!   builds, hence no doc link). The `obr-race` crate drives that
//!   scheduler to replay seeded-random and bounded-exhaustive thread
//!   interleavings over scripted scenarios, record the global
//!   lock-acquisition-order graph, and detect deadlocks — deterministic:
//!   the same seed always yields the same schedule.
//!
//! Locks carry an optional *class name* (`Mutex::named(v, "wal.mem")`)
//! identifying them in the lock-order graph that is diffed against the
//! manifest in `check/lockorder.toml`; anonymous locks report as
//! `"mutex.anon"`/`"rwlock.anon"`. Class names are free in normal builds
//! (the constructor ignores them).
//!
//! Code outside a controlled scenario still works in model builds: an
//! operation on a thread that is not registered with a scheduler falls
//! through to the plain implementation.

#[cfg(not(obr_model))]
mod plain;
#[cfg(not(obr_model))]
pub use plain::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(obr_model)]
mod modeled;
#[cfg(obr_model)]
pub use modeled::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(obr_model)]
pub mod model;

pub mod atomic;
pub mod thread;

/// True when this build routes synchronization through the model scheduler
/// (`--cfg obr_model`). Lets shared code and docs branch on the build
/// personality without sprinkling `cfg` everywhere.
pub const fn is_model_build() -> bool {
    cfg!(obr_model)
}
