//! Zero-cost passthrough implementation used in normal (non-model) builds.
//!
//! Every type is a `#[repr(transparent)]`-in-spirit newtype over the
//! in-repo `parking_lot` shim with `#[inline]` delegation, so the
//! optimizer collapses the facade entirely. Lock-class names accepted by
//! the `named` constructors are discarded here; they only matter to the
//! model scheduler.

use std::time::Instant;

/// A mutual-exclusion lock (passthrough over `parking_lot::Mutex`).
pub struct Mutex<T> {
    inner: parking_lot::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = parking_lot::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates an anonymous mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Creates a mutex tagged with a lock-class name for the model
    /// scheduler's lock-order graph. Free in normal builds.
    #[inline]
    pub const fn named(value: T, _class: &'static str) -> Self {
        Self::new(value)
    }

    /// Acquires the mutex, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock()
    }

    /// Attempts to acquire the mutex without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock()
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed — `&mut self` proves exclusivity).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    #[inline]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock (passthrough over `parking_lot::RwLock`).
pub struct RwLock<T> {
    inner: parking_lot::RwLock<T>,
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = parking_lot::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = parking_lot::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates an anonymous reader-writer lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Creates a reader-writer lock tagged with a lock-class name for the
    /// model scheduler's lock-order graph. Free in normal builds.
    #[inline]
    pub const fn named(value: T, _class: &'static str) -> Self {
        Self::new(value)
    }

    /// Acquires shared read access, blocking until no writer holds the lock.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read()
    }

    /// Acquires exclusive write access, blocking until the lock is free.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write()
    }

    /// Returns a mutable reference to the protected value.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the lock, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    #[inline]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    inner: parking_lot::WaitTimeoutResult,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline passed rather than
    /// because the condvar was notified.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.inner.timed_out()
    }
}

/// A condition variable (passthrough over `parking_lot::Condvar`).
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Self {
            inner: parking_lot::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and parks until notified,
    /// reacquiring the mutex before returning.
    #[inline]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.inner.wait(guard);
    }

    /// Like [`Condvar::wait`] but gives up at `deadline`.
    #[inline]
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        WaitTimeoutResult {
            inner: self.inner.wait_until(guard, deadline),
        }
    }

    /// Wakes one waiter, if any.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    #[inline]
    fn default() -> Self {
        Self::new()
    }
}
