//! Atomics facade.
//!
//! Normal builds re-export `std::sync::atomic` verbatim — zero cost, zero
//! behavior change. Model builds substitute wrapper types that report
//! every `load`/`store`/RMW (with its declared [`Ordering`]) to the
//! cooperative scheduler as a yield point, so the interleaving explorer
//! can reorder atomic operations across threads and the trace records
//! which orderings the code actually relies on.

#[cfg(not(obr_model))]
pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(obr_model)]
pub use crate::modeled::atomic::{
    AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
