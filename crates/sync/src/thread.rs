//! Thread-spawn facade.
//!
//! Normal builds delegate to `std::thread`. Model builds register each
//! spawned thread with the current scheduler (when one is installed) so
//! its yield points are interleaved deterministically; threads spawned
//! outside a controlled scenario fall through to plain `std::thread`.

#[cfg(not(obr_model))]
mod imp {
    /// Handle to a spawned facade thread; `join` returns the closure's
    /// result like `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Spawns a thread, passing straight through to `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle {
            inner: std::thread::spawn(f),
        }
    }

    /// Hints the OS scheduler to run another thread (passthrough to
    /// `std::thread::yield_now`).
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

#[cfg(obr_model)]
mod imp {
    pub use crate::model::thread_impl::{spawn, yield_now, JoinHandle};
}

pub use imp::{spawn, yield_now, JoinHandle};
