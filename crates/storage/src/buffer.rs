//! Buffer pool with WAL coupling and *careful writing* \[LT95\].
//!
//! Two ordering rules make the paper's logging economies safe (§5):
//!
//! 1. **WAL**: before a dirty page is written, the log is flushed up to that
//!    page's LSN (via the [`WalFlush`] hook).
//! 2. **Careful writing**: a page may carry *write-order dependencies* — it
//!    cannot reach disk before its prerequisite pages are durable. The
//!    reorganizer uses this so a compaction destination is durable before the
//!    source page image may be overwritten/deallocated, which is what lets
//!    MOVE log records carry only keys instead of full record bodies.
//!
//! A cycle in the dependency graph is reported as an error: the paper notes
//! that a *swap* of two pages cannot be protected by careful writing (each
//! page would have to reach disk before the other), which is exactly why a
//! swap must log at least one full page image.
//!
//! [`BufferPool::simulate_crash`] models a power failure: a caller-chosen
//! subset of dirty pages (closed under prerequisites, flushed prerequisite
//! first) reaches disk, all volatile state is dropped, the disk and the log
//! survive.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::disk::DiskManager;
use crate::error::{StorageError, StorageResult};
use crate::page::{Lsn, Page, PageId};

/// Hook the buffer pool uses to enforce write-ahead logging.
pub trait WalFlush: Send + Sync {
    /// Make the log durable up to and including `lsn`.
    fn flush_to(&self, lsn: Lsn);
}

struct Frame {
    id: PageId,
    data: RwLock<Page>,
    pin: AtomicU32,
    dirty: AtomicBool,
    last_used: AtomicU64,
}

/// A pinned page. Dropping the guard unpins the frame. `write()` marks the
/// frame dirty; these read/write guards are the *latches* of §4.1.3.
pub struct FrameGuard {
    frame: Arc<Frame>,
}

impl std::fmt::Debug for FrameGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameGuard")
            .field("id", &self.frame.id)
            .finish()
    }
}

impl FrameGuard {
    /// Page id of the pinned frame.
    pub fn id(&self) -> PageId {
        self.frame.id
    }

    /// Shared latch on the page contents.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.data.read()
    }

    /// Exclusive latch; marks the frame dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.data.write()
    }
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The buffer pool.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    capacity: usize,
    frames: Mutex<HashMap<PageId, Arc<Frame>>>,
    /// dependent -> prerequisite pages that must be durable first.
    write_deps: Mutex<HashMap<PageId, HashSet<PageId>>>,
    wal: Mutex<Option<Arc<dyn WalFlush>>>,
    clock: AtomicU64,
    flushes: AtomicU64,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            frames: Mutex::new(HashMap::new()),
            write_deps: Mutex::new(HashMap::new()),
            wal: Mutex::new(None),
            clock: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    /// Install the WAL flush hook (set once the log manager exists).
    pub fn set_wal(&self, wal: Arc<dyn WalFlush>) {
        *self.wal.lock() = Some(wal);
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.frames.lock().len()
    }

    /// Configured capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total page flushes performed by this pool.
    pub fn flush_count(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    fn touch(&self, frame: &Frame) {
        frame.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Pin `id`, reading it from disk on a miss.
    pub fn fetch(&self, id: PageId) -> StorageResult<FrameGuard> {
        self.fetch_inner(id, true)
    }

    /// Pin `id` as a brand-new page: no disk read is issued, the frame starts
    /// as an all-zero page marked dirty. Use right after allocating `id`.
    pub fn fetch_new(&self, id: PageId) -> StorageResult<FrameGuard> {
        self.fetch_inner(id, false)
    }

    fn fetch_inner(&self, id: PageId, read_from_disk: bool) -> StorageResult<FrameGuard> {
        loop {
            {
                let frames = self.frames.lock();
                if let Some(frame) = frames.get(&id) {
                    frame.pin.fetch_add(1, Ordering::AcqRel);
                    self.touch(frame);
                    return Ok(FrameGuard {
                        frame: Arc::clone(frame),
                    });
                }
                if frames.len() < self.capacity {
                    break;
                }
            }
            // Pool at capacity: evict outside the read path, then retry.
            self.evict_one()?;
        }
        // Miss path: read (or zero-init) outside the map lock, then insert.
        let page = if read_from_disk {
            self.disk.read_page(id)?
        } else {
            Page::new()
        };
        let mut frames = self.frames.lock();
        // Another thread may have inserted meanwhile.
        if let Some(frame) = frames.get(&id) {
            frame.pin.fetch_add(1, Ordering::AcqRel);
            self.touch(frame);
            return Ok(FrameGuard {
                frame: Arc::clone(frame),
            });
        }
        let frame = Arc::new(Frame {
            id,
            data: RwLock::new(page),
            pin: AtomicU32::new(1),
            dirty: AtomicBool::new(!read_from_disk),
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        });
        self.touch(&frame);
        frames.insert(id, Arc::clone(&frame));
        Ok(FrameGuard { frame })
    }

    fn evict_one(&self) -> StorageResult<()> {
        let victim = {
            let frames = self.frames.lock();
            if frames.len() < self.capacity {
                return Ok(());
            }
            frames
                .values()
                .filter(|f| f.pin.load(Ordering::Acquire) == 0)
                .min_by_key(|f| f.last_used.load(Ordering::Relaxed))
                .map(|f| f.id)
                .ok_or(StorageError::PoolExhausted)?
        };
        self.flush_page(victim)?;
        let mut frames = self.frames.lock();
        if let Some(f) = frames.get(&victim) {
            // Only drop it if still unpinned and clean.
            if f.pin.load(Ordering::Acquire) == 0 && !f.dirty.load(Ordering::Acquire) {
                frames.remove(&victim);
            }
        }
        Ok(())
    }

    /// Record that `dependent` may not reach disk before `prerequisite` is
    /// durable (careful writing).
    pub fn add_write_dependency(&self, dependent: PageId, prerequisite: PageId) {
        if dependent == prerequisite {
            return;
        }
        self.write_deps
            .lock()
            .entry(dependent)
            .or_default()
            .insert(prerequisite);
    }

    /// Number of outstanding write-order dependencies (diagnostics).
    pub fn pending_dependencies(&self) -> usize {
        self.write_deps.lock().values().map(|s| s.len()).sum()
    }

    /// Flush `id` (and, first, its transitive prerequisites). A no-op for
    /// clean or non-resident pages, except that their prerequisites are still
    /// honoured before the entry is cleared.
    pub fn flush_page(&self, id: PageId) -> StorageResult<()> {
        let mut visiting = HashSet::new();
        self.flush_rec(id, &mut visiting)
    }

    fn flush_rec(&self, id: PageId, visiting: &mut HashSet<PageId>) -> StorageResult<()> {
        if !visiting.insert(id) {
            return Err(StorageError::Corrupt(format!(
                "write-ordering cycle through page {id}; a swap must log a full page image instead"
            )));
        }
        let prereqs: Vec<PageId> = self
            .write_deps
            .lock()
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for p in prereqs {
            self.flush_rec(p, visiting)?;
        }
        self.write_frame(id)?;
        self.write_deps.lock().remove(&id);
        visiting.remove(&id);
        Ok(())
    }

    fn write_frame(&self, id: PageId) -> StorageResult<()> {
        let frame = {
            let frames = self.frames.lock();
            match frames.get(&id) {
                Some(f) => Arc::clone(f),
                None => return Ok(()),
            }
        };
        if !frame.dirty.load(Ordering::Acquire) {
            return Ok(());
        }
        let page = frame.data.read();
        if let Some(wal) = self.wal.lock().clone() {
            wal.flush_to(page.lsn());
        }
        self.disk.write_page(id, &page)?;
        frame.dirty.store(false, Ordering::Release);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flush every dirty page, honouring dependencies.
    pub fn flush_all(&self) -> StorageResult<()> {
        let ids: Vec<PageId> = self.frames.lock().keys().copied().collect();
        for id in ids {
            self.flush_page(id)?;
        }
        self.disk.sync()?;
        Ok(())
    }

    /// True when the page is resident and dirty.
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.frames
            .lock()
            .get(&id)
            .map(|f| f.dirty.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// Simulate a crash: flush the dirty pages selected by `keep` — closed
    /// under write-order prerequisites — then drop all volatile state.
    /// Returns the pages that made it to disk.
    ///
    /// The closure receives each dirty page id; returning `true` means the OS
    /// happened to write that page out before power was lost. Prerequisites
    /// of every written page are written too (careful writing guarantees the
    /// buffer manager never schedules them in the other order).
    pub fn simulate_crash(
        &self,
        mut keep: impl FnMut(PageId) -> bool,
    ) -> StorageResult<Vec<PageId>> {
        let dirty: Vec<PageId> = {
            let frames = self.frames.lock();
            frames
                .values()
                .filter(|f| f.dirty.load(Ordering::Acquire))
                .map(|f| f.id)
                .collect()
        };
        let mut chosen: HashSet<PageId> = dirty.iter().copied().filter(|&id| keep(id)).collect();
        // Close under prerequisites.
        loop {
            let mut added = Vec::new();
            {
                let deps = self.write_deps.lock();
                for &id in &chosen {
                    if let Some(pres) = deps.get(&id) {
                        for &p in pres {
                            if !chosen.contains(&p) {
                                added.push(p);
                            }
                        }
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            chosen.extend(added);
        }
        let mut flushed = Vec::new();
        for &id in &chosen {
            // flush_page writes prerequisites first; entries already clean
            // are skipped inside write_frame.
            self.flush_page(id)?;
            flushed.push(id);
        }
        self.frames.lock().clear();
        self.write_deps.lock().clear();
        flushed.sort();
        Ok(flushed)
    }

    /// Flush everything and drop all unpinned frames: makes the next reads
    /// cold (used by experiments to measure real scan I/O).
    pub fn evict_all(&self) -> StorageResult<()> {
        self.flush_all()?;
        let mut frames = self.frames.lock();
        frames.retain(|_, f| f.pin.load(Ordering::Acquire) > 0);
        Ok(())
    }

    /// Drop a page from the pool without writing it (used after
    /// deallocation: the image is dead).
    pub fn discard(&self, id: PageId) {
        self.frames.lock().remove(&id);
        self.write_deps.lock().remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::page::PageType;

    fn pool(pages: u32, cap: usize) -> (Arc<InMemoryDisk>, BufferPool) {
        let disk = Arc::new(InMemoryDisk::new(pages));
        let pool = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, cap);
        (disk, pool)
    }

    #[test]
    fn fetch_reads_through_and_caches() {
        let (disk, pool) = pool(4, 4);
        {
            let g = pool.fetch(PageId(1)).unwrap();
            g.write().set_low_mark(99);
        }
        // Second fetch must hit the cache: no extra disk read.
        let before = disk.stats().reads;
        let g = pool.fetch(PageId(1)).unwrap();
        assert_eq!(g.read().low_mark(), 99);
        assert_eq!(disk.stats().reads, before);
    }

    #[test]
    fn fetch_new_skips_disk_read() {
        let (disk, pool) = pool(4, 4);
        let g = pool.fetch_new(PageId(2)).unwrap();
        assert_eq!(disk.stats().reads, 0);
        assert!(pool.is_dirty(PageId(2)));
        drop(g);
    }

    #[test]
    fn flush_writes_dirty_page_to_disk() {
        let (disk, pool) = pool(4, 4);
        {
            let g = pool.fetch(PageId(0)).unwrap();
            g.write().format(PageType::Leaf, 0);
        }
        pool.flush_page(PageId(0)).unwrap();
        assert!(!pool.is_dirty(PageId(0)));
        assert_eq!(
            disk.read_page(PageId(0)).unwrap().page_type(),
            Some(PageType::Leaf)
        );
    }

    #[test]
    fn eviction_respects_pins_and_capacity() {
        let (_disk, pool) = pool(8, 2);
        let g0 = pool.fetch(PageId(0)).unwrap();
        {
            let _g1 = pool.fetch(PageId(1)).unwrap();
        } // unpinned
        let _g2 = pool.fetch(PageId(2)).unwrap(); // forces eviction of 1
        assert!(pool.resident() <= 2);
        drop(g0);
    }

    #[test]
    fn all_pinned_pool_is_exhausted() {
        let (_disk, pool) = pool(8, 2);
        let _g0 = pool.fetch(PageId(0)).unwrap();
        let _g1 = pool.fetch(PageId(1)).unwrap();
        match pool.fetch(PageId(2)) {
            Err(StorageError::PoolExhausted) => {}
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn careful_writing_flushes_prerequisite_first() {
        let (disk, pool) = pool(8, 8);
        {
            let dest = pool.fetch(PageId(3)).unwrap();
            dest.write().set_low_mark(1);
            let org = pool.fetch(PageId(5)).unwrap();
            org.write().set_low_mark(2);
        }
        // org(5) may not reach disk before dest(3).
        pool.add_write_dependency(PageId(5), PageId(3));
        pool.flush_page(PageId(5)).unwrap();
        // Both must now be durable, and writes ordered dest-then-org.
        assert_eq!(disk.read_page(PageId(3)).unwrap().low_mark(), 1);
        assert_eq!(disk.read_page(PageId(5)).unwrap().low_mark(), 2);
        assert_eq!(pool.pending_dependencies(), 0);
    }

    #[test]
    fn dependency_cycle_is_reported_as_swap_hazard() {
        let (_disk, pool) = pool(8, 8);
        {
            let a = pool.fetch(PageId(1)).unwrap();
            a.write().set_low_mark(1);
            let b = pool.fetch(PageId(2)).unwrap();
            b.write().set_low_mark(2);
        }
        pool.add_write_dependency(PageId(1), PageId(2));
        pool.add_write_dependency(PageId(2), PageId(1));
        let err = pool.flush_page(PageId(1)).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn crash_keeps_disk_but_drops_volatile_state() {
        let (disk, pool) = pool(8, 8);
        {
            let g = pool.fetch(PageId(0)).unwrap();
            g.write().set_low_mark(42);
        }
        // Lose everything: nothing reaches disk.
        let flushed = pool.simulate_crash(|_| false).unwrap();
        assert!(flushed.is_empty());
        assert_eq!(pool.resident(), 0);
        assert_eq!(disk.read_page(PageId(0)).unwrap().low_mark(), 0);
    }

    #[test]
    fn crash_closure_includes_prerequisites() {
        let (disk, pool) = pool(8, 8);
        {
            let dest = pool.fetch(PageId(3)).unwrap();
            dest.write().set_low_mark(7);
            let org = pool.fetch(PageId(5)).unwrap();
            org.write().set_low_mark(8);
        }
        pool.add_write_dependency(PageId(5), PageId(3));
        // "OS flushed page 5" — careful writing implies 3 went first.
        let flushed = pool.simulate_crash(|id| id == PageId(5)).unwrap();
        assert_eq!(flushed, vec![PageId(3), PageId(5)]);
        assert_eq!(disk.read_page(PageId(3)).unwrap().low_mark(), 7);
        assert_eq!(disk.read_page(PageId(5)).unwrap().low_mark(), 8);
    }

    #[test]
    fn wal_hook_called_before_page_write() {
        use std::sync::atomic::AtomicU64;
        struct Probe {
            max_flushed: AtomicU64,
        }
        impl WalFlush for Probe {
            fn flush_to(&self, lsn: Lsn) {
                self.max_flushed.fetch_max(lsn.0, Ordering::SeqCst);
            }
        }
        let (_disk, pool) = pool(4, 4);
        let probe = Arc::new(Probe {
            max_flushed: AtomicU64::new(0),
        });
        pool.set_wal(Arc::clone(&probe) as Arc<dyn WalFlush>);
        {
            let g = pool.fetch(PageId(0)).unwrap();
            g.write().set_lsn(Lsn(31));
        }
        pool.flush_page(PageId(0)).unwrap();
        assert_eq!(probe.max_flushed.load(Ordering::SeqCst), 31);
    }

    #[test]
    fn discard_drops_dirty_page_silently() {
        let (disk, pool) = pool(4, 4);
        {
            let g = pool.fetch(PageId(1)).unwrap();
            g.write().set_low_mark(9);
        }
        pool.discard(PageId(1));
        pool.flush_all().unwrap();
        assert_eq!(disk.read_page(PageId(1)).unwrap().low_mark(), 0);
    }

    #[test]
    fn concurrent_fetch_same_page_is_safe() {
        let (_disk, pool) = pool(16, 16);
        let pool = Arc::new(pool);
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let g = pool.fetch(PageId((i % 16) as u32)).unwrap();
                        if t % 2 == 0 {
                            g.write().set_low_mark(i);
                        } else {
                            let _ = g.read().low_mark();
                        }
                    }
                });
            }
        });
        assert!(pool.resident() <= 16);
    }
}
