//! Sharded buffer pool with WAL coupling and *careful writing* \[LT95\].
//!
//! Two ordering rules make the paper's logging economies safe (§5):
//!
//! 1. **WAL**: before a dirty page is written, the log is flushed up to that
//!    page's LSN (via the [`WalFlush`] hook).
//! 2. **Careful writing**: a page may carry *write-order dependencies* — it
//!    cannot reach disk before its prerequisite pages are durable. The
//!    reorganizer uses this so a compaction destination is durable before the
//!    source page image may be overwritten/deallocated, which is what lets
//!    MOVE log records carry only keys instead of full record bodies.
//!
//! A cycle in the dependency graph is reported as an error: the paper notes
//! that a *swap* of two pages cannot be protected by careful writing (each
//! page would have to reach disk before the other), which is exactly why a
//! swap must log at least one full page image.
//!
//! # Sharding
//!
//! The frame table is split into a power-of-two number of *shards*, each
//! owning its slice of the frame map and of the write-dependency table.
//! A page id selects its shard by low bits, so consecutive pages land on
//! different shards and pins/lookups on different pages almost never
//! contend. The pool-wide frame budget is a single atomic counter:
//! admission reserves a slot before reading the page, eviction releases it,
//! and no operation ever takes more than one shard lock at a time (the
//! global-LRU victim scan visits shards sequentially). [`BufferPool::flush_all`]
//! sweeps shard by shard, snapshotting each shard's residents atomically
//! under that shard's lock in sorted page order — every page resident when
//! its shard is visited is flushed, with no gap between snapshot and sweep
//! for pages to slip through unrecorded.
//!
//! [`BufferPool::simulate_crash`] models a power failure: a caller-chosen
//! subset of dirty pages (closed under prerequisites, flushed prerequisite
//! first) reaches disk, all volatile state is dropped, the disk and the log
//! survive.

use obr_sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use obr_obs::{Counter, Gauge, Registry};
use obr_sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::disk::DiskManager;
use crate::error::{StorageError, StorageResult};
use crate::page::{Lsn, Page, PageId};

/// Hook the buffer pool uses to enforce write-ahead logging.
pub trait WalFlush: Send + Sync {
    /// Make the log durable up to and including `lsn`. An error means the
    /// log could NOT be made durable; the caller must not write the
    /// dependent page.
    fn flush_to(&self, lsn: Lsn) -> StorageResult<()>;
}

/// Upper bound on the shard count (beyond ~64 the shard array itself stops
/// paying for its footprint).
pub const MAX_POOL_SHARDS: usize = 64;

struct Frame {
    id: PageId,
    data: RwLock<Page>,
    pin: AtomicU32,
    dirty: AtomicBool,
    /// Set (under no lock, after the frame leaves its shard's table) when
    /// the frame is retired by discard/eviction/crash. A flusher that
    /// cloned the frame's `Arc` out of the table before removal re-checks
    /// this under the data latch and skips the disk write: without it,
    /// the stale flush could land *after* the page id was reallocated and
    /// rewritten, clobbering the new page's image on disk (the flaky
    /// lost-write of ROADMAP item 5, caught by the
    /// `pool_discard_vs_stale_flush` scenario).
    dead: AtomicBool,
    last_used: AtomicU64,
}

impl Frame {
    /// Retire a frame that has just been removed from its shard table:
    /// publish `dead`, then cycle the data latch. The latch cycle is the
    /// barrier that makes retirement safe against in-flight flushers — a
    /// flusher holds the read latch across its dead-check and disk write,
    /// so by the time the write latch is granted here, every flusher that
    /// saw `dead == false` has already finished writing (i.e. before the
    /// caller returns and the page id can be reused), and every later
    /// flusher sees `dead == true` and skips.
    fn retire(&self) {
        if sabotage_stale_frame_flush() {
            return; // model-only: reintroduce the pre-fix behaviour whole
        }
        self.dead.store(true, Ordering::Release);
        drop(self.data.write());
    }
}

/// Test-only sabotage switch (model builds only): when
/// `OBR_BUG_STALE_FRAME_FLUSH=1`, frame retirement is a no-op and
/// `write_frame` skips the dead-frame check — the complete pre-fix
/// behaviour — so the interleaving explorer can prove the
/// `pool_discard_vs_stale_flush` scenario catches the stale write of a
/// retired frame. Never set outside `obr-race`'s teeth tests.
#[cfg(obr_model)]
fn sabotage_stale_frame_flush() -> bool {
    std::env::var_os("OBR_BUG_STALE_FRAME_FLUSH").is_some_and(|v| v == "1")
}

#[cfg(not(obr_model))]
fn sabotage_stale_frame_flush() -> bool {
    false
}

/// One shard: a slice of the frame table plus the write-order dependencies
/// whose *dependent* page hashes here. Lock ordering: a thread holds at most
/// one shard's `frames` lock at a time, and never a `frames` lock while
/// taking another shard's `deps` lock.
struct Shard {
    frames: Mutex<HashMap<PageId, Arc<Frame>>>,
    /// dependent -> prerequisite pages that must be durable first.
    deps: Mutex<HashMap<PageId, HashSet<PageId>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Per-shard counters, as returned by [`BufferPool::shard_stats`]. The
/// pool-level aggregates live in the metrics registry (`pool_*`); these
/// expose the skew across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Frames resident in this shard right now.
    pub resident: usize,
    /// Lookups satisfied from this shard's frame table.
    pub hits: u64,
    /// Lookups that had to admit a new frame.
    pub misses: u64,
    /// Frames retired from this shard by eviction.
    pub evictions: u64,
}

/// Pool-level metric handles; published into a database's registry by
/// [`BufferPool::register_metrics`].
#[derive(Debug, Default)]
struct PoolMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    flushes: Counter,
    resident: Gauge,
}

/// A pinned page. Dropping the guard unpins the frame. `write()` marks the
/// frame dirty; these read/write guards are the *latches* of §4.1.3.
pub struct FrameGuard {
    frame: Arc<Frame>,
}

impl std::fmt::Debug for FrameGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameGuard")
            .field("id", &self.frame.id)
            .finish()
    }
}

impl FrameGuard {
    /// Page id of the pinned frame.
    pub fn id(&self) -> PageId {
        self.frame.id
    }

    /// Shared latch on the page contents.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.data.read()
    }

    /// Exclusive latch; marks the frame dirty.
    ///
    /// The dirty bit is set *after* the latch is held. Setting it before
    /// opened a lost-write window (found by the `obr-race` interleaving
    /// explorer, scenario `pool_eviction_vs_flush`): a flusher could see
    /// the early dirty bit, win the data latch, write the *old* image,
    /// and clear the bit — leaving this guard's subsequent modification
    /// in a clean-marked frame that eviction then dropped without
    /// write-back. With the store under the latch, any flusher that
    /// clears the bit has already copied out every modification made
    /// before it, and any modification made after it re-dirties the
    /// frame.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        let guard = self.frame.data.write();
        self.frame.dirty.store(true, Ordering::Release);
        guard
    }
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The buffer pool.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    capacity: usize,
    shards: Box<[Shard]>,
    shard_mask: usize,
    /// Frames currently resident across all shards; admission reserves a
    /// slot here *before* inserting, so the budget is never exceeded.
    resident: AtomicUsize,
    wal: RwLock<Option<Arc<dyn WalFlush>>>,
    clock: AtomicU64,
    metrics: PoolMetrics,
}

/// Default shard count: the machine's parallelism rounded up to a power of
/// two, clamped to `[8, MAX_POOL_SHARDS]` — empty shards cost a few dozen
/// bytes, so even small machines get enough shards that unrelated pages
/// rarely share a lock.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
        .clamp(8, MAX_POOL_SHARDS)
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`, sharded for the
    /// machine's parallelism.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> BufferPool {
        let shards = default_shards();
        Self::with_shards(disk, capacity, shards)
    }

    /// Create a pool with an explicit shard count (rounded up to a power of
    /// two, clamped to [`MAX_POOL_SHARDS`]). `with_shards(disk, cap, 1)` is
    /// the single-mutex layout, kept reachable as a benchmark baseline.
    pub fn with_shards(disk: Arc<dyn DiskManager>, capacity: usize, shards: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        assert!(shards > 0, "buffer pool needs at least one shard");
        let n = shards.next_power_of_two().min(MAX_POOL_SHARDS);
        let shards: Box<[Shard]> = (0..n)
            .map(|_| Shard {
                frames: Mutex::named(HashMap::new(), "pool.shard.frames"),
                deps: Mutex::named(HashMap::new(), "pool.shard.deps"),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            })
            .collect();
        BufferPool {
            disk,
            capacity,
            shard_mask: n - 1,
            shards,
            resident: AtomicUsize::new(0),
            wal: RwLock::named(None, "pool.wal_hook"),
            clock: AtomicU64::new(0),
            metrics: PoolMetrics::default(),
        }
    }

    /// Publish this pool's aggregate counters into `reg` under the
    /// canonical `pool_*` names (see DESIGN.md "Observability"). Per-shard
    /// skew stays out of the registry — read it via
    /// [`BufferPool::shard_stats`].
    pub fn register_metrics(&self, reg: &Registry) {
        reg.register_counter("pool_hits", &self.metrics.hits);
        reg.register_counter("pool_misses", &self.metrics.misses);
        reg.register_counter("pool_evictions", &self.metrics.evictions);
        reg.register_counter("pool_flushes", &self.metrics.flushes);
        reg.register_gauge("pool_resident", &self.metrics.resident);
    }

    /// Per-shard hit/miss/eviction counts and residency, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                resident: s.frames.lock().len(),
                // relaxed: statistics snapshot; values are monotonic
                // counters and readers tolerate slight staleness.
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Shard owning `id`. Low bits: consecutive page ids round-robin across
    /// shards, which spreads both sequential scans and hot neighbours.
    fn shard(&self, id: PageId) -> &Shard {
        &self.shards[id.0 as usize & self.shard_mask]
    }

    /// Number of shards the frame table is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Install the WAL flush hook (set once the log manager exists).
    pub fn set_wal(&self, wal: Arc<dyn WalFlush>) {
        *self.wal.write() = Some(wal);
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::Acquire)
    }

    /// Configured capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total page flushes performed by this pool.
    pub fn flush_count(&self) -> u64 {
        self.metrics.flushes.get()
    }

    fn touch(&self, frame: &Frame) {
        // relaxed: the clock is only a monotonic recency source and
        // last_used an eviction hint; a stale read picks a slightly
        // worse victim, never an incorrect one.
        frame.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Pin `id`, reading it from disk on a miss.
    pub fn fetch(&self, id: PageId) -> StorageResult<FrameGuard> {
        self.fetch_inner(id, true)
    }

    /// Pin `id` as a brand-new page: no disk read is issued, the frame starts
    /// as an all-zero page marked dirty. Use right after allocating `id`.
    pub fn fetch_new(&self, id: PageId) -> StorageResult<FrameGuard> {
        self.fetch_inner(id, false)
    }

    fn fetch_inner(&self, id: PageId, read_from_disk: bool) -> StorageResult<FrameGuard> {
        let shard = self.shard(id);
        loop {
            {
                let frames = shard.frames.lock();
                if let Some(frame) = frames.get(&id) {
                    frame.pin.fetch_add(1, Ordering::AcqRel);
                    self.touch(frame);
                    // relaxed: hit counter is observability-only.
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    self.metrics.hits.inc();
                    return Ok(FrameGuard {
                        frame: Arc::clone(frame),
                    });
                }
            }
            // Miss: reserve a slot in the global budget before doing I/O so
            // concurrent admissions can never overshoot the capacity.
            if self
                .resident
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < self.capacity).then_some(n + 1)
                })
                .is_ok()
            {
                break;
            }
            // Pool at capacity: evict outside the shard lock, then retry.
            self.evict_one()?;
        }
        // Slot reserved: read (or zero-init) outside any shard lock.
        let page = if read_from_disk {
            match self.disk.read_page(id) {
                Ok(p) => p,
                Err(e) => {
                    self.resident.fetch_sub(1, Ordering::AcqRel);
                    return Err(e);
                }
            }
        } else {
            Page::new()
        };
        let mut frames = shard.frames.lock();
        // Another thread may have inserted meanwhile: give the slot back.
        if let Some(frame) = frames.get(&id) {
            self.resident.fetch_sub(1, Ordering::AcqRel);
            frame.pin.fetch_add(1, Ordering::AcqRel);
            self.touch(frame);
            // relaxed: hit counter is observability-only.
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.metrics.hits.inc();
            return Ok(FrameGuard {
                frame: Arc::clone(frame),
            });
        }
        let frame = Arc::new(Frame {
            id,
            data: RwLock::named(page, "pool.frame.data"),
            pin: AtomicU32::new(1),
            dirty: AtomicBool::new(!read_from_disk),
            dead: AtomicBool::new(false),
            // relaxed: clock tick is a recency hint (see touch()).
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed)),
        });
        self.touch(&frame);
        frames.insert(id, Arc::clone(&frame));
        // relaxed: miss counter is observability-only.
        shard.misses.fetch_add(1, Ordering::Relaxed);
        self.metrics.misses.inc();
        self.metrics.resident.set(self.resident() as u64);
        Ok(FrameGuard { frame })
    }

    /// Pick the globally least-recently-used unpinned frame and retire it.
    /// Shard locks are taken one at a time: the scan is advisory (a frame may
    /// be pinned between selection and removal), so removal re-checks under
    /// the victim's shard lock.
    fn evict_one(&self) -> StorageResult<()> {
        if self.resident.load(Ordering::Acquire) < self.capacity {
            return Ok(());
        }
        let mut victim: Option<(u64, PageId)> = None;
        for shard in self.shards.iter() {
            let frames = shard.frames.lock();
            for f in frames.values() {
                if f.pin.load(Ordering::Acquire) == 0 {
                    // relaxed: recency hint read under the shard frames
                    // lock; staleness only affects victim quality.
                    let lu = f.last_used.load(Ordering::Relaxed);
                    if victim.is_none_or(|(best, _)| lu < best) {
                        victim = Some((lu, f.id));
                    }
                }
            }
        }
        let Some((_, victim)) = victim else {
            return Err(StorageError::PoolExhausted);
        };
        self.flush_page(victim)?;
        let shard = self.shard(victim);
        let removed = {
            let mut frames = shard.frames.lock();
            match frames.get(&victim) {
                // Only drop it if still unpinned and clean.
                Some(f)
                    if f.pin.load(Ordering::Acquire) == 0 && !f.dirty.load(Ordering::Acquire) =>
                {
                    frames.remove(&victim)
                }
                _ => None,
            }
        };
        if let Some(f) = removed {
            // Retire outside the shard lock: the barrier takes the data
            // latch, and pool.shard.frames -> pool.frame.data is not a
            // vetted nesting (see check/lockorder.toml).
            f.retire();
            self.resident.fetch_sub(1, Ordering::AcqRel);
            // relaxed: eviction counter is observability-only.
            shard.evictions.fetch_add(1, Ordering::Relaxed);
            self.metrics.evictions.inc();
            self.metrics.resident.set(self.resident() as u64);
        }
        Ok(())
    }

    /// Record that `dependent` may not reach disk before `prerequisite` is
    /// durable (careful writing).
    pub fn add_write_dependency(&self, dependent: PageId, prerequisite: PageId) {
        if dependent == prerequisite {
            return;
        }
        self.shard(dependent)
            .deps
            .lock()
            .entry(dependent)
            .or_default()
            .insert(prerequisite);
    }

    /// Number of outstanding write-order dependencies (diagnostics).
    pub fn pending_dependencies(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.deps.lock().values().map(HashSet::len).sum::<usize>())
            .sum()
    }

    /// Flush `id` (and, first, its transitive prerequisites). A no-op for
    /// clean or non-resident pages, except that their prerequisites are still
    /// honoured before the entry is cleared.
    pub fn flush_page(&self, id: PageId) -> StorageResult<()> {
        let mut visiting = HashSet::new();
        self.flush_rec(id, &mut visiting)
    }

    /// Flush a batch of pages (each with its prerequisites). Duplicates and
    /// already-clean pages are cheap no-ops; unlike [`Self::flush_all`] the
    /// disk is *not* fsynced — callers sequence their own sync barrier.
    ///
    /// Returns the ids that were **not resident** when visited — either
    /// already evicted (and therefore durable) or never fetched at all.
    /// Callers that must distinguish "already on disk" from "never dirtied"
    /// can cross-check the returned set against what they expect to have
    /// touched; a silent skip is no longer observable as a successful flush.
    pub fn flush_pages(&self, ids: &[PageId]) -> StorageResult<Vec<PageId>> {
        let mut skipped = Vec::new();
        for &id in ids {
            if !self.is_resident(id) {
                skipped.push(id);
            }
            self.flush_page(id)?;
        }
        Ok(skipped)
    }

    /// True when `id` currently occupies a pool frame.
    pub fn is_resident(&self, id: PageId) -> bool {
        self.shard(id).frames.lock().contains_key(&id)
    }

    fn flush_rec(&self, id: PageId, visiting: &mut HashSet<PageId>) -> StorageResult<()> {
        if !visiting.insert(id) {
            return Err(StorageError::Corrupt(format!(
                "write-ordering cycle through page {id}; a swap must log a full page image instead"
            )));
        }
        let prereqs: Vec<PageId> = self
            .shard(id)
            .deps
            .lock()
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for p in prereqs {
            self.flush_rec(p, visiting)?;
        }
        self.write_frame(id)?;
        self.shard(id).deps.lock().remove(&id);
        visiting.remove(&id);
        Ok(())
    }

    fn write_frame(&self, id: PageId) -> StorageResult<()> {
        let frame = {
            let frames = self.shard(id).frames.lock();
            match frames.get(&id) {
                Some(f) => Arc::clone(f),
                None => return Ok(()),
            }
        };
        if !frame.dirty.load(Ordering::Acquire) {
            return Ok(());
        }
        let page = frame.data.read();
        // Re-check liveness under the read latch: discard/eviction set
        // `dead` after removing the frame from the table and then cycle
        // the write latch (Frame::retire), so either this flush finishes
        // before the retirer returns, or `dead` is visible here and the
        // stale image never reaches disk.
        if frame.dead.load(Ordering::Acquire) && !sabotage_stale_frame_flush() {
            return Ok(());
        }
        if let Some(wal) = self.wal.read().clone() {
            wal.flush_to(page.lsn())?;
        }
        self.disk.write_page(id, &page)?;
        frame.dirty.store(false, Ordering::Release);
        self.metrics.flushes.inc();
        Ok(())
    }

    /// Flush every dirty page, honouring dependencies, then fsync the disk.
    ///
    /// The sweep is *atomic per shard and deterministic*: each shard's
    /// resident set is snapshotted in one critical section under that
    /// shard's lock and flushed in ascending page order, shard 0 first.
    /// Every page resident when its shard is visited is flushed — the old
    /// single global snapshot let pages inserted mid-flush slip through
    /// silently. Pages inserted into an *already-swept* shard during the
    /// sweep were dirtied after this call began; WAL redo covers them.
    pub fn flush_all(&self) -> StorageResult<()> {
        for shard in self.shards.iter() {
            let mut ids: Vec<PageId> = shard.frames.lock().keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                self.flush_page(id)?;
            }
        }
        self.disk.sync()?;
        Ok(())
    }

    /// True when the page is resident and dirty.
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.shard(id)
            .frames
            .lock()
            .get(&id)
            .map(|f| f.dirty.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// A copy of the resident page `id` without pinning, faulting, or
    /// touching the LRU state — `None` when not resident. This is how
    /// observers (fsck over a live pool) read through the pool without
    /// perturbing it.
    pub fn peek(&self, id: PageId) -> Option<Page> {
        let frame = {
            let frames = self.shard(id).frames.lock();
            frames.get(&id).map(Arc::clone)
        };
        frame.map(|f| f.data.read().clone())
    }

    /// Page ids of every resident frame, in ascending order. Iterates the
    /// shards one lock at a time (the set is a snapshot, not a fence).
    pub fn resident_ids(&self) -> Vec<PageId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            out.extend(shard.frames.lock().keys().copied());
        }
        out.sort_unstable();
        out
    }

    /// Simulate a crash: flush the dirty pages selected by `keep` — closed
    /// under write-order prerequisites — then drop all volatile state.
    /// Returns the pages that made it to disk.
    ///
    /// The closure receives each dirty page id; returning `true` means the OS
    /// happened to write that page out before power was lost. Prerequisites
    /// of every written page are written too (careful writing guarantees the
    /// buffer manager never schedules them in the other order).
    pub fn simulate_crash(
        &self,
        mut keep: impl FnMut(PageId) -> bool,
    ) -> StorageResult<Vec<PageId>> {
        let mut dirty: Vec<PageId> = Vec::new();
        for shard in self.shards.iter() {
            let frames = shard.frames.lock();
            dirty.extend(
                frames
                    .values()
                    .filter(|f| f.dirty.load(Ordering::Acquire))
                    .map(|f| f.id),
            );
        }
        dirty.sort_unstable();
        let mut chosen: HashSet<PageId> = dirty.iter().copied().filter(|&id| keep(id)).collect();
        // Close under prerequisites.
        loop {
            let mut added = Vec::new();
            for &id in &chosen {
                let deps = self.shard(id).deps.lock();
                if let Some(pres) = deps.get(&id) {
                    for &p in pres {
                        if !chosen.contains(&p) {
                            added.push(p);
                        }
                    }
                }
            }
            if added.is_empty() {
                break;
            }
            chosen.extend(added);
        }
        let mut flushed = Vec::new();
        for &id in &chosen {
            // flush_page writes prerequisites first; entries already clean
            // are skipped inside write_frame.
            self.flush_page(id)?;
            flushed.push(id);
        }
        for shard in self.shards.iter() {
            let drained: Vec<Arc<Frame>> = shard.frames.lock().drain().map(|(_, f)| f).collect();
            for f in drained {
                f.retire();
            }
            shard.deps.lock().clear();
        }
        self.resident.store(0, Ordering::Release);
        flushed.sort();
        Ok(flushed)
    }

    /// Flush everything and drop all unpinned frames: makes the next reads
    /// cold (used by experiments to measure real scan I/O).
    pub fn evict_all(&self) -> StorageResult<()> {
        self.flush_all()?;
        for shard in self.shards.iter() {
            let mut dropped = Vec::new();
            {
                let mut frames = shard.frames.lock();
                // Keep pinned frames, and frames re-dirtied since the
                // flush above — dropping those would silently lose the
                // write (their writer has already released its guard, so
                // nothing would flush them again).
                frames.retain(|_, f| {
                    let keep = f.pin.load(Ordering::Acquire) > 0 || f.dirty.load(Ordering::Acquire);
                    if !keep {
                        dropped.push(Arc::clone(f));
                    }
                    keep
                });
            }
            if !dropped.is_empty() {
                self.resident.fetch_sub(dropped.len(), Ordering::AcqRel);
                for f in dropped {
                    f.retire();
                }
            }
        }
        Ok(())
    }

    /// Drop a page from the pool without writing it (used after
    /// deallocation: the image is dead).
    pub fn discard(&self, id: PageId) {
        let shard = self.shard(id);
        // Bind the removal first: an `if let` on the chained expression
        // would keep the frames guard alive across retire()'s data-latch
        // barrier (edition-2021 scrutinee temporaries), nesting
        // pool.shard.frames -> pool.frame.data, which is not vetted.
        let removed = shard.frames.lock().remove(&id);
        if let Some(f) = removed {
            // Retire before returning: once this call returns, the caller
            // may deallocate and the id may be reallocated — any flusher
            // still holding the old frame must be done (or fenced off by
            // the dead bit) first.
            f.retire();
            self.resident.fetch_sub(1, Ordering::AcqRel);
        }
        shard.deps.lock().remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::page::PageType;

    fn pool(pages: u32, cap: usize) -> (Arc<InMemoryDisk>, BufferPool) {
        let disk = Arc::new(InMemoryDisk::new(pages));
        let pool = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, cap);
        (disk, pool)
    }

    #[test]
    fn fetch_reads_through_and_caches() {
        let (disk, pool) = pool(4, 4);
        {
            let g = pool.fetch(PageId(1)).unwrap();
            g.write().set_low_mark(99);
        }
        // Second fetch must hit the cache: no extra disk read.
        let before = disk.stats().reads;
        let g = pool.fetch(PageId(1)).unwrap();
        assert_eq!(g.read().low_mark(), 99);
        assert_eq!(disk.stats().reads, before);
    }

    #[test]
    fn fetch_new_skips_disk_read() {
        let (disk, pool) = pool(4, 4);
        let g = pool.fetch_new(PageId(2)).unwrap();
        assert_eq!(disk.stats().reads, 0);
        assert!(pool.is_dirty(PageId(2)));
        drop(g);
    }

    #[test]
    fn flush_writes_dirty_page_to_disk() {
        let (disk, pool) = pool(4, 4);
        {
            let g = pool.fetch(PageId(0)).unwrap();
            g.write().format(PageType::Leaf, 0);
        }
        pool.flush_page(PageId(0)).unwrap();
        assert!(!pool.is_dirty(PageId(0)));
        assert_eq!(
            disk.read_page(PageId(0)).unwrap().page_type(),
            Some(PageType::Leaf)
        );
    }

    #[test]
    fn flush_pages_reports_non_resident_ids() {
        let (disk, pool) = pool(8, 4);
        {
            let g = pool.fetch(PageId(1)).unwrap();
            g.write().format(PageType::Leaf, 0);
        }
        {
            let g = pool.fetch(PageId(2)).unwrap();
            g.write().format(PageType::Leaf, 0);
        }
        // Page 5 was never fetched; pages 1 and 2 are resident and dirty.
        let skipped = pool
            .flush_pages(&[PageId(1), PageId(5), PageId(2)])
            .unwrap();
        assert_eq!(skipped, vec![PageId(5)]);
        assert!(!pool.is_dirty(PageId(1)));
        assert_eq!(disk.stats().writes, 2);
        // A resident-but-clean page flushes as a no-op and is NOT skipped:
        // it is durable, not unknown.
        let skipped = pool.flush_pages(&[PageId(1)]).unwrap();
        assert!(skipped.is_empty());
        assert_eq!(disk.stats().writes, 2);
    }

    #[test]
    fn eviction_respects_pins_and_capacity() {
        let (_disk, pool) = pool(8, 2);
        let g0 = pool.fetch(PageId(0)).unwrap();
        {
            let _g1 = pool.fetch(PageId(1)).unwrap();
        } // unpinned
        let _g2 = pool.fetch(PageId(2)).unwrap(); // forces eviction of 1
        assert!(pool.resident() <= 2);
        drop(g0);
    }

    #[test]
    fn all_pinned_pool_is_exhausted() {
        let (_disk, pool) = pool(8, 2);
        let _g0 = pool.fetch(PageId(0)).unwrap();
        let _g1 = pool.fetch(PageId(1)).unwrap();
        match pool.fetch(PageId(2)) {
            Err(StorageError::PoolExhausted) => {}
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let disk = Arc::new(InMemoryDisk::new(8));
        let pool = BufferPool::with_shards(Arc::clone(&disk) as Arc<dyn DiskManager>, 8, 3);
        assert_eq!(pool.shard_count(), 4);
        let pool = BufferPool::with_shards(Arc::clone(&disk) as Arc<dyn DiskManager>, 8, 1);
        assert_eq!(pool.shard_count(), 1);
        let pool = BufferPool::with_shards(disk as Arc<dyn DiskManager>, 8, 1 << 20);
        assert_eq!(pool.shard_count(), MAX_POOL_SHARDS);
    }

    #[test]
    fn capacity_holds_across_shards() {
        // Capacity is a pool-wide budget, not per shard: 16 distinct pages
        // through a 4-frame pool must never leave more than 4 resident.
        let (_disk, pool) = pool(32, 4);
        for i in 0..16u32 {
            let g = pool.fetch(PageId(i)).unwrap();
            drop(g);
            assert!(pool.resident() <= 4, "resident {} > 4", pool.resident());
        }
    }

    #[test]
    fn peek_sees_resident_dirty_copy_without_faulting() {
        let (disk, pool) = pool(8, 8);
        assert!(pool.peek(PageId(3)).is_none());
        {
            let g = pool.fetch(PageId(3)).unwrap();
            g.write().set_low_mark(77);
        }
        let reads = disk.stats().reads;
        let p = pool.peek(PageId(3)).unwrap();
        assert_eq!(p.low_mark(), 77);
        assert_eq!(disk.stats().reads, reads, "peek must not touch the disk");
        // Still dirty: peek is an observer, not a flush.
        assert!(pool.is_dirty(PageId(3)));
    }

    #[test]
    fn resident_ids_iterates_all_shards_sorted() {
        let (_disk, pool) = pool(64, 64);
        for i in [9u32, 1, 30, 4, 17] {
            let _ = pool.fetch(PageId(i)).unwrap();
        }
        let ids: Vec<u32> = pool.resident_ids().iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![1, 4, 9, 17, 30]);
    }

    #[test]
    fn careful_writing_flushes_prerequisite_first() {
        let (disk, pool) = pool(8, 8);
        {
            let dest = pool.fetch(PageId(3)).unwrap();
            dest.write().set_low_mark(1);
            let org = pool.fetch(PageId(5)).unwrap();
            org.write().set_low_mark(2);
        }
        // org(5) may not reach disk before dest(3).
        pool.add_write_dependency(PageId(5), PageId(3));
        pool.flush_page(PageId(5)).unwrap();
        // Both must now be durable, and writes ordered dest-then-org.
        assert_eq!(disk.read_page(PageId(3)).unwrap().low_mark(), 1);
        assert_eq!(disk.read_page(PageId(5)).unwrap().low_mark(), 2);
        assert_eq!(pool.pending_dependencies(), 0);
    }

    #[test]
    fn dependency_cycle_is_reported_as_swap_hazard() {
        let (_disk, pool) = pool(8, 8);
        {
            let a = pool.fetch(PageId(1)).unwrap();
            a.write().set_low_mark(1);
            let b = pool.fetch(PageId(2)).unwrap();
            b.write().set_low_mark(2);
        }
        pool.add_write_dependency(PageId(1), PageId(2));
        pool.add_write_dependency(PageId(2), PageId(1));
        let err = pool.flush_page(PageId(1)).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn crash_keeps_disk_but_drops_volatile_state() {
        let (disk, pool) = pool(8, 8);
        {
            let g = pool.fetch(PageId(0)).unwrap();
            g.write().set_low_mark(42);
        }
        // Lose everything: nothing reaches disk.
        let flushed = pool.simulate_crash(|_| false).unwrap();
        assert!(flushed.is_empty());
        assert_eq!(pool.resident(), 0);
        assert_eq!(disk.read_page(PageId(0)).unwrap().low_mark(), 0);
    }

    #[test]
    fn crash_closure_includes_prerequisites() {
        let (disk, pool) = pool(8, 8);
        {
            let dest = pool.fetch(PageId(3)).unwrap();
            dest.write().set_low_mark(7);
            let org = pool.fetch(PageId(5)).unwrap();
            org.write().set_low_mark(8);
        }
        pool.add_write_dependency(PageId(5), PageId(3));
        // "OS flushed page 5" — careful writing implies 3 went first.
        let flushed = pool.simulate_crash(|id| id == PageId(5)).unwrap();
        assert_eq!(flushed, vec![PageId(3), PageId(5)]);
        assert_eq!(disk.read_page(PageId(3)).unwrap().low_mark(), 7);
        assert_eq!(disk.read_page(PageId(5)).unwrap().low_mark(), 8);
    }

    #[test]
    fn wal_hook_called_before_page_write() {
        use obr_sync::atomic::AtomicU64;
        struct Probe {
            max_flushed: AtomicU64,
        }
        impl WalFlush for Probe {
            fn flush_to(&self, lsn: Lsn) -> StorageResult<()> {
                self.max_flushed.fetch_max(lsn.0, Ordering::SeqCst);
                Ok(())
            }
        }
        let (_disk, pool) = pool(4, 4);
        let probe = Arc::new(Probe {
            max_flushed: AtomicU64::new(0),
        });
        pool.set_wal(Arc::clone(&probe) as Arc<dyn WalFlush>);
        {
            let g = pool.fetch(PageId(0)).unwrap();
            g.write().set_lsn(Lsn(31));
        }
        pool.flush_page(PageId(0)).unwrap();
        assert_eq!(probe.max_flushed.load(Ordering::SeqCst), 31);
    }

    #[test]
    fn evict_all_keeps_frames_redirtied_mid_flush() {
        // A frame re-dirtied between evict_all's flush sweep and its
        // retain pass must survive: dropping it would lose the write (no
        // guard is outstanding, so nothing would ever flush it again).
        // Re-dirty deterministically through the WAL hook: page 16 shares
        // shard 0 with page 0 (16 shards) and flushes second, and its
        // hook invocation re-dirties the already-flushed page 0.
        struct RedirtyOnFlush {
            pool: std::sync::Weak<BufferPool>,
        }
        impl WalFlush for RedirtyOnFlush {
            fn flush_to(&self, lsn: Lsn) -> StorageResult<()> {
                if lsn == Lsn(0) {
                    return Ok(()); // page 0's own flush
                }
                if let Some(pool) = self.pool.upgrade() {
                    let g = pool.fetch(PageId(0)).unwrap();
                    g.write().set_low_mark(4242);
                }
                Ok(())
            }
        }
        let disk = Arc::new(InMemoryDisk::new(32));
        let pool = Arc::new(BufferPool::with_shards(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            32,
            16,
        ));
        let hook = Arc::new(RedirtyOnFlush {
            pool: Arc::downgrade(&pool),
        });
        pool.set_wal(Arc::clone(&hook) as Arc<dyn WalFlush>);
        {
            let g = pool.fetch(PageId(0)).unwrap();
            g.write().set_low_mark(1);
        }
        {
            let g = pool.fetch(PageId(16)).unwrap();
            g.write().set_lsn(Lsn(7)); // non-zero: fires the re-dirty hook
        }
        pool.evict_all().unwrap();
        assert!(pool.is_resident(PageId(0)), "re-dirtied frame was dropped");
        assert!(pool.is_dirty(PageId(0)));
        assert!(!pool.is_resident(PageId(16)), "clean frame must be evicted");
        pool.flush_all().unwrap();
        assert_eq!(
            disk.read_page(PageId(0)).unwrap().low_mark(),
            4242,
            "mid-evict write was lost"
        );
    }

    #[test]
    fn discard_fences_off_a_stale_flusher() {
        // A flusher that cloned the frame's Arc before a discard must not
        // write the dead image after the id is reallocated. Single-threaded
        // analogue: discard retires the frame, so a write_frame racing it
        // sees the dead bit (the full interleaving space is explored by
        // the `pool_discard_vs_stale_flush` obr-race scenario).
        let (disk, pool) = pool(4, 4);
        {
            let g = pool.fetch(PageId(1)).unwrap();
            g.write().set_low_mark(13);
        }
        pool.discard(PageId(1));
        // Reallocate the id with fresh content and make it durable.
        {
            let g = pool.fetch_new(PageId(1)).unwrap();
            g.write().set_low_mark(99);
        }
        pool.flush_page(PageId(1)).unwrap();
        assert_eq!(disk.read_page(PageId(1)).unwrap().low_mark(), 99);
    }

    #[test]
    fn discard_drops_dirty_page_silently() {
        let (disk, pool) = pool(4, 4);
        {
            let g = pool.fetch(PageId(1)).unwrap();
            g.write().set_low_mark(9);
        }
        pool.discard(PageId(1));
        pool.flush_all().unwrap();
        assert_eq!(disk.read_page(PageId(1)).unwrap().low_mark(), 0);
    }

    #[test]
    fn flush_all_sweeps_every_shard() {
        // Dirty a page in (what is almost certainly) every shard; one
        // flush_all must clean all of them — the per-shard snapshot cannot
        // skip a shard or a page.
        let (disk, pool) = pool(256, 256);
        for i in 0..128u32 {
            let g = pool.fetch(PageId(i)).unwrap();
            g.write().set_low_mark(u64::from(i) + 1);
        }
        pool.flush_all().unwrap();
        for i in 0..128u32 {
            assert!(!pool.is_dirty(PageId(i)), "page {i} still dirty");
            assert_eq!(
                disk.read_page(PageId(i)).unwrap().low_mark(),
                u64::from(i) + 1
            );
        }
    }

    #[test]
    fn flush_all_catches_pages_inserted_while_earlier_shards_flush() {
        // Regression for the flush_all TOCTOU: with the old single global
        // snapshot, a page inserted after the snapshot was silently skipped
        // even though it was resident long before flush_all returned. The
        // per-shard sweep snapshots each shard when it is visited, so a page
        // inserted into a *later* shard while earlier shards flush is still
        // caught. Simulate the interleaving deterministically through the
        // WAL hook, which runs mid-sweep for every dirty page.
        struct InsertOnFlush {
            pool: std::sync::Weak<BufferPool>,
            fired: AtomicBool,
        }
        impl WalFlush for InsertOnFlush {
            fn flush_to(&self, _lsn: Lsn) -> StorageResult<()> {
                if self.fired.swap(true, Ordering::SeqCst) {
                    return Ok(());
                }
                if let Some(pool) = self.pool.upgrade() {
                    // Highest page id: lands in the last-visited slot of its
                    // shard's sorted order — after the sweep position.
                    let g = pool.fetch(PageId(255)).unwrap();
                    g.write().set_low_mark(4242);
                }
                Ok(())
            }
        }
        let disk = Arc::new(InMemoryDisk::new(256));
        // Explicit shard count: page 0 -> shard 0, page 255 -> shard 15,
        // regardless of the machine the test runs on.
        let pool = Arc::new(BufferPool::with_shards(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            256,
            16,
        ));
        let hook = Arc::new(InsertOnFlush {
            pool: Arc::downgrade(&pool),
            fired: AtomicBool::new(false),
        });
        pool.set_wal(Arc::clone(&hook) as Arc<dyn WalFlush>);
        {
            // Page 0 lives in shard 0 and triggers the hook during the sweep.
            let g = pool.fetch(PageId(0)).unwrap();
            g.write().set_low_mark(1);
        }
        pool.flush_all().unwrap();
        // Page 255's shard is visited after page 0's flush fired the hook,
        // so the mid-flush insert must have been flushed too.
        assert!(!pool.is_dirty(PageId(255)), "mid-flush insert was skipped");
        assert_eq!(disk.read_page(PageId(255)).unwrap().low_mark(), 4242);
    }

    #[test]
    fn concurrent_fetch_same_page_is_safe() {
        let (_disk, pool) = pool(16, 16);
        let pool = Arc::new(pool);
        std::thread::scope(|s| {
            for t in 0..8 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let g = pool.fetch(PageId((i % 16) as u32)).unwrap();
                        if t % 2 == 0 {
                            g.write().set_low_mark(i);
                        } else {
                            let _ = g.read().low_mark();
                        }
                    }
                });
            }
        });
        assert!(pool.resident() <= 16);
    }

    #[test]
    fn concurrent_misses_respect_capacity() {
        // 8 threads fetching disjoint pages through a tiny pool: the
        // reservation counter must keep residency at/below capacity at every
        // instant, and nothing deadlocks.
        let (_disk, pool) = pool(512, 8);
        let pool = Arc::new(pool);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..100u32 {
                        let id = PageId(t * 64 + (i % 64));
                        let g = pool.fetch(id).unwrap();
                        g.write().set_low_mark(u64::from(i));
                        drop(g);
                        assert!(pool.resident() <= 8);
                    }
                });
            }
        });
        assert!(pool.resident() <= 8);
        pool.flush_all().unwrap();
    }
}
