//! Error types shared across the storage layer.

use std::fmt;

use crate::page::PageId;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// A page id was outside the bounds of the disk.
    PageOutOfBounds(PageId),
    /// The buffer pool had no evictable frame for a new page.
    PoolExhausted,
    /// A page could not hold the requested record.
    PageFull {
        /// Page that rejected the insert.
        page: PageId,
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that were free.
        free: usize,
    },
    /// Decoding a page or record image failed.
    Corrupt(String),
    /// The free-space map had no free page satisfying the request.
    NoFreePage,
    /// An underlying I/O error (file-backed disk only).
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            StorageError::PageFull { page, needed, free } => {
                write!(f, "page {page} full: needed {needed} bytes, {free} free")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page image: {msg}"),
            StorageError::NoFreePage => write!(f, "no free page available"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used throughout the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::PageFull {
            page: PageId(7),
            needed: 64,
            free: 10,
        };
        let s = e.to_string();
        assert!(s.contains("page 7"));
        assert!(s.contains("64"));
        assert!(s.contains("10"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::other("boom");
        let e = StorageError::from(io);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn out_of_bounds_mentions_page() {
        assert!(StorageError::PageOutOfBounds(PageId(42))
            .to_string()
            .contains("42"));
    }
}
