//! A journaling, fault-injecting [`DiskManager`] wrapper for crash
//! enumeration.
//!
//! [`JournalDisk`] sits between the buffer pool and a real disk and records
//! every durability boundary the engine crosses: each completed
//! [`DiskManager::write_page`] (with the full page image and the WAL
//! durability watermark at the moment of the write) and each
//! [`DiskManager::sync`]. A crash-consistency checker can then *materialize*
//! the exact on-disk state "as of" any journal position — the base snapshot
//! plus a prefix of the recorded writes — and run real recovery against it.
//!
//! Journal prefixes are the valid crash states of this engine's durability
//! model: the pool issues page writes synchronously and sequences
//! careful-writing prerequisites *before* their dependents, so any prefix of
//! the write journal respects both the WAL rule (a page's LSN is durable
//! before the page is written) and the §5.1 write-order dependencies.
//!
//! The wrapper can also inject write faults ([`JournalDisk::fail_after_writes`])
//! so tests can drive the engine's error paths through the same trait
//! boundary the checker observes.

use obr_sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use obr_sync::Mutex;

use crate::disk::{DiskManager, DiskStats, InMemoryDisk};
use crate::error::{StorageError, StorageResult};
use crate::page::{Lsn, Page, PageId};

/// Where the current WAL durability watermark can be read from. Implemented
/// by the log manager; the journal stamps every write with it so crash
/// enumeration knows which log prefixes each write is consistent with.
pub trait DurabilityWitness: Send + Sync {
    /// The highest durable LSN right now.
    fn durability_mark(&self) -> Lsn;
}

/// One recorded durability event.
enum Entry {
    /// A completed page write: id, full image, watermark at write time.
    Write {
        id: PageId,
        image: Box<Page>,
        mark: Lsn,
    },
    /// A `sync()` call, with the watermark at sync time.
    Sync { mark: Lsn },
    /// The disk grew to `pages` pages.
    Grow { pages: u32 },
}

/// Metadata of one journal entry, in recording order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEventInfo {
    /// Position in the journal (0-based).
    pub index: usize,
    /// WAL durability watermark when the event happened.
    pub mark: Lsn,
    /// The page written, for write events.
    pub write: Option<PageId>,
    /// True for `sync()` events.
    pub is_sync: bool,
}

struct JournalState {
    recording: bool,
    /// `(id, image)` of every non-zero page at `begin_journal` time.
    base: Vec<(PageId, Box<Page>)>,
    base_pages: u32,
    entries: Vec<Entry>,
}

/// A [`DiskManager`] that forwards to an inner disk while journaling every
/// durability boundary. See the module docs.
pub struct JournalDisk {
    inner: Arc<dyn DiskManager>,
    witness: Mutex<Option<Arc<dyn DurabilityWitness>>>,
    state: Mutex<JournalState>,
    /// Writes remaining until an injected failure; negative = disarmed.
    fail_in: AtomicI64,
}

impl JournalDisk {
    /// Wrap `inner`. Journaling starts disabled; call
    /// [`Self::begin_journal`] once the baseline state is in place.
    pub fn new(inner: Arc<dyn DiskManager>) -> JournalDisk {
        JournalDisk {
            inner,
            witness: Mutex::named(None, "disk.witness"),
            state: Mutex::named(
                JournalState {
                    recording: false,
                    base: Vec::new(),
                    base_pages: 0,
                    entries: Vec::new(),
                },
                "disk.journal",
            ),
            fail_in: AtomicI64::new(-1),
        }
    }

    /// Install the watermark source (normally the WAL's log manager).
    pub fn set_witness(&self, w: Arc<dyn DurabilityWitness>) {
        *self.witness.lock() = Some(w);
    }

    /// Snapshot the inner disk as the journal's base state and start
    /// recording. Any previous journal is discarded.
    pub fn begin_journal(&self) -> StorageResult<()> {
        let pages = self.inner.num_pages();
        let mut base = Vec::new();
        for i in 0..pages {
            let p = self.inner.read_page(PageId(i))?;
            if p.bytes().iter().any(|&b| b != 0) {
                base.push((PageId(i), Box::new(p)));
            }
        }
        let mut st = self.state.lock();
        st.base = base;
        st.base_pages = pages;
        st.entries = Vec::new();
        st.recording = true;
        Ok(())
    }

    /// Inject a write fault: the `n+1`-th write from now returns an I/O
    /// error (and is neither journaled nor forwarded). One-shot.
    pub fn fail_after_writes(&self, n: u64) {
        self.fail_in.store(n as i64, Ordering::SeqCst);
    }

    /// Metadata of every recorded event, in order.
    pub fn events(&self) -> Vec<JournalEventInfo> {
        let st = self.state.lock();
        st.entries
            .iter()
            .enumerate()
            .map(|(index, e)| match e {
                Entry::Write { id, mark, .. } => JournalEventInfo {
                    index,
                    mark: *mark,
                    write: Some(*id),
                    is_sync: false,
                },
                Entry::Sync { mark } => JournalEventInfo {
                    index,
                    mark: *mark,
                    write: None,
                    is_sync: true,
                },
                Entry::Grow { .. } => JournalEventInfo {
                    index,
                    mark: Lsn::ZERO,
                    write: None,
                    is_sync: false,
                },
            })
            .collect()
    }

    /// Number of journal entries recorded so far.
    pub fn journal_len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Build a fresh in-memory disk holding the state "as of" journal
    /// position `upto`: the base snapshot plus `entries[..upto]` replayed.
    pub fn materialize(&self, upto: usize) -> StorageResult<Arc<InMemoryDisk>> {
        let st = self.state.lock();
        let upto = upto.min(st.entries.len());
        let mut pages = st.base_pages;
        for e in &st.entries[..upto] {
            if let Entry::Grow { pages: p } = e {
                pages = pages.max(*p);
            }
        }
        let disk = Arc::new(InMemoryDisk::new(pages));
        for (id, image) in &st.base {
            disk.write_page(*id, image)?;
        }
        for e in &st.entries[..upto] {
            if let Entry::Write { id, image, .. } = e {
                disk.write_page(*id, image)?;
            }
        }
        disk.reset_stats();
        Ok(disk)
    }

    fn mark(&self) -> Lsn {
        self.witness
            .lock()
            .as_ref()
            .map(|w| w.durability_mark())
            .unwrap_or(Lsn::ZERO)
    }
}

impl DiskManager for JournalDisk {
    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        self.inner.read_page(id)
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        let armed = self.fail_in.load(Ordering::SeqCst);
        if armed >= 0 {
            let left = self.fail_in.fetch_sub(1, Ordering::SeqCst);
            if left == 0 {
                return Err(StorageError::Io(std::io::Error::other(
                    "injected write fault",
                )));
            }
        }
        self.inner.write_page(id, page)?;
        let mut st = self.state.lock();
        if st.recording {
            let mark = self.mark();
            debug_assert!(
                st.entries
                    .iter()
                    .rev()
                    .find_map(|e| match e {
                        Entry::Write { mark: m, .. } | Entry::Sync { mark: m } => Some(*m),
                        Entry::Grow { .. } => None,
                    })
                    .map(|m| m <= mark)
                    .unwrap_or(true),
                "durability watermark moved backwards"
            );
            st.entries.push(Entry::Write {
                id,
                image: Box::new(page.clone()),
                mark,
            });
        }
        Ok(())
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn ensure_capacity(&self, pages: u32) -> StorageResult<()> {
        self.inner.ensure_capacity(pages)?;
        let mut st = self.state.lock();
        if st.recording {
            st.entries.push(Entry::Grow { pages });
        }
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()?;
        let mut st = self.state.lock();
        if st.recording {
            let mark = self.mark();
            st.entries.push(Entry::Sync { mark });
        }
        Ok(())
    }

    fn stats(&self) -> DiskStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    struct FixedMark(Lsn);
    impl DurabilityWitness for FixedMark {
        fn durability_mark(&self) -> Lsn {
            self.0
        }
    }

    fn page_with_lsn(l: Lsn) -> Page {
        let mut p = Page::new();
        p.format(PageType::Leaf, 0);
        p.set_lsn(l);
        p
    }

    #[test]
    fn journal_records_writes_and_materializes_prefixes() {
        let inner = Arc::new(InMemoryDisk::new(8));
        let jd = JournalDisk::new(Arc::clone(&inner) as Arc<dyn DiskManager>);
        jd.write_page(PageId(1), &page_with_lsn(Lsn(5))).unwrap();
        jd.begin_journal().unwrap();
        jd.set_witness(Arc::new(FixedMark(Lsn(10))));
        jd.write_page(PageId(2), &page_with_lsn(Lsn(9))).unwrap();
        jd.sync().unwrap();
        jd.write_page(PageId(3), &page_with_lsn(Lsn(10))).unwrap();
        let ev = jd.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].write, Some(PageId(2)));
        assert_eq!(ev[0].mark, Lsn(10));
        assert!(ev[1].is_sync);
        // Prefix 0: only the base (page 1) is present.
        let d0 = jd.materialize(0).unwrap();
        assert_eq!(d0.read_page(PageId(1)).unwrap().lsn(), Lsn(5));
        assert_eq!(
            d0.read_page(PageId(3)).unwrap().page_type(),
            Some(PageType::Free)
        );
        // Prefix 3: everything.
        let d3 = jd.materialize(3).unwrap();
        assert_eq!(d3.read_page(PageId(3)).unwrap().lsn(), Lsn(10));
        // The journal disk itself saw every write.
        assert_eq!(inner.read_page(PageId(3)).unwrap().lsn(), Lsn(10));
    }

    #[test]
    fn injected_write_fault_fires_once() {
        let inner = Arc::new(InMemoryDisk::new(4));
        let jd = JournalDisk::new(inner as Arc<dyn DiskManager>);
        jd.fail_after_writes(1);
        jd.write_page(PageId(0), &Page::new()).unwrap();
        assert!(jd.write_page(PageId(1), &Page::new()).is_err());
        jd.write_page(PageId(2), &Page::new()).unwrap();
    }

    #[test]
    fn materialize_honours_growth() {
        let inner = Arc::new(InMemoryDisk::new(4));
        let jd = JournalDisk::new(inner as Arc<dyn DiskManager>);
        jd.begin_journal().unwrap();
        jd.ensure_capacity(16).unwrap();
        jd.write_page(PageId(12), &page_with_lsn(Lsn(1))).unwrap();
        let d = jd.materialize(2).unwrap();
        assert_eq!(d.num_pages(), 16);
        assert_eq!(d.read_page(PageId(12)).unwrap().lsn(), Lsn(1));
        // A prefix before the growth stays small.
        assert_eq!(jd.materialize(0).unwrap().num_pages(), 4);
    }
}
