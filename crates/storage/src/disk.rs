//! Disk managers: where page images live and how much the I/O costs.
//!
//! Two backends are provided. [`InMemoryDisk`] is the default for tests and
//! experiments: pages survive a *simulated crash* (the volatile buffer pool
//! is dropped, the "disk" is not), and every read/write is counted along with
//! the seek distance between successive accesses. Seek distance is the metric
//! the paper's pass 2 improves — after swapping, leaves within a key range are
//! contiguous on disk, so a range scan's head movement collapses.
//! [`FileDisk`] stores the same images in a real file for durability-shaped
//! testing.

use obr_sync::atomic::{AtomicU64, Ordering};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use obr_sync::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Snapshot of I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Page reads served.
    pub reads: u64,
    /// Page writes performed.
    pub writes: u64,
    /// Sum of |Δ page-id| between successive accesses (a seek-cost model).
    pub seek_distance: u64,
    /// Sync (force) operations.
    pub syncs: u64,
}

impl DiskStats {
    /// Total page transfers.
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference against an earlier snapshot.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            seek_distance: self.seek_distance - earlier.seek_distance,
            syncs: self.syncs - earlier.syncs,
        }
    }
}

#[derive(Debug, Default)]
struct StatCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    seek: AtomicU64,
    syncs: AtomicU64,
    // Last page id accessed, +1 (0 = "no access yet").
    head: AtomicU64,
}

impl StatCounters {
    fn record(&self, id: PageId, is_write: bool) {
        if is_write {
            self.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reads.fetch_add(1, Ordering::Relaxed);
        }
        let pos = id.0 as u64 + 1;
        let prev = self.head.swap(pos, Ordering::Relaxed);
        if prev != 0 {
            self.seek.fetch_add(prev.abs_diff(pos), Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            seek_distance: self.seek.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.seek.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
        self.head.store(0, Ordering::Relaxed);
    }
}

/// Abstraction over where full page images are stored.
pub trait DiskManager: Send + Sync {
    /// Read the image of `id`.
    fn read_page(&self, id: PageId) -> StorageResult<Page>;
    /// Write the image of `id`.
    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()>;
    /// Number of pages currently addressable.
    fn num_pages(&self) -> u32;
    /// Grow the disk so ids `0..pages` are addressable.
    fn ensure_capacity(&self, pages: u32) -> StorageResult<()>;
    /// Force pending writes to stable storage.
    fn sync(&self) -> StorageResult<()>;
    /// Snapshot of I/O counters.
    fn stats(&self) -> DiskStats;
    /// Zero the I/O counters (start of an experiment phase).
    fn reset_stats(&self);
}

/// A RAM-backed disk: the standard substrate for experiments and crash tests.
pub struct InMemoryDisk {
    pages: Mutex<Vec<Page>>,
    counters: StatCounters,
    /// Simulated per-I/O latency (experiments use this to give lock hold
    /// times a realistic I/O component).
    latency: std::time::Duration,
}

impl InMemoryDisk {
    /// Create a disk with `pages` zeroed pages.
    pub fn new(pages: u32) -> InMemoryDisk {
        Self::with_latency(pages, std::time::Duration::ZERO)
    }

    /// Create a disk that sleeps `latency` on every page read/write.
    pub fn with_latency(pages: u32, latency: std::time::Duration) -> InMemoryDisk {
        InMemoryDisk {
            pages: Mutex::named((0..pages).map(|_| Page::new()).collect(), "disk.pages"),
            counters: StatCounters::default(),
            latency,
        }
    }

    fn simulate_latency(&self) {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }
}

impl DiskManager for InMemoryDisk {
    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        self.simulate_latency();
        let pages = self.pages.lock();
        let p = pages
            .get(id.index())
            .ok_or(StorageError::PageOutOfBounds(id))?
            .clone();
        self.counters.record(id, false);
        Ok(p)
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.simulate_latency();
        let mut pages = self.pages.lock();
        let slot = pages
            .get_mut(id.index())
            .ok_or(StorageError::PageOutOfBounds(id))?;
        *slot = page.clone();
        self.counters.record(id, true);
        Ok(())
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }

    fn ensure_capacity(&self, pages: u32) -> StorageResult<()> {
        let mut v = self.pages.lock();
        while (v.len() as u32) < pages {
            v.push(Page::new());
        }
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.counters.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> DiskStats {
        self.counters.snapshot()
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }
}

/// A file-backed disk for durability-shaped testing.
pub struct FileDisk {
    file: Mutex<File>,
    num_pages: AtomicU64,
    counters: StatCounters,
}

impl FileDisk {
    /// Open (or create) a page file at `path` with at least `pages` pages.
    pub fn open(path: &Path, pages: u32) -> StorageResult<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let existing = (file.metadata()?.len() as usize / PAGE_SIZE) as u32;
        let total = existing.max(pages);
        file.set_len(total as u64 * PAGE_SIZE as u64)?;
        Ok(FileDisk {
            file: Mutex::named(file, "disk.file"),
            num_pages: AtomicU64::new(total as u64),
            counters: StatCounters::default(),
        })
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, id: PageId) -> StorageResult<Page> {
        if (id.0 as u64) >= self.num_pages.load(Ordering::Acquire) {
            return Err(StorageError::PageOutOfBounds(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        let mut buf = [0u8; PAGE_SIZE];
        file.read_exact(&mut buf)?;
        self.counters.record(id, false);
        Ok(Page::from_bytes(&buf))
    }

    fn write_page(&self, id: PageId, page: &Page) -> StorageResult<()> {
        if (id.0 as u64) >= self.num_pages.load(Ordering::Acquire) {
            return Err(StorageError::PageOutOfBounds(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        file.write_all(page.bytes())?;
        self.counters.record(id, true);
        Ok(())
    }

    fn num_pages(&self) -> u32 {
        self.num_pages.load(Ordering::Acquire) as u32
    }

    fn ensure_capacity(&self, pages: u32) -> StorageResult<()> {
        let file = self.file.lock();
        let cur = self.num_pages.load(Ordering::Acquire);
        if (pages as u64) > cur {
            file.set_len(pages as u64 * PAGE_SIZE as u64)?;
            self.num_pages.store(pages as u64, Ordering::Release);
        }
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.lock().sync_data()?;
        self.counters.syncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> DiskStats {
        self.counters.snapshot()
    }

    fn reset_stats(&self) {
        self.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Lsn, PageType};

    fn roundtrip(disk: &dyn DiskManager) {
        let mut p = Page::new();
        p.format(PageType::Leaf, 0);
        p.set_lsn(Lsn(77));
        p.set_low_mark(123);
        disk.write_page(PageId(3), &p).unwrap();
        let back = disk.read_page(PageId(3)).unwrap();
        assert_eq!(back.lsn(), Lsn(77));
        assert_eq!(back.low_mark(), 123);
        assert_eq!(back.page_type(), Some(PageType::Leaf));
    }

    #[test]
    fn memory_disk_round_trips_pages() {
        let disk = InMemoryDisk::new(8);
        roundtrip(&disk);
    }

    #[test]
    fn file_disk_round_trips_pages() {
        let dir = std::env::temp_dir().join(format!("obr-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let disk = FileDisk::open(&path, 8).unwrap();
        roundtrip(&disk);
        drop(disk);
        // Re-open: data must persist.
        let disk2 = FileDisk::open(&path, 8).unwrap();
        assert_eq!(disk2.read_page(PageId(3)).unwrap().lsn(), Lsn(77));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_bounds_read_is_error() {
        let disk = InMemoryDisk::new(2);
        assert!(disk.read_page(PageId(2)).is_err());
        assert!(disk.write_page(PageId(9), &Page::new()).is_err());
    }

    #[test]
    fn ensure_capacity_grows_but_never_shrinks() {
        let disk = InMemoryDisk::new(2);
        disk.ensure_capacity(10).unwrap();
        assert_eq!(disk.num_pages(), 10);
        disk.ensure_capacity(4).unwrap();
        assert_eq!(disk.num_pages(), 10);
    }

    #[test]
    fn stats_count_reads_writes_and_seeks() {
        let disk = InMemoryDisk::new(64);
        disk.write_page(PageId(0), &Page::new()).unwrap();
        disk.write_page(PageId(10), &Page::new()).unwrap();
        disk.read_page(PageId(10)).unwrap();
        disk.read_page(PageId(60)).unwrap();
        let s = disk.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        // Seeks: 0 -> 10 (10) -> 10 (0) -> 60 (50) = 60.
        assert_eq!(s.seek_distance, 60);
        disk.reset_stats();
        assert_eq!(disk.stats(), DiskStats::default());
    }

    #[test]
    fn stats_since_subtracts() {
        let disk = InMemoryDisk::new(4);
        disk.read_page(PageId(0)).unwrap();
        let before = disk.stats();
        disk.read_page(PageId(1)).unwrap();
        disk.read_page(PageId(2)).unwrap();
        let delta = disk.stats().since(&before);
        assert_eq!(delta.reads, 2);
    }

    #[test]
    fn first_access_costs_no_seek() {
        let disk = InMemoryDisk::new(64);
        disk.read_page(PageId(42)).unwrap();
        assert_eq!(disk.stats().seek_distance, 0);
    }
}
