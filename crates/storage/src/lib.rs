//! Storage substrate for the on-line B+-tree reorganization system.
//!
//! This crate provides everything below the tree: a fixed-size slotted
//! [`page::Page`] with the header fields the paper relies on (page LSN,
//! low mark, side pointers), pluggable [`disk::DiskManager`] backends with
//! I/O and seek accounting, a [`fsm::FreeSpaceMap`] that can answer the
//! placement heuristic's "first empty page in `(L, C)`" query (§6.1 of the
//! paper), and a [`buffer::BufferPool`] that enforces *careful writing*
//! ordering constraints \[LT95\] so that MOVE log records may carry keys only
//! (§5 of the paper).

pub mod buffer;
pub mod codec;
pub mod disk;
pub mod error;
pub mod faultdisk;
pub mod fsm;
pub mod page;

pub use buffer::{BufferPool, FrameGuard, ShardStats, WalFlush, MAX_POOL_SHARDS};
pub use disk::{DiskManager, DiskStats, FileDisk, InMemoryDisk};
pub use error::{StorageError, StorageResult};
pub use faultdisk::{DurabilityWitness, JournalDisk, JournalEventInfo};
pub use fsm::FreeSpaceMap;
pub use page::{Lsn, Page, PageId, PageType, HEADER_SIZE, PAGE_SIZE};
