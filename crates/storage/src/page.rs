//! Fixed-size page images and the header fields the reorganizer relies on.
//!
//! Every page carries, in a 32-byte header: the page LSN (for WAL redo
//! idempotence), a type tag, the B+-tree level, a slot count and free-space
//! pointer maintained by the typed views in `obr-btree`, left/right side
//! pointers (§4.3 of the paper), and the *low mark* — the smallest key ever
//! placed on the page, which pass 3 uses to drive `Get_Next` (§7.1).

use std::fmt;

/// Size in bytes of every page image.
pub const PAGE_SIZE: usize = 4096;

/// Size in bytes of the fixed page header.
pub const HEADER_SIZE: usize = 32;

/// Identifier of a page on disk.
///
/// Page ids double as physical positions: the experiments measure seek
/// distance as the difference between successive page ids, which is the
/// contiguity property pass 2 of the reorganization restores.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel for "no page" (null side pointer, no parent, ...).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True when this id is the invalid sentinel.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "∅")
        }
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Log sequence number. Defined here (not in `obr-wal`) because every page
/// header stores the LSN of the last log record applied to it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The LSN below every real log record.
    pub const ZERO: Lsn = Lsn(0);

    /// The next LSN.
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// What kind of page an image holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageType {
    /// Unallocated / deallocated page.
    Free = 0,
    /// B+-tree leaf holding data records (the tree is a primary index).
    Leaf = 1,
    /// B+-tree internal page; level-1 internal pages are the *base pages*.
    Internal = 2,
    /// Tree metadata page: root location, reorganization bit (§7.4).
    Meta = 3,
    /// Side-file page used during internal-page reorganization (§7.2).
    SideFile = 4,
}

impl PageType {
    /// Decode from the header byte.
    pub fn from_u8(v: u8) -> Option<PageType> {
        match v {
            0 => Some(PageType::Free),
            1 => Some(PageType::Leaf),
            2 => Some(PageType::Internal),
            3 => Some(PageType::Meta),
            4 => Some(PageType::SideFile),
            _ => None,
        }
    }
}

const OFF_LSN: usize = 0;
const OFF_TYPE: usize = 8;
const OFF_LEVEL: usize = 9;
const OFF_SLOTS: usize = 10;
const OFF_FREE_PTR: usize = 12;
const OFF_LEFT_SIB: usize = 14;
const OFF_RIGHT_SIB: usize = 18;
const OFF_LOW_MARK: usize = 22;

/// A raw page image: a `PAGE_SIZE` byte array plus typed header accessors.
///
/// Typed record layouts on top of the body area live in `obr-btree`
/// (`LeafView`, `NodeView`); this type only owns the bytes and the header.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An all-zero page (type [`PageType::Free`], LSN 0).
    pub fn new() -> Page {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_free_ptr(HEADER_SIZE as u16);
        p
    }

    /// Initialize a fresh page of the given type and level, resetting the
    /// body, slot count, side pointers, and low mark.
    // protocol: page-mutation
    pub fn format(&mut self, ty: PageType, level: u8) {
        self.data.fill(0);
        self.set_page_type(ty);
        self.set_level(level);
        self.set_free_ptr(HEADER_SIZE as u16);
        self.set_left_sibling(PageId::INVALID);
        self.set_right_sibling(PageId::INVALID);
        self.set_low_mark(u64::MAX);
    }

    /// Reconstruct a page from a raw image.
    pub fn from_bytes(bytes: &[u8; PAGE_SIZE]) -> Page {
        Page {
            data: Box::new(*bytes),
        }
    }

    /// The raw image.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable raw image (used by typed views).
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// The body area after the header.
    pub fn body(&self) -> &[u8] {
        &self.data[HEADER_SIZE..]
    }

    /// Mutable body area after the header.
    pub fn body_mut(&mut self) -> &mut [u8] {
        &mut self.data[HEADER_SIZE..]
    }

    fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn read_u32(&self, off: usize) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[off..off + 4]);
        u32::from_le_bytes(b)
    }

    fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    fn read_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    fn write_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// LSN of the last log record applied to this page.
    pub fn lsn(&self) -> Lsn {
        Lsn(self.read_u64(OFF_LSN))
    }

    /// Set the page LSN.
    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.write_u64(OFF_LSN, lsn.0);
    }

    /// Decoded page type; `None` if the tag byte is invalid.
    pub fn page_type(&self) -> Option<PageType> {
        PageType::from_u8(self.data[OFF_TYPE])
    }

    /// Set the page type tag.
    pub fn set_page_type(&mut self, ty: PageType) {
        self.data[OFF_TYPE] = ty as u8;
    }

    /// Tree level: 0 for leaves, 1 for base pages, and so on upward.
    pub fn level(&self) -> u8 {
        self.data[OFF_LEVEL]
    }

    /// Set the tree level.
    pub fn set_level(&mut self, level: u8) {
        self.data[OFF_LEVEL] = level;
    }

    /// Number of records/entries on the page.
    pub fn slot_count(&self) -> u16 {
        self.read_u16(OFF_SLOTS)
    }

    /// Set the slot count.
    pub fn set_slot_count(&mut self, n: u16) {
        self.write_u16(OFF_SLOTS, n);
    }

    /// Offset of the first free byte (records are packed from the header up).
    pub fn free_ptr(&self) -> u16 {
        self.read_u16(OFF_FREE_PTR)
    }

    /// Set the free pointer.
    pub fn set_free_ptr(&mut self, off: u16) {
        self.write_u16(OFF_FREE_PTR, off);
    }

    /// Free bytes remaining in the body.
    pub fn free_space(&self) -> usize {
        PAGE_SIZE - self.free_ptr() as usize
    }

    /// Left (previous-in-key-order) side pointer.
    pub fn left_sibling(&self) -> PageId {
        PageId(self.read_u32(OFF_LEFT_SIB))
    }

    /// Set the left side pointer.
    pub fn set_left_sibling(&mut self, p: PageId) {
        self.write_u32(OFF_LEFT_SIB, p.0);
    }

    /// Right (next-in-key-order) side pointer.
    pub fn right_sibling(&self) -> PageId {
        PageId(self.read_u32(OFF_RIGHT_SIB))
    }

    /// Set the right side pointer.
    pub fn set_right_sibling(&mut self, p: PageId) {
        self.write_u32(OFF_RIGHT_SIB, p.0);
    }

    /// The low mark: smallest key placed on the page when it was created
    /// (`u64::MAX` when never set). Pass 3 orders base pages by low mark.
    pub fn low_mark(&self) -> u64 {
        self.read_u64(OFF_LOW_MARK)
    }

    /// Set the low mark.
    pub fn set_low_mark(&mut self, k: u64) {
        self.write_u64(OFF_LOW_MARK, k);
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Page")
            .field("lsn", &self.lsn())
            .field("type", &self.page_type())
            .field("level", &self.level())
            .field("slots", &self.slot_count())
            .field("free_ptr", &self.free_ptr())
            .field("left", &self.left_sibling())
            .field("right", &self.right_sibling())
            .field("low_mark", &self.low_mark())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_page_is_free_type_with_empty_body() {
        let p = Page::new();
        assert_eq!(p.page_type(), Some(PageType::Free));
        assert_eq!(p.lsn(), Lsn::ZERO);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE);
    }

    #[test]
    fn format_resets_everything() {
        let mut p = Page::new();
        p.set_lsn(Lsn(9));
        p.set_slot_count(5);
        p.body_mut()[0] = 0xFF;
        p.format(PageType::Leaf, 0);
        assert_eq!(p.page_type(), Some(PageType::Leaf));
        assert_eq!(p.level(), 0);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.lsn(), Lsn::ZERO);
        assert_eq!(p.body()[0], 0);
        assert_eq!(p.left_sibling(), PageId::INVALID);
        assert_eq!(p.right_sibling(), PageId::INVALID);
        assert_eq!(p.low_mark(), u64::MAX);
    }

    #[test]
    fn header_fields_round_trip() {
        let mut p = Page::new();
        p.set_lsn(Lsn(0xFEED));
        p.set_page_type(PageType::Internal);
        p.set_level(3);
        p.set_slot_count(117);
        p.set_free_ptr(2048);
        p.set_left_sibling(PageId(11));
        p.set_right_sibling(PageId(13));
        p.set_low_mark(0xABCD_EF01);
        assert_eq!(p.lsn(), Lsn(0xFEED));
        assert_eq!(p.page_type(), Some(PageType::Internal));
        assert_eq!(p.level(), 3);
        assert_eq!(p.slot_count(), 117);
        assert_eq!(p.free_ptr(), 2048);
        assert_eq!(p.left_sibling(), PageId(11));
        assert_eq!(p.right_sibling(), PageId(13));
        assert_eq!(p.low_mark(), 0xABCD_EF01);
    }

    #[test]
    fn image_round_trip_preserves_header() {
        let mut p = Page::new();
        p.format(PageType::Leaf, 0);
        p.set_lsn(Lsn(5));
        p.set_low_mark(42);
        let copy = Page::from_bytes(p.bytes());
        assert_eq!(copy.lsn(), Lsn(5));
        assert_eq!(copy.low_mark(), 42);
        assert_eq!(copy.page_type(), Some(PageType::Leaf));
    }

    #[test]
    fn invalid_type_tag_decodes_to_none() {
        let mut p = Page::new();
        p.bytes_mut()[super::OFF_TYPE] = 200;
        assert_eq!(p.page_type(), None);
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(7).to_string(), "7");
        assert_eq!(PageId::INVALID.to_string(), "∅");
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
    }

    #[test]
    fn lsn_ordering_and_next() {
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn(1).next(), Lsn(2));
    }

    proptest! {
        #[test]
        fn prop_header_fields_independent(lsn in any::<u64>(), slots in any::<u16>(),
                                          fp in (HEADER_SIZE as u16)..(PAGE_SIZE as u16),
                                          low in any::<u64>(), l in any::<u32>(), r in any::<u32>()) {
            let mut p = Page::new();
            p.set_lsn(Lsn(lsn));
            p.set_slot_count(slots);
            p.set_free_ptr(fp);
            p.set_low_mark(low);
            p.set_left_sibling(PageId(l));
            p.set_right_sibling(PageId(r));
            // Writing one field must not disturb the others.
            prop_assert_eq!(p.lsn(), Lsn(lsn));
            prop_assert_eq!(p.slot_count(), slots);
            prop_assert_eq!(p.free_ptr(), fp);
            prop_assert_eq!(p.low_mark(), low);
            prop_assert_eq!(p.left_sibling(), PageId(l));
            prop_assert_eq!(p.right_sibling(), PageId(r));
        }
    }
}
