//! Free-space map: which pages are unallocated, and the placement query the
//! reorganizer's heuristic needs.
//!
//! §6.1 of the paper chooses, for each leaf `C` being compacted new-place,
//! "the first empty page which is in front of the leaf page that is going to
//! be reorganized, C, and after the largest finished leaf page ID, L" — that
//! is the [`FreeSpaceMap::first_free_in`] query over the open interval
//! `(L, C)`. Baseline policies (first-free anywhere, random) are also served
//! from here so experiment E3 can compare them.

use obr_sync::Mutex;

use crate::page::PageId;

/// Thread-safe bitmap of free pages.
///
/// Optionally split into two regions, per §6 of the paper ("we assume that
/// the leaf pages and internal pages are in a different part of the disk"):
/// pages below the *leaf boundary* are the internal region (meta + index
/// pages), pages at or above it are the leaf region. With the default
/// boundary of 0 everything is one region.
///
/// ```
/// use obr_storage::{FreeSpaceMap, PageId};
///
/// let fsm = FreeSpaceMap::new_all_allocated(16);
/// fsm.free(PageId(5));
/// fsm.free(PageId(9));
/// // §6.1 placement query: first free page strictly inside (L, C).
/// assert_eq!(fsm.first_free_in(PageId(5), PageId(12)), Some(PageId(9)));
/// assert_eq!(fsm.first_free_in(PageId(9), PageId(12)), None);
/// ```
#[derive(Debug)]
pub struct FreeSpaceMap {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    free: Vec<bool>,
    free_count: usize,
    /// First page id of the leaf region (0 = no split).
    leaf_boundary: u32,
}

impl FreeSpaceMap {
    /// Create a map over `pages` pages, all initially allocated.
    pub fn new_all_allocated(pages: u32) -> FreeSpaceMap {
        FreeSpaceMap {
            inner: Mutex::named(
                Inner {
                    free: vec![false; pages as usize],
                    free_count: 0,
                    leaf_boundary: 0,
                },
                "fsm.state",
            ),
        }
    }

    /// Create a map over `pages` pages, all initially free.
    pub fn new_all_free(pages: u32) -> FreeSpaceMap {
        FreeSpaceMap {
            inner: Mutex::named(
                Inner {
                    free: vec![true; pages as usize],
                    free_count: pages as usize,
                    leaf_boundary: 0,
                },
                "fsm.state",
            ),
        }
    }

    /// Number of pages tracked.
    pub fn num_pages(&self) -> u32 {
        self.inner.lock().free.len() as u32
    }

    /// Number of free pages.
    pub fn free_count(&self) -> usize {
        self.inner.lock().free_count
    }

    /// Number of allocated pages.
    pub fn allocated_count(&self) -> usize {
        let g = self.inner.lock();
        g.free.len() - g.free_count
    }

    /// Grow the map; new pages are free.
    pub fn grow(&self, pages: u32) {
        let mut g = self.inner.lock();
        while (g.free.len() as u32) < pages {
            g.free.push(true);
            g.free_count += 1;
        }
    }

    /// True when `id` is free.
    pub fn is_free(&self, id: PageId) -> bool {
        let g = self.inner.lock();
        g.free.get(id.index()).copied().unwrap_or(false)
    }

    /// Allocate the lowest-id free page.
    pub fn allocate(&self) -> Option<PageId> {
        let mut g = self.inner.lock();
        let idx = g.free.iter().position(|&f| f)?;
        g.free[idx] = false;
        g.free_count -= 1;
        Some(PageId(idx as u32))
    }

    /// Set the first page of the leaf region (§6 two-region layout).
    pub fn set_leaf_boundary(&self, boundary: PageId) {
        self.inner.lock().leaf_boundary = boundary.0;
    }

    /// First page of the leaf region (0 when the disk is one region).
    pub fn leaf_boundary(&self) -> PageId {
        PageId(self.inner.lock().leaf_boundary)
    }

    /// Allocate the lowest free page in the leaf region, falling back to
    /// anywhere when the region is exhausted.
    pub fn allocate_leaf(&self) -> Option<PageId> {
        let mut g = self.inner.lock();
        let b = g.leaf_boundary as usize;
        let idx = match g.free[b.min(g.free.len())..].iter().position(|&f| f) {
            Some(i) => b + i,
            None => g.free.iter().position(|&f| f)?,
        };
        g.free[idx] = false;
        g.free_count -= 1;
        Some(PageId(idx as u32))
    }

    /// Allocate the lowest free page in the internal region, falling back to
    /// anywhere when the region is exhausted.
    pub fn allocate_internal(&self) -> Option<PageId> {
        let mut g = self.inner.lock();
        let b = (g.leaf_boundary as usize).min(g.free.len());
        let idx = match g.free[..b].iter().position(|&f| f) {
            Some(i) => i,
            None => g.free.iter().position(|&f| f)?,
        };
        g.free[idx] = false;
        g.free_count -= 1;
        Some(PageId(idx as u32))
    }

    /// Allocate a specific page; returns `false` when it was not free.
    pub fn allocate_specific(&self, id: PageId) -> bool {
        let mut g = self.inner.lock();
        match g.free.get_mut(id.index()) {
            Some(slot) if *slot => {
                *slot = false;
                g.free_count -= 1;
                true
            }
            _ => false,
        }
    }

    /// The paper's placement query: first free page id strictly inside
    /// `(after, before)`. Returns `None` when the interval holds no free page.
    pub fn first_free_in(&self, after: PageId, before: PageId) -> Option<PageId> {
        let g = self.inner.lock();
        let lo = (after.0 as usize).saturating_add(1);
        let hi = (before.0 as usize).min(g.free.len());
        (lo..hi).find(|&i| g.free[i]).map(|i| PageId(i as u32))
    }

    /// Allocate via [`Self::first_free_in`] atomically.
    pub fn allocate_in(&self, after: PageId, before: PageId) -> Option<PageId> {
        let mut g = self.inner.lock();
        let lo = (after.0 as usize).saturating_add(1);
        let hi = (before.0 as usize).min(g.free.len());
        let idx = (lo..hi).find(|&i| g.free[i])?;
        g.free[idx] = false;
        g.free_count -= 1;
        Some(PageId(idx as u32))
    }

    /// Return a page to the free pool. Idempotent.
    pub fn free(&self, id: PageId) {
        let mut g = self.inner.lock();
        if let Some(slot) = g.free.get_mut(id.index()) {
            if !*slot {
                *slot = true;
                g.free_count += 1;
            }
        }
    }

    /// Snapshot of all free page ids (ascending).
    pub fn free_pages(&self) -> Vec<PageId> {
        let g = self.inner.lock();
        g.free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| PageId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_returns_lowest_free() {
        let fsm = FreeSpaceMap::new_all_free(4);
        assert_eq!(fsm.allocate(), Some(PageId(0)));
        assert_eq!(fsm.allocate(), Some(PageId(1)));
        fsm.free(PageId(0));
        assert_eq!(fsm.allocate(), Some(PageId(0)));
    }

    #[test]
    fn exhaustion_returns_none() {
        let fsm = FreeSpaceMap::new_all_free(2);
        fsm.allocate().unwrap();
        fsm.allocate().unwrap();
        assert_eq!(fsm.allocate(), None);
        assert_eq!(fsm.free_count(), 0);
    }

    #[test]
    fn allocate_specific_respects_state() {
        let fsm = FreeSpaceMap::new_all_free(4);
        assert!(fsm.allocate_specific(PageId(2)));
        assert!(!fsm.allocate_specific(PageId(2)));
        assert!(!fsm.allocate_specific(PageId(99)));
        assert!(!fsm.is_free(PageId(2)));
    }

    #[test]
    fn first_free_in_is_exclusive_open_interval() {
        let fsm = FreeSpaceMap::new_all_allocated(10);
        fsm.free(PageId(3));
        fsm.free(PageId(7));
        // (3, 7) excludes both endpoints: no free page inside.
        assert_eq!(fsm.first_free_in(PageId(3), PageId(7)), None);
        // (2, 8) contains 3 and 7; lowest wins.
        assert_eq!(fsm.first_free_in(PageId(2), PageId(8)), Some(PageId(3)));
        // (3, 8) contains only 7.
        assert_eq!(fsm.first_free_in(PageId(3), PageId(8)), Some(PageId(7)));
    }

    #[test]
    fn allocate_in_consumes_the_page() {
        let fsm = FreeSpaceMap::new_all_allocated(10);
        fsm.free(PageId(5));
        assert_eq!(fsm.allocate_in(PageId(0), PageId(9)), Some(PageId(5)));
        assert_eq!(fsm.allocate_in(PageId(0), PageId(9)), None);
    }

    #[test]
    fn free_is_idempotent() {
        let fsm = FreeSpaceMap::new_all_allocated(4);
        fsm.free(PageId(1));
        fsm.free(PageId(1));
        assert_eq!(fsm.free_count(), 1);
    }

    #[test]
    fn grow_adds_free_pages() {
        let fsm = FreeSpaceMap::new_all_allocated(2);
        fsm.grow(5);
        assert_eq!(fsm.num_pages(), 5);
        assert_eq!(fsm.free_count(), 3);
        assert_eq!(fsm.free_pages(), vec![PageId(2), PageId(3), PageId(4)]);
    }

    #[test]
    fn regions_steer_allocation() {
        let fsm = FreeSpaceMap::new_all_free(16);
        fsm.set_leaf_boundary(PageId(8));
        assert_eq!(fsm.leaf_boundary(), PageId(8));
        assert_eq!(fsm.allocate_internal(), Some(PageId(0)));
        assert_eq!(fsm.allocate_leaf(), Some(PageId(8)));
        assert_eq!(fsm.allocate_leaf(), Some(PageId(9)));
        assert_eq!(fsm.allocate_internal(), Some(PageId(1)));
    }

    #[test]
    fn regions_fall_back_when_exhausted() {
        let fsm = FreeSpaceMap::new_all_free(6);
        fsm.set_leaf_boundary(PageId(4));
        // Drain the internal region.
        for _ in 0..4 {
            fsm.allocate_internal().unwrap();
        }
        // Internal allocations spill into the leaf region.
        assert_eq!(fsm.allocate_internal(), Some(PageId(4)));
        // And leaf allocations spill backwards once their region drains.
        assert_eq!(fsm.allocate_leaf(), Some(PageId(5)));
        fsm.free(PageId(2));
        assert_eq!(fsm.allocate_leaf(), Some(PageId(2)));
        assert_eq!(fsm.allocate_leaf(), None);
    }

    #[test]
    fn default_boundary_keeps_single_region_behaviour() {
        let fsm = FreeSpaceMap::new_all_free(4);
        assert_eq!(fsm.allocate_leaf(), Some(PageId(0)));
        assert_eq!(fsm.allocate_internal(), Some(PageId(1)));
    }

    proptest! {
        #[test]
        fn prop_counts_stay_consistent(ops in prop::collection::vec((any::<bool>(), 0u32..32), 1..100)) {
            let fsm = FreeSpaceMap::new_all_free(32);
            for (alloc, id) in ops {
                if alloc {
                    fsm.allocate_specific(PageId(id));
                } else {
                    fsm.free(PageId(id));
                }
                let listed = fsm.free_pages().len();
                prop_assert_eq!(listed, fsm.free_count());
                prop_assert_eq!(fsm.allocated_count() + fsm.free_count(), 32);
            }
        }

        #[test]
        fn prop_first_free_in_matches_linear_scan(free_ids in prop::collection::btree_set(0u32..64, 0..20),
                                                  after in 0u32..64, before in 0u32..64) {
            let fsm = FreeSpaceMap::new_all_allocated(64);
            for &i in &free_ids { fsm.free(PageId(i)); }
            let expected = (after + 1..before.min(64)).find(|i| free_ids.contains(i)).map(PageId);
            prop_assert_eq!(fsm.first_free_in(PageId(after), PageId(before)), expected);
        }
    }
}
