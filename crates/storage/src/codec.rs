//! Minimal hand-rolled binary codec used by page images and log records.
//!
//! The write-ahead log and the page formats are encoded with these helpers
//! rather than a serialization framework: the encodings are stable, compact,
//! little-endian, and every decode is bounds-checked so a torn or corrupt
//! image surfaces as an error instead of a panic.

use crate::error::{StorageError, StorageResult};

/// An append-only byte writer with length-prefixed composite support.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append raw bytes with no length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// A bounds-checked reader over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::Corrupt(format!(
                "decode past end: need {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decode a single byte.
    pub fn get_u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Decode a little-endian `u16`.
    pub fn get_u16(&mut self) -> StorageResult<u16> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Decode a little-endian `u32`.
    pub fn get_u32(&mut self) -> StorageResult<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Decode a little-endian `u64`.
    pub fn get_u64(&mut self) -> StorageResult<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// Decode a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> StorageResult<Vec<u8>> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Decode `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.put_u8(0xAB);
        w.put_u16(0xCDEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xCDEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn round_trip_bytes() {
        let mut w = Writer::new();
        w.put_bytes(b"hello");
        w.put_bytes(b"");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_bytes().unwrap(), b"");
    }

    #[test]
    fn decode_past_end_is_error_not_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
    }

    #[test]
    fn truncated_length_prefix_is_error() {
        let mut w = Writer::new();
        w.put_u32(1000); // claims 1000 bytes follow
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn position_tracks_consumption() {
        let mut w = Writer::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.position(), 0);
        r.get_u64().unwrap();
        assert_eq!(r.position(), 8);
    }

    proptest! {
        #[test]
        fn prop_round_trip_mixed(u8s in prop::collection::vec(any::<u8>(), 0..8),
                                 u64s in prop::collection::vec(any::<u64>(), 0..8),
                                 blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..4)) {
            let mut w = Writer::new();
            for &v in &u8s { w.put_u8(v); }
            for &v in &u64s { w.put_u64(v); }
            for b in &blobs { w.put_bytes(b); }
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            for &v in &u8s { prop_assert_eq!(r.get_u8().unwrap(), v); }
            for &v in &u64s { prop_assert_eq!(r.get_u64().unwrap(), v); }
            for b in &blobs { prop_assert_eq!(&r.get_bytes().unwrap(), b); }
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
