//! The Tandem-style reorganizer.

use obr_sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use obr_sync::Mutex;

use obr_btree::leaf::LEAF_BODY;
use obr_btree::{LeafRef, LeafView, NodeRef, NodeView};
use obr_core::{CoreError, CoreResult, Database};
use obr_lock::{LockError, LockMode, OwnerId, ResourceId};
use obr_storage::{Page, PageId, PageType, PAGE_SIZE};
use obr_wal::LogRecord;

/// Baseline configuration.
#[derive(Clone, Debug)]
pub struct TandemConfig {
    /// Target leaf fill factor.
    pub target_fill: f64,
    /// Run the ordering (swap) phase after merging.
    pub ordering_phase: bool,
}

impl Default for TandemConfig {
    fn default() -> Self {
        TandemConfig {
            target_fill: 0.9,
            ordering_phase: true,
        }
    }
}

/// Baseline counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TandemStats {
    /// Transactions run (one per block operation).
    pub transactions: u64,
    /// Block merges.
    pub merges: u64,
    /// Block moves.
    pub moves: u64,
    /// Block swaps.
    pub swaps: u64,
    /// Pages freed.
    pub pages_freed: u64,
    /// Records moved.
    pub records_moved: u64,
    /// Times the whole-file lock had to wait for user transactions.
    pub file_lock_waits: u64,
}

/// The \[Smi90\]-style reorganizer.
pub struct TandemReorganizer {
    db: Arc<Database>,
    cfg: TandemConfig,
    owner: OwnerId,
    stats: Mutex<TandemStats>,
    /// Raised externally to abandon the run (crash experiments).
    pub stop: AtomicBool,
}

fn image_of(page: &Page) -> Box<[u8; PAGE_SIZE]> {
    Box::new(*page.bytes())
}

impl TandemReorganizer {
    /// Create a baseline reorganizer over `db`.
    pub fn new(db: Arc<Database>, cfg: TandemConfig) -> TandemReorganizer {
        let owner = db.new_owner();
        db.locks().register_reorganizer(owner);
        TandemReorganizer {
            db,
            cfg,
            owner,
            stats: Mutex::named(TandemStats::default(), "tandem.stats"),
            stop: AtomicBool::new(false),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> TandemStats {
        *self.stats.lock()
    }

    /// Run the merge phase, then (optionally) the ordering phase.
    pub fn run(&self) -> CoreResult<TandemStats> {
        self.run_merges()?;
        if self.cfg.ordering_phase {
            self.run_ordering()?;
        }
        Ok(self.stats())
    }

    /// X-lock the whole file for one block operation, run it, release.
    fn file_transaction<T>(&self, op: impl FnOnce() -> CoreResult<T>) -> CoreResult<T> {
        let gen = self.db.tree().generation()?;
        let locks = self.db.locks();
        loop {
            match locks.lock(self.owner, ResourceId::Tree(gen), LockMode::X) {
                Ok(()) => break,
                Err(LockError::Deadlock) => {
                    locks.release_all(self.owner);
                    self.stats.lock().file_lock_waits += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
        let result = op();
        locks.unlock(self.owner, ResourceId::Tree(gen));
        self.stats.lock().transactions += 1;
        result
    }

    /// Merge phase: repeatedly merge the contents of two adjacent
    /// same-parent leaves (one transaction each) until no pair fits
    /// together under the target fill.
    pub fn run_merges(&self) -> CoreResult<()> {
        let budget = (LEAF_BODY as f64 * self.cfg.target_fill) as usize;
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            let merged = self.file_transaction(|| self.merge_one(budget))?;
            if !merged {
                return Ok(());
            }
        }
    }

    /// Find and merge one adjacent same-parent pair. Returns false when no
    /// pair fits.
    fn merge_one(&self, budget: usize) -> CoreResult<bool> {
        let tree = self.db.tree();
        let pool = self.db.pool();
        let _g = tree.smo_guard();
        for base in tree.base_pages()? {
            let entries = tree.base_entries(base)?;
            for w in entries.windows(2) {
                let ((ka, a), (kb, b)) = (w[0], w[1]);
                let (ua, ub) = {
                    let ga = pool.fetch(a)?;
                    let gb = pool.fetch(b)?;
                    let pa = ga.read();
                    let pb = gb.read();
                    if pa.page_type() != Some(PageType::Leaf)
                        || pb.page_type() != Some(PageType::Leaf)
                    {
                        continue;
                    }
                    (
                        LeafRef::new(&pa).used_bytes(),
                        LeafRef::new(&pb).used_bytes(),
                    )
                };
                if ua + ub > budget || ub == 0 {
                    continue;
                }
                // Merge b into a: page-image logging of everything touched.
                let moved = self.do_merge(base, ka, a, kb, b)?;
                let mut st = self.stats.lock();
                st.merges += 1;
                st.pages_freed += 1;
                st.records_moved += moved;
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn do_merge(&self, base: PageId, _ka: u64, a: PageId, kb: u64, b: PageId) -> CoreResult<u64> {
        let pool = self.db.pool();
        let moved;
        let b_right;
        {
            let ga = pool.fetch(a)?;
            let gb = pool.fetch(b)?;
            let mut pa = ga.write();
            let mut pb = gb.write();
            let records = {
                let mut lb = LeafView::new(&mut pb);
                lb.take_all()
            };
            moved = records.len() as u64;
            {
                let mut la = LeafView::new(&mut pa);
                la.extend(&records).map_err(CoreError::Storage)?;
            }
            b_right = pb.right_sibling();
            pa.set_right_sibling(b_right);
            pb.format(PageType::Free, 0);
        }
        {
            let gbase = pool.fetch(base)?;
            let mut pbase = gbase.write();
            let mut node = NodeView::new(&mut pbase);
            node.remove_entry(kb);
        }
        if b_right.is_valid() {
            let g = pool.fetch(b_right)?;
            let mut p = g.write();
            p.set_left_sibling(a);
        }
        // [Smi90]-style logging: full images of every page the transaction
        // touched.
        let mut images = Vec::new();
        for p in [a, b, base] {
            let g = pool.fetch(p)?;
            let page = g.read();
            images.push((p, image_of(&page)));
        }
        if b_right.is_valid() {
            let g = pool.fetch(b_right)?;
            let page = g.read();
            images.push((b_right, image_of(&page)));
        }
        let lsn = self.db.log().append(&LogRecord::Smo {
            images,
            new_anchor: None,
        });
        for p in [a, b, base] {
            let g = pool.fetch(p)?;
            g.write().set_lsn(lsn);
        }
        if b_right.is_valid() {
            let g = pool.fetch(b_right)?;
            g.write().set_lsn(lsn);
        }
        self.db.pool().flush_page(b)?; // the freed image must reach disk
        self.db.pool().discard(b);
        self.db.fsm().free(b);
        Ok(moved)
    }

    /// Ordering phase: block swaps/moves until leaves are contiguous in key
    /// order (one whole-file transaction per block operation, no placement
    /// heuristic).
    pub fn run_ordering(&self) -> CoreResult<()> {
        let tree = self.db.tree();
        let mut leaves = tree.leaves_in_key_order()?;
        if leaves.is_empty() {
            return Ok(());
        }
        let start = leaves.iter().min().copied().unwrap_or(PageId(0)).0;
        for i in 0..leaves.len() {
            if self.stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            let target = PageId(start + i as u32);
            let leaf = leaves[i];
            if leaf == target {
                continue;
            }
            if self.db.fsm().allocate_specific(target) {
                self.file_transaction(|| self.do_move(leaf, target))?;
                self.stats.lock().moves += 1;
                leaves[i] = target;
            } else {
                let occupied_by = leaves.iter().position(|&l| l == target);
                let is_leaf = {
                    let g = self.db.pool().fetch(target)?;
                    let page = g.read();
                    page.page_type() == Some(PageType::Leaf)
                };
                match (is_leaf, occupied_by) {
                    (true, Some(j)) if j > i => {
                        self.file_transaction(|| self.do_swap(leaf, target))?;
                        self.stats.lock().swaps += 1;
                        leaves[j] = leaf;
                        leaves[i] = target;
                    }
                    _ => continue,
                }
            }
        }
        Ok(())
    }

    fn do_move(&self, src: PageId, target: PageId) -> CoreResult<()> {
        let tree = self.db.tree();
        let pool = self.db.pool();
        let _g = tree.smo_guard();
        let (left, right, moved) = {
            let gs = pool.fetch(src)?;
            let gt = pool.fetch_new(target)?;
            let mut ps = gs.write();
            let mut pt = gt.write();
            pt.bytes_mut().copy_from_slice(&ps.bytes()[..]);
            let (l, r) = (ps.left_sibling(), ps.right_sibling());
            let n = ps.slot_count() as u64;
            ps.format(PageType::Free, 0);
            (l, r, n)
        };
        // Repoint the parent and the chain.
        let base = self.base_of(target)?;
        {
            let g = pool.fetch(base)?;
            let mut p = g.write();
            NodeView::new(&mut p).repoint_child(src, target);
        }
        for (n, setter_right) in [(left, true), (right, false)] {
            if n.is_valid() {
                let g = pool.fetch(n)?;
                let mut p = g.write();
                if setter_right {
                    p.set_right_sibling(target);
                } else {
                    p.set_left_sibling(target);
                }
            }
        }
        let mut images = Vec::new();
        for p in [src, target, base] {
            let g = pool.fetch(p)?;
            let page = g.read();
            images.push((p, image_of(&page)));
        }
        let lsn = self.db.log().append(&LogRecord::Smo {
            images,
            new_anchor: None,
        });
        for p in [src, target, base] {
            let g = pool.fetch(p)?;
            g.write().set_lsn(lsn);
        }
        self.pool_flush_free(src, target)?;
        self.stats.lock().records_moved += moved;
        Ok(())
    }

    fn pool_flush_free(&self, src: PageId, target: PageId) -> CoreResult<()> {
        // Order matters: target (with the records) before src (the freed
        // image) — flush_pages preserves slice order across shards. Both
        // pages are pinned-then-dropped just above, so neither may be
        // reported as non-resident here.
        let skipped = self.db.pool().flush_pages(&[target, src])?;
        debug_assert!(skipped.is_empty(), "tandem move pages evicted mid-unit");
        self.db.pool().discard(src);
        self.db.fsm().free(src);
        Ok(())
    }

    fn do_swap(&self, a: PageId, b: PageId) -> CoreResult<()> {
        let tree = self.db.tree();
        let pool = self.db.pool();
        let _g = tree.smo_guard();
        let base_a = self.base_of(a)?;
        let base_b = self.base_of(b)?;
        let (al, ar, bl, br) = {
            let ga = pool.fetch(a)?;
            let gb = pool.fetch(b)?;
            let mut pa = ga.write();
            let mut pb = gb.write();
            let pre = (
                pa.left_sibling(),
                pa.right_sibling(),
                pb.left_sibling(),
                pb.right_sibling(),
            );
            std::mem::swap(pa.bytes_mut(), pb.bytes_mut());
            let remap = |p: PageId| {
                if p == a {
                    b
                } else if p == b {
                    a
                } else {
                    p
                }
            };
            for page in [&mut pa, &mut pb] {
                let (l, r) = (page.left_sibling(), page.right_sibling());
                page.set_left_sibling(remap(l));
                page.set_right_sibling(remap(r));
            }
            pre
        };
        let remap = |p: PageId| {
            if p == a {
                b
            } else if p == b {
                a
            } else {
                p
            }
        };
        let mut seen: Vec<PageId> = Vec::with_capacity(4);
        for n in [al, ar, bl, br] {
            if n.is_valid() && n != a && n != b && !seen.contains(&n) {
                seen.push(n);
                let g = pool.fetch(n)?;
                let mut p = g.write();
                let (l, r) = (p.left_sibling(), p.right_sibling());
                p.set_left_sibling(remap(l));
                p.set_right_sibling(remap(r));
            }
        }
        let bases = if base_a == base_b {
            vec![base_a]
        } else {
            vec![base_a, base_b]
        };
        for &base in &bases {
            let g = pool.fetch(base)?;
            let mut p = g.write();
            let entries = NodeRef::new(&p).entries();
            let mut node = NodeView::new(&mut p);
            for (k, c) in entries {
                if c == a {
                    node.set_child(k, b).map_err(CoreError::Storage)?;
                } else if c == b {
                    node.set_child(k, a).map_err(CoreError::Storage)?;
                }
            }
        }
        // Log full images of both pages, both parents, and the neighbours —
        // the [Smi90] way.
        let mut pages = vec![a, b];
        pages.extend(bases.iter().copied());
        for n in [al, ar, bl, br] {
            if n.is_valid() && n != a && n != b && !pages.contains(&n) {
                pages.push(n);
            }
        }
        let mut images = Vec::new();
        for &p in &pages {
            let g = pool.fetch(p)?;
            let page = g.read();
            images.push((p, image_of(&page)));
        }
        let lsn = self.db.log().append(&LogRecord::Smo {
            images,
            new_anchor: None,
        });
        for &p in &pages {
            let g = pool.fetch(p)?;
            g.write().set_lsn(lsn);
        }
        Ok(())
    }

    fn base_of(&self, leaf: PageId) -> CoreResult<PageId> {
        let tree = self.db.tree();
        let pool = self.db.pool();
        let key = {
            let g = pool.fetch(leaf)?;
            let page = g.read();
            LeafRef::new(&page).first_key().unwrap_or(page.low_mark())
        };
        let path = tree.path_for_locked(key)?;
        if path.len() < 2 {
            return Err(CoreError::Recovery(format!("leaf {leaf} has no base")));
        }
        Ok(path[path.len() - 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_btree::SidePointerMode;
    use obr_storage::{DiskManager, InMemoryDisk};

    fn sparse_db(pages: u32, n: u64, f1: f64) -> Arc<Database> {
        let disk = Arc::new(InMemoryDisk::new(pages));
        let db = Database::create(
            disk as Arc<dyn DiskManager>,
            pages as usize,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let records: Vec<(u64, Vec<u8>)> = (0..n)
            .map(|k| {
                let mut v = k.to_le_bytes().to_vec();
                v.resize(64, 1);
                (k, v)
            })
            .collect();
        db.tree().bulk_load(&records, f1, 0.9).unwrap();
        db
    }

    #[test]
    fn merges_compact_the_tree() {
        let db = sparse_db(4096, 2000, 0.25);
        let before = db.tree().stats().unwrap();
        let expected = db.tree().collect_all().unwrap();
        let t = TandemReorganizer::new(
            Arc::clone(&db),
            TandemConfig {
                ordering_phase: false,
                ..TandemConfig::default()
            },
        );
        t.run().unwrap();
        let after = db.tree().stats().unwrap();
        db.tree().validate().unwrap();
        assert_eq!(db.tree().collect_all().unwrap(), expected);
        assert!(after.leaf_pages < before.leaf_pages);
        assert!(after.avg_leaf_fill > before.avg_leaf_fill * 1.5);
        let st = t.stats();
        assert!(st.merges > 0);
        assert_eq!(st.transactions, st.merges + 1); // +1 for the final no-op probe
    }

    #[test]
    fn two_block_granularity_needs_more_transactions_than_units() {
        // d = f2/f1 = 0.9/0.25 ≈ 4 pages per full page: the baseline needs
        // roughly one transaction per page merged, far more transactions
        // than our reorganizer needs units.
        let db = sparse_db(4096, 2000, 0.25);
        let t = TandemReorganizer::new(
            Arc::clone(&db),
            TandemConfig {
                ordering_phase: false,
                ..TandemConfig::default()
            },
        );
        t.run().unwrap();
        let st = t.stats();
        let after = db.tree().stats().unwrap();
        assert!(
            st.transactions as usize > after.leaf_pages,
            "merging down to {} leaves took {} transactions",
            after.leaf_pages,
            st.transactions
        );
    }

    #[test]
    fn ordering_phase_makes_leaves_contiguous() {
        let db = sparse_db(4096, 2000, 0.25);
        let t = TandemReorganizer::new(Arc::clone(&db), TandemConfig::default());
        t.run().unwrap();
        let stats = db.tree().stats().unwrap();
        db.tree().validate().unwrap();
        assert_eq!(stats.leaf_discontinuities(), 0);
    }

    #[test]
    fn whole_file_lock_blocks_even_unrelated_readers() {
        use std::time::Duration;
        let db = sparse_db(2048, 500, 0.3);
        let gen = db.tree().generation().unwrap();
        let t = TandemReorganizer::new(Arc::clone(&db), TandemConfig::default());
        // Simulate an in-flight block operation holding the file lock.
        db.locks()
            .lock(t.owner, ResourceId::Tree(gen), LockMode::X)
            .unwrap();
        let reader = db.new_owner();
        let r = db
            .locks()
            .try_lock(reader, ResourceId::Tree(gen), LockMode::IS);
        assert!(matches!(r, Err(LockError::WouldBlock)));
        db.locks().release_all(t.owner);
        let locks = Arc::clone(db.locks());
        let h = std::thread::spawn(move || locks.lock(reader, ResourceId::Tree(gen), LockMode::IS));
        std::thread::sleep(Duration::from_millis(10));
        h.join().unwrap().unwrap();
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use obr_btree::SidePointerMode;
    use obr_core::recover;
    use obr_storage::{DiskManager, InMemoryDisk};

    #[test]
    fn baseline_crash_recovers_via_redo_only() {
        // The baseline's page-image transactions are atomic Smo records:
        // after a crash, redo restores every completed operation and
        // nothing needs forward completion (there are no unit records).
        let disk = Arc::new(InMemoryDisk::new(8192));
        let db = obr_core::Database::create(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            8192,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let records: Vec<(u64, Vec<u8>)> = (0..1500u64)
            .map(|k| {
                let mut v = k.to_le_bytes().to_vec();
                v.resize(64, 1);
                (k, v)
            })
            .collect();
        db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
        db.checkpoint().unwrap();
        let expected = db.tree().collect_all().unwrap();
        let t = TandemReorganizer::new(
            Arc::clone(&db),
            TandemConfig {
                ordering_phase: false,
                ..TandemConfig::default()
            },
        );
        // Abandon mid-run (the in-flight operation is "rolled back" by
        // never having been logged), then crash with a partial flush.
        std::thread::scope(|s| {
            let h = s.spawn(|| t.run_merges());
            std::thread::sleep(std::time::Duration::from_millis(3));
            t.stop.store(true, Ordering::Relaxed);
            h.join().unwrap().unwrap();
        });
        db.log().flush_all().unwrap();
        db.crash(|p| p.0 % 2 == 0).unwrap();
        let db2 = obr_core::Database::reopen(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            Arc::clone(db.log()),
            8192,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let report = recover(&db2).unwrap();
        assert_eq!(report.forward_units_completed, 0);
        db2.tree().validate().unwrap();
        assert_eq!(db2.tree().collect_all().unwrap(), expected);
        // Rollback recovery means the merge progress is whatever made it to
        // the log; the run simply restarts from scratch afterwards.
        let t2 = TandemReorganizer::new(Arc::clone(&db2), TandemConfig::default());
        t2.run().unwrap();
        db2.tree().validate().unwrap();
        assert_eq!(db2.tree().collect_all().unwrap(), expected);
    }
}
