//! Baseline comparator: a Tandem-style on-line reorganizer, reimplemented
//! from §8 of the paper's description of \[Smi90\] ("Online reorganization of
//! key-sequenced tables and files", Tandem Systems Review 1990).
//!
//! The four properties the paper contrasts itself against — and which the
//! experiments E4/E5/E6 measure — are all reproduced here:
//!
//! 1. **Whole-file locking**: every block operation X-locks the entire tree,
//!    "prevent\[ing\] user transactions from accessing the entire file".
//! 2. **One transaction per block operation** (block move / merge / swap /
//!    split): more transaction and locking overhead.
//! 3. **Two-block granularity**: filling one page to the target fill factor
//!    may require several transactions.
//! 4. **Rollback recovery**: an interrupted operation is rolled back, not
//!    finished forward; its work is lost. Operations log full page images.

pub mod tandem;

pub use tandem::{TandemConfig, TandemReorganizer, TandemStats};
