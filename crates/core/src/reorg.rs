//! The on-line reorganizer: the three-pass algorithm of the paper.
//!
//! Pass 1 (§6, Figure 2) walks the leaves in key order, compacting groups of
//! leaves under one base page into one destination filled to the target fill
//! factor `f2` — `Copying-Switching` into a well-placed empty page when
//! `Find-Free-Space` finds one, `In-Place-Reorg` otherwise. Pass 2
//! (`Swapping-Moving`, optional) swaps/moves the compacted leaves into
//! physically contiguous key order. Pass 3 (§7) rebuilds the upper levels
//! new-place behind a side file and switches trees.
//!
//! Each unit follows the §4.1.1 reorganizer protocol: IX on the tree lock,
//! S then R on the base page(s), RX on the unit's leaves (and X on
//! side-pointer neighbours under other parents, acquired *before* moving
//! records so deadlock-induced undo is rare), move records, upgrade the base
//! locks to X for the short MODIFY, release. Units log
//! BEGIN/MOVE/MODIFY/END per §5; at a deadlock the reorganizer is the
//! victim and the unit is undone via compensating moves (§5.2).

use obr_sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obr_sync::Mutex;

use obr_btree::leaf::LEAF_BODY;
use obr_btree::{LeafRef, LeafView, NodeRef, NodeView};
use obr_lock::{LockError, LockMode, OwnerId, ResourceId};
use obr_obs::TraceKind;
use obr_storage::{Lsn, Page, PageId, PageType, PAGE_SIZE};
use obr_wal::{LogRecord, MovePayload, ReorgKind, UnitId};

use crate::db::Database;
use crate::error::{CoreError, CoreResult};

/// What a MOVE record carries (§5; experiment E6).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LogStrategy {
    /// Keys only; the buffer pool's careful-writing constraints make this
    /// safe (the paper's preferred mode).
    KeysOnly,
    /// Full record bodies (no careful writing assumed).
    FullRecords,
}

/// Empty-page placement policy for `Find-Free-Space` (experiment E3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacementPolicy {
    /// §6.1: the first empty page after the largest finished leaf L and
    /// before the current leaf C.
    Heuristic,
    /// First free page anywhere (naive baseline).
    FirstFree,
    /// A random free page (worst-case baseline); the seed keeps runs
    /// reproducible.
    Random(u64),
    /// Never use new-place copy: always compact in place.
    InPlaceOnly,
}

/// Injected failure sites for crash experiments (E5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailSite {
    /// Right after a unit's BEGIN record.
    AfterUnitBegin,
    /// After the first MOVE of a unit was logged and applied.
    AfterFirstMove,
    /// After all moves, before the base-page MODIFY.
    BeforeModify,
    /// After MODIFY, before END.
    BeforeEnd,
    /// After a pass-3 stable point.
    Pass3AfterStable,
    /// Just before the pass-3 switch.
    Pass3BeforeSwitch,
}

/// A one-shot fail point: fires (returns an error) the `countdown`-th time
/// its site is reached.
#[derive(Debug)]
pub struct FailPoint {
    site: FailSite,
    countdown: AtomicU64,
}

impl FailPoint {
    /// Fire the `nth` time `site` is reached (0 = first).
    pub fn new(site: FailSite, nth: u64) -> FailPoint {
        FailPoint {
            site,
            countdown: AtomicU64::new(nth),
        }
    }

    fn check(&self, site: FailSite) -> CoreResult<()> {
        if site == self.site && self.countdown.fetch_sub(1, Ordering::SeqCst) == 0 {
            return Err(CoreError::InjectedCrash(match site {
                FailSite::AfterUnitBegin => "after-unit-begin",
                FailSite::AfterFirstMove => "after-first-move",
                FailSite::BeforeModify => "before-modify",
                FailSite::BeforeEnd => "before-end",
                FailSite::Pass3AfterStable => "pass3-after-stable",
                FailSite::Pass3BeforeSwitch => "pass3-before-switch",
            }));
        }
        Ok(())
    }
}

/// Reorganizer configuration.
#[derive(Clone, Debug)]
pub struct ReorgConfig {
    /// Target leaf fill factor `f2` (§6).
    pub target_fill: f64,
    /// MOVE logging strategy.
    pub log_strategy: LogStrategy,
    /// Empty-page placement policy.
    pub placement: PlacementPolicy,
    /// Run pass 2 (the paper makes it optional).
    pub swap_pass: bool,
    /// Run pass 3.
    pub shrink_pass: bool,
    /// Pass-3 stable point interval, in base pages read (§7.3 "say 5").
    pub stable_interval: usize,
    /// Fill factor for new internal pages (pass 3).
    pub node_fill: f64,
    /// Give up on a unit after this many deadlock retries.
    pub max_unit_retries: u32,
}

impl Default for ReorgConfig {
    fn default() -> Self {
        ReorgConfig {
            target_fill: 0.9,
            log_strategy: LogStrategy::KeysOnly,
            placement: PlacementPolicy::Heuristic,
            swap_pass: true,
            shrink_pass: true,
            stable_interval: 5,
            node_fill: 0.9,
            max_unit_retries: 10,
        }
    }
}

/// When to reorganize (§6: "choosing to do swapping only when range query
/// performance falls below some acceptable level"). Checked by
/// [`Reorganizer::run_if_needed`].
#[derive(Clone, Copy, Debug)]
pub struct ReorgTrigger {
    /// Compact (pass 1) when the average leaf fill drops below this.
    pub min_fill: f64,
    /// Swap (pass 2) when more than this fraction of key-adjacent leaf
    /// pairs are physically non-adjacent.
    pub max_disorder: f64,
    /// Never run pass 2 on trees smaller than this many leaves: a couple
    /// of leaves interleaved with immovable internal pages (no §6 region
    /// split) would otherwise re-trigger forever without any gain.
    pub min_leaves_for_swap: usize,
    /// Shrink (pass 3) when the upper levels could lose a level at the
    /// configured node fill.
    pub shrink: bool,
}

impl Default for ReorgTrigger {
    fn default() -> Self {
        ReorgTrigger {
            min_fill: 0.5,
            max_disorder: 0.25,
            min_leaves_for_swap: 8,
            shrink: true,
        }
    }
}

/// What [`Reorganizer::run_if_needed`] decided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorgDecision {
    /// Pass 1 ran.
    pub compacted: bool,
    /// Pass 2 ran.
    pub swapped: bool,
    /// Pass 3 ran.
    pub shrunk: bool,
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorgStats {
    /// Reorganization units completed.
    pub units: u64,
    /// Pass-1 in-place compactions.
    pub inplace_units: u64,
    /// Pass-1 new-place copy-and-switch units.
    pub copy_switch_units: u64,
    /// Pass-2 swaps (expensive: full-page logging, two parents).
    pub swaps: u64,
    /// Pass-2 moves to empty pages (cheap).
    pub moves: u64,
    /// Records moved across all units.
    pub records_moved: u64,
    /// Leaf pages freed by compaction.
    pub pages_freed: u64,
    /// Units retried after a deadlock (reorganizer is the victim, §4.1).
    pub deadlock_retries: u64,
    /// Units undone after records had already moved (§5.2).
    pub units_undone: u64,
    /// Pass-3 base pages read.
    pub base_pages_read: u64,
    /// Pass-3 stable points taken.
    pub stable_points: u64,
    /// Side-file entries applied during catch-up and switch.
    pub side_entries_applied: u64,
    /// Pass-2 placements skipped after repeated deadlocks (the paper
    /// tolerates an imperfectly ordered result).
    pub skipped_placements: u64,
}

struct MoveJournal {
    org: PageId,
    dest: PageId,
    records: Vec<(u64, Vec<u8>)>,
}

/// One planned pass-1 unit: the base page, the `(entry key, leaf)` group,
/// the group's total record bytes, and the largest record key covered.
type PlannedGroup = (PageId, Vec<(u64, PageId)>, usize, Option<u64>);

/// The reorganizer. One instance runs the whole three-pass algorithm as a
/// single background process (the paper's design: less overhead than one
/// transaction per block operation as in \[Smi90\]).
///
/// ```
/// use std::sync::Arc;
/// use obr_core::{Database, ReorgConfig, Reorganizer};
/// use obr_btree::SidePointerMode;
/// use obr_storage::InMemoryDisk;
///
/// let disk = Arc::new(InMemoryDisk::new(4096));
/// let db = Database::create(disk, 4096, SidePointerMode::TwoWay).unwrap();
/// // Bulk-load a deliberately sparse tree (fill 0.25)...
/// let records: Vec<(u64, Vec<u8>)> = (0..500).map(|k| (k, vec![0; 64])).collect();
/// db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
/// // ...and reorganize it on-line.
/// let reorg = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
/// reorg.run().unwrap();
/// assert!(db.tree().stats().unwrap().avg_leaf_fill > 0.7);
/// assert_eq!(db.tree().validate().unwrap(), 500);
/// ```
pub struct Reorganizer {
    db: Arc<Database>,
    cfg: ReorgConfig,
    owner: OwnerId,
    next_unit: AtomicU64,
    fail: Option<FailPoint>,
    rng: Mutex<u64>,
    pub(crate) stats: Mutex<ReorgStats>,
}

fn image_of(page: &Page) -> Box<[u8; PAGE_SIZE]> {
    Box::new(*page.bytes())
}

impl Drop for Reorganizer {
    fn drop(&mut self) {
        // Keep the lock manager's victim-preference set tidy across
        // repeated daemon cycles.
        self.db.locks().unregister_reorganizer(self.owner);
        self.db.locks().release_all(self.owner);
    }
}

impl Reorganizer {
    /// Create a reorganizer over `db`.
    pub fn new(db: Arc<Database>, cfg: ReorgConfig) -> Reorganizer {
        let owner = db.new_owner();
        db.locks().register_reorganizer(owner);
        Reorganizer {
            db,
            cfg,
            owner,
            next_unit: AtomicU64::new(1),
            fail: None,
            rng: Mutex::named(0x9E37_79B9_7F4A_7C15, "reorg.rng"),
            stats: Mutex::named(ReorgStats::default(), "reorg.stats"),
        }
    }

    /// Install a fail point (crash experiments).
    pub fn with_fail_point(mut self, fp: FailPoint) -> Reorganizer {
        self.fail = Some(fp);
        self
    }

    /// Counters so far.
    pub fn stats(&self) -> ReorgStats {
        *self.stats.lock()
    }

    /// The reorganizer's lock-owner id.
    pub fn owner(&self) -> OwnerId {
        self.owner
    }

    pub(crate) fn db_handle(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    pub(crate) fn config(&self) -> &ReorgConfig {
        &self.cfg
    }

    pub(crate) fn check_fail(&self, site: FailSite) -> CoreResult<()> {
        match &self.fail {
            Some(fp) => fp.check(site),
            None => Ok(()),
        }
    }

    fn next_unit_id(&self) -> UnitId {
        UnitId(self.next_unit.fetch_add(1, Ordering::Relaxed))
    }

    /// Inspect the tree and run only the passes the trigger calls for.
    /// Returns which passes ran.
    pub fn run_if_needed(&self, trigger: ReorgTrigger) -> CoreResult<ReorgDecision> {
        let stats = self.db.tree().stats()?;
        let mut decision = ReorgDecision::default();
        if stats.leaf_pages == 0 {
            return Ok(decision);
        }
        if stats.avg_leaf_fill < trigger.min_fill {
            self.pass1_compact()?;
            decision.compacted = true;
        }
        let stats = self.db.tree().stats()?;
        let disorder = stats.leaf_discontinuities() as f64 / (stats.leaf_pages.max(2) - 1) as f64;
        if stats.leaf_pages >= trigger.min_leaves_for_swap && disorder > trigger.max_disorder {
            self.pass2_swap_move()?;
            decision.swapped = true;
        }
        if trigger.shrink {
            // Worth shrinking when the rebuilt upper level would be at
            // least one level flatter: compare the current height with the
            // height a bottom-up build at node_fill would produce.
            let stats = self.db.tree().stats()?;
            let per_page =
                ((obr_btree::node::NODE_CAPACITY as f64 * self.cfg.node_fill) as usize).max(2);
            let mut pages = stats.leaf_pages;
            let mut ideal_height = 0u8;
            while pages > 1 {
                pages = pages.div_ceil(per_page);
                ideal_height += 1;
            }
            if stats.height > ideal_height {
                self.pass3_shrink()?;
                decision.shrunk = true;
            }
        }
        Ok(decision)
    }

    /// Run all configured passes.
    pub fn run(&self) -> CoreResult<ReorgStats> {
        self.pass1_compact()?;
        if self.cfg.swap_pass {
            self.pass2_swap_move()?;
        }
        if self.cfg.shrink_pass {
            self.pass3_shrink()?;
        }
        Ok(self.stats())
    }

    // ------------------------------------------------------------------
    // Pass 1: compact leaves (Figure 2).
    // ------------------------------------------------------------------

    /// Pass 1: compact groups of same-parent leaves to the target fill.
    /// Restartable: begins after LK, the largest key of the last finished
    /// unit (§5). On successful completion LK is cleared, so the *next*
    /// reorganization sweeps the whole tree again.
    pub fn pass1_compact(&self) -> CoreResult<()> {
        let units_before = self.db.core_metrics().units_completed.get();
        self.db.tracer().emit(TraceKind::PassEnter, 0, 1, 0, 0, 0);
        self.pass1_compact_inner()?;
        self.db.reorg_table().clear_lk();
        let units = self.db.core_metrics().units_completed.get() - units_before;
        self.db
            .tracer()
            .emit(TraceKind::PassExit, 0, 1, 0, units, 0);
        Ok(())
    }

    fn pass1_compact_inner(&self) -> CoreResult<()> {
        let tree = self.db.tree();
        let mut cur_key = self
            .db
            .reorg_table()
            .lk()
            .map(|k| k.saturating_add(1))
            .unwrap_or(0);
        // Largest finished leaf page id L (§6.1): new pages always land
        // after it, so compacted data migrates toward the start of the leaf
        // region.
        let mut largest_done: Option<PageId> = None;
        let budget = (LEAF_BODY as f64 * self.cfg.target_fill) as usize;
        loop {
            let (_, height) = tree.anchor()?;
            if height == 0 {
                return Ok(()); // a root leaf has nothing to compact
            }
            // Snapshot the base page and its candidate entries.
            let Some((base, group, group_bytes, last_key)) = self.plan_group(cur_key, budget)?
            else {
                return Ok(()); // past the last key: pass 1 done
            };
            if group.len() < 2 {
                // A single leaf is as compact as the same-parent constraint
                // allows; pass 2 may still move it.
                let next = match last_key {
                    Some(k) => k.saturating_add(1),
                    None => return Ok(()),
                };
                if next <= cur_key {
                    return Ok(()); // frontier cannot advance: done
                }
                cur_key = next;
                continue;
            }
            let first_leaf = group[0].1;
            let dest = match self.find_free_space(largest_done, first_leaf, group_bytes) {
                Some(empty) => empty,
                None => first_leaf,
            };
            let largest_key = match self.run_unit_with_retries(base, &group, dest) {
                Ok(k) => k,
                Err(e) => {
                    // Return the reserved empty page on give-up; skip for
                    // injected crashes (which model power loss, where the
                    // page may already hold moved records on disk).
                    if dest != first_leaf && !matches!(e, CoreError::InjectedCrash(_)) {
                        self.db.fsm().free(dest);
                    }
                    return Err(e);
                }
            };
            largest_done = Some(match largest_done {
                Some(l) => l.max(dest),
                None => dest,
            });
            let next = largest_key.saturating_add(1);
            if next <= cur_key {
                return Ok(()); // frontier cannot advance: done
            }
            cur_key = next;
        }
    }

    /// `Find-Free-Space` (§6.1 / Figure 2) under the configured policy.
    /// Returns a *reserved* empty page, or `None` for in-place compaction.
    fn find_free_space(
        &self,
        largest_done: Option<PageId>,
        current: PageId,
        _bytes: usize,
    ) -> Option<PageId> {
        let fsm = self.db.fsm();
        match self.cfg.placement {
            PlacementPolicy::InPlaceOnly => None,
            PlacementPolicy::Heuristic => {
                // The open interval starts after the largest finished leaf,
                // but never below the leaf region (§6 two-region layout):
                // placing a leaf among the internal pages would undo the
                // ordering the heuristic exists to create.
                let floor = PageId(fsm.leaf_boundary().0.saturating_sub(1));
                let after = largest_done.unwrap_or(floor).max(floor);
                fsm.allocate_in(after, current)
            }
            PlacementPolicy::FirstFree => fsm.allocate(),
            PlacementPolicy::Random(_) => {
                let free = fsm.free_pages();
                if free.is_empty() {
                    return None;
                }
                let mut rng = self.rng.lock();
                *rng ^= *rng << 13;
                *rng ^= *rng >> 7;
                *rng ^= *rng << 17;
                let pick = free[(*rng as usize) % free.len()];
                fsm.allocate_specific(pick).then_some(pick)
            }
        }
    }

    /// Choose the next group of same-parent leaves starting at `cur_key`.
    /// Returns `(base, [(entry_key, leaf)], total_bytes, last_record_key)`.
    fn plan_group(&self, cur_key: u64, budget: usize) -> CoreResult<Option<PlannedGroup>> {
        let tree = self.db.tree();
        let pool = self.db.pool();
        // Descend for cur_key; if this base has no entry at/after cur_key,
        // hop to the next base page by probing with the base's largest key.
        let mut probe = cur_key;
        for _ in 0..1_000_000 {
            let path = tree.path_for(probe)?;
            if path.len() < 2 {
                return Ok(None);
            }
            let base = path[path.len() - 2];
            let entries = tree.base_entries(base)?;
            // Candidate entries: those covering keys >= cur_key. An entry
            // covers cur_key if its successor's key > cur_key.
            let mut candidates: Vec<(u64, PageId)> = Vec::new();
            for (i, &(k, leaf)) in entries.iter().enumerate() {
                let next_key = entries.get(i + 1).map(|e| e.0);
                let covers_future = next_key.map(|nk| nk > cur_key).unwrap_or(true);
                if k >= cur_key || covers_future {
                    candidates.push((k, leaf));
                }
            }
            if candidates.is_empty() {
                // cur_key is past this base's range; probe the next base.
                let Some(&(last_key, _)) = entries.last() else {
                    return Ok(None);
                };
                let (_, tree_last) = self.tree_key_bounds()?;
                if probe >= tree_last {
                    return Ok(None);
                }
                probe = last_key.max(probe).saturating_add(1);
                continue;
            }
            // Greedily take leaves while they fit the byte budget.
            let mut group = Vec::new();
            let mut bytes = 0usize;
            let mut last_rec_key: Option<u64> = None;
            for (k, leaf) in candidates {
                let g = pool.fetch(leaf)?;
                let page = g.read();
                if page.page_type() != Some(PageType::Leaf) {
                    continue;
                }
                let r = LeafRef::new(&page);
                // A leaf whose records all precede the frontier was already
                // handled by an earlier unit (e.g. it *is* a previous dest).
                match r.last_key() {
                    Some(last) if last >= cur_key => {}
                    _ => continue,
                }
                let used = r.used_bytes();
                // Greedy fill: keep adding while below the f2 budget and the
                // group still fits one page (slight overshoot of f2 beats
                // the quantization undershoot).
                if !group.is_empty() && (bytes >= budget || bytes + used > LEAF_BODY) {
                    break;
                }
                if group.is_empty() && used >= budget {
                    // Already at/above target fill: nothing to gain.
                    return Ok(Some((base, vec![(k, leaf)], used, r.last_key())));
                }
                bytes += used;
                if let Some(lk) = r.last_key() {
                    last_rec_key = Some(lk);
                }
                group.push((k, leaf));
            }
            if group.is_empty() {
                // Everything under this base precedes the frontier: hop to
                // the next base page (or finish).
                let Some(&(last_key, _)) = entries.last() else {
                    return Ok(None);
                };
                let (_, tree_last) = self.tree_key_bounds()?;
                if cur_key > tree_last {
                    return Ok(None);
                }
                probe = last_key.max(probe).saturating_add(1);
                continue;
            }
            return Ok(Some((base, group, bytes, last_rec_key)));
        }
        Err(CoreError::TooManyRetries("plan_group probing".into()))
    }

    fn tree_key_bounds(&self) -> CoreResult<(u64, u64)> {
        let tree = self.db.tree();
        let leaves = tree.leaves_in_key_order()?;
        let pool = self.db.pool();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for l in leaves {
            let g = pool.fetch(l)?;
            let page = g.read();
            if page.page_type() != Some(PageType::Leaf) {
                continue;
            }
            let r = LeafRef::new(&page);
            if let (Some(f), Some(la)) = (r.first_key(), r.last_key()) {
                lo = lo.min(f);
                hi = hi.max(la);
            }
        }
        Ok((lo, hi))
    }

    fn run_unit_with_retries(
        &self,
        base: PageId,
        group: &[(u64, PageId)],
        dest: PageId,
    ) -> CoreResult<u64> {
        let mut attempt = 0;
        loop {
            match self.compaction_unit(base, group, dest) {
                Ok(k) => return Ok(k),
                Err(CoreError::Lock(LockError::Deadlock))
                | Err(CoreError::Lock(LockError::Timeout)) => {
                    attempt += 1;
                    self.stats.lock().deadlock_retries += 1;
                    self.db.core_metrics().deadlock_retries.inc();
                    self.db.locks().release_all(self.owner);
                    if attempt > self.cfg.max_unit_retries {
                        return Err(CoreError::TooManyRetries(format!(
                            "unit on base {base} after {attempt} deadlocks"
                        )));
                    }
                    // The reorganizer is always the victim (§4.1); back off
                    // so user transactions can drain before the retry.
                    std::thread::sleep(std::time::Duration::from_millis(2 * attempt as u64));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Lock (X) the side-pointer neighbours of `[first..last]` and verify
    /// they did not change between the read and the lock grant (a
    /// concurrent split can otherwise slip a new leaf in between). Pages in
    /// `skip` (the unit's own leaves, already RX-locked) are not locked;
    /// pages recorded in `held` stay locked across retries.
    fn lock_chain_neighbours(
        &self,
        first: PageId,
        last: PageId,
        skip: &[PageId],
        held: &mut Vec<PageId>,
    ) -> CoreResult<(PageId, PageId)> {
        let locks = self.db.locks();
        let owner = self.owner;
        for _ in 0..1000 {
            let (l, r) = self.chain_neighbours(first, last)?;
            let mut this_round: Vec<PageId> = Vec::new();
            for n in [l, r] {
                if n.is_valid() && !skip.contains(&n) && !held.contains(&n) {
                    locks.lock(owner, ResourceId::Page(n.0), LockMode::X)?;
                    this_round.push(n);
                }
            }
            let (l2, r2) = self.chain_neighbours(first, last)?;
            if (l2, r2) == (l, r) {
                held.extend(this_round);
                return Ok((l, r));
            }
            for n in this_round {
                locks.unlock(owner, ResourceId::Page(n.0));
            }
        }
        Err(CoreError::TooManyRetries(
            "chain neighbours would not stabilize".into(),
        ))
    }

    /// Neighbours of the unit in the side-pointer chain: the leaf left of
    /// `first` and the leaf right of `last`.
    fn chain_neighbours(&self, first: PageId, last: PageId) -> CoreResult<(PageId, PageId)> {
        let pool = self.db.pool();
        let left = {
            let g = pool.fetch(first)?;
            let page = g.read();
            page.left_sibling()
        };
        let right = {
            let g = pool.fetch(last)?;
            let page = g.read();
            page.right_sibling()
        };
        Ok((left, right))
    }

    /// One pass-1 reorganization unit: compact `group` (children of `base`,
    /// in key order) into `dest`. `dest` is either `group[0].1` (in-place)
    /// or a reserved empty page (copy-and-switch). Returns the largest key
    /// processed.
    fn compaction_unit(
        &self,
        base: PageId,
        group: &[(u64, PageId)],
        dest: PageId,
    ) -> CoreResult<u64> {
        let db = &self.db;
        let tree = db.tree();
        let locks = db.locks();
        let owner = self.owner;
        let in_place = group.iter().any(|&(_, l)| l == dest);
        let kind = if in_place {
            ReorgKind::Compact
        } else {
            ReorgKind::Move
        };
        // --- Locking (§4.1.1), all before any record moves. ---
        let gen = tree.generation()?;
        locks.lock(owner, ResourceId::Tree(gen), LockMode::IX)?;
        locks.lock(owner, ResourceId::Page(base.0), LockMode::S)?;
        locks.lock(owner, ResourceId::Page(base.0), LockMode::R)?;
        for &(_, leaf) in group {
            locks.lock(owner, ResourceId::Page(leaf.0), LockMode::RX)?;
        }
        if !in_place {
            locks.lock(owner, ResourceId::Page(dest.0), LockMode::RX)?;
        }
        // Re-measure under RX (updaters are now blocked from these leaves):
        // concurrent inserts since planning may have grown the group past
        // one page, in which case the tail of the group is dropped (those
        // leaves are simply re-planned by the next unit).
        let mut trimmed: Vec<(u64, PageId)> = Vec::new();
        {
            let pool = db.pool();
            let mut bytes = 0usize;
            for &(k, leaf) in group {
                let usable = {
                    let g = pool.fetch(leaf)?;
                    let page = g.read();
                    if page.page_type() == Some(PageType::Leaf) {
                        Some(LeafRef::new(&page).used_bytes())
                    } else {
                        None // deallocated since planning
                    }
                };
                match usable {
                    Some(used) if trimmed.is_empty() || bytes + used <= LEAF_BODY => {
                        bytes += used;
                        trimmed.push((k, leaf));
                    }
                    _ => {
                        locks.unlock(owner, ResourceId::Page(leaf.0));
                    }
                }
            }
        }
        if trimmed.len() < 2 {
            // Nothing left worth compacting under this parent right now.
            let last = trimmed.first().map(|&(_, l)| l);
            let largest = match last {
                Some(l) => {
                    let g = db.pool().fetch(l)?;
                    let page = g.read();
                    if page.page_type() == Some(PageType::Leaf) {
                        LeafRef::new(&page).last_key().unwrap_or(0)
                    } else {
                        0
                    }
                }
                None => 0,
            };
            locks.release_all(owner);
            if !in_place {
                db.fsm().free(dest); // return the reserved empty page
            }
            return Ok(largest.max(group.iter().map(|&(k, _)| k).max().unwrap_or(0)));
        }
        let group: &[(u64, PageId)] = &trimmed;
        let in_place = group.iter().any(|&(_, l)| l == dest);
        // Side-pointer neighbours (§4.3): may be children of other base
        // pages, so X rather than RX; locked and re-verified so no split
        // slips a leaf in between.
        let mut skip: Vec<PageId> = group.iter().map(|&(_, l)| l).collect();
        skip.push(dest);
        let mut held_neighbours: Vec<PageId> = Vec::new();
        let (left_n, right_n) = self.lock_chain_neighbours(
            group[0].1,
            group[group.len() - 1].1,
            &skip,
            &mut held_neighbours,
        )?;
        // --- BEGIN (only after all locks are held, §5). ---
        let unit = self.next_unit_id();
        let mut leaf_pages: Vec<PageId> = group.iter().map(|&(_, l)| l).collect();
        if !in_place {
            leaf_pages.push(dest); // convention: Move units list dest last
        }
        let begin_lsn = db.log().append(&LogRecord::ReorgBegin {
            unit,
            kind,
            base_pages: vec![base],
            leaf_pages,
        });
        db.reorg_table().begin_unit(begin_lsn);
        db.core_metrics().units_started.inc();
        db.tracer().emit(
            TraceKind::UnitBegin,
            unit.0,
            1,
            u64::from(base.0),
            if in_place { 0 } else { u64::from(dest.0) },
            group.len() as u64,
        );
        self.check_fail(FailSite::AfterUnitBegin)?;
        // --- Move records (under the tree's SMO guard). ---
        let mut journal: Vec<MoveJournal> = Vec::new();
        let mut largest_key = 0u64;
        let move_result: CoreResult<()> = (|| {
            let _g = tree.smo_guard();
            let pool = db.pool();
            if !in_place {
                // Initialize the destination as a fresh leaf.
                let dg = pool.fetch_new(dest)?;
                let mut dpage = dg.write();
                LeafView::init(&mut dpage);
                dpage.set_low_mark(group[0].0);
            }
            let mut first_move = true;
            for &(_, org) in group {
                if org == dest {
                    let g = pool.fetch(org)?;
                    let page = g.read();
                    if let Some(k) = LeafRef::new(&page).last_key() {
                        largest_key = largest_key.max(k);
                    }
                    continue;
                }
                let og = pool.fetch(org)?;
                let dg = pool.fetch(dest)?;
                let mut opage = og.write();
                let mut dpage = dg.write();
                let records = LeafRef::new(&opage).records();
                if let Some((k, _)) = records.last() {
                    largest_key = largest_key.max(*k);
                }
                let payload = match self.cfg.log_strategy {
                    LogStrategy::KeysOnly => {
                        MovePayload::Keys(records.iter().map(|(k, _)| *k).collect())
                    }
                    LogStrategy::FullRecords => MovePayload::Records(records.clone()),
                };
                let prev = db.reorg_table().recent_lsn();
                let lsn = db.log().append(&LogRecord::ReorgMove {
                    unit,
                    org,
                    dest,
                    payload,
                    prev_lsn: prev,
                });
                db.reorg_table().advance(lsn);
                {
                    let mut dleaf = LeafView::new(&mut dpage);
                    dleaf.extend(&records)?;
                }
                {
                    let mut oleaf = LeafView::new(&mut opage);
                    oleaf.take_all();
                }
                opage.set_lsn(lsn);
                dpage.set_lsn(lsn);
                if self.cfg.log_strategy == LogStrategy::KeysOnly {
                    // Careful writing: org may not reach disk before dest.
                    pool.add_write_dependency(org, dest);
                }
                self.stats.lock().records_moved += records.len() as u64;
                db.core_metrics().records_moved.add(records.len() as u64);
                db.tracer().emit(
                    TraceKind::UnitMove,
                    unit.0,
                    1,
                    u64::from(org.0),
                    u64::from(dest.0),
                    records.len() as u64,
                );
                journal.push(MoveJournal { org, dest, records });
                if first_move {
                    first_move = false;
                    self.check_fail(FailSite::AfterFirstMove)?;
                }
            }
            // Side pointers around the new chain position of dest.
            self.fix_chain_after_compact(unit, group, dest, left_n, right_n)?;
            Ok(())
        })();
        if let Err(e) = move_result {
            if matches!(e, CoreError::InjectedCrash(_)) {
                return Err(e); // the "crash" leaves everything in place
            }
            self.undo_moves(unit, &journal)?;
            self.close_undone_unit(unit);
            return Err(e);
        }
        self.check_fail(FailSite::BeforeModify)?;
        // --- Upgrade the base lock to X for the short MODIFY (§4.1.1). ---
        if let Err(e) = locks.lock(owner, ResourceId::Page(base.0), LockMode::X) {
            // §5.2: deadlock after records moved — undo the moves and
            // restore the side-pointer chain through the group, all before
            // END so every SIDEPTR stays inside the unit's chain.
            self.undo_moves(unit, &journal)?;
            let mut prev = left_n;
            for &(_, leaf) in group {
                self.stitch(unit, prev, leaf)?;
                prev = leaf;
            }
            self.stitch(unit, prev, right_n)?;
            self.close_undone_unit(unit);
            return Err(e.into());
        }
        {
            let _g = tree.smo_guard();
            let pool = db.pool();
            let bg = pool.fetch(base)?;
            let mut bpage = bg.write();
            // Derive the MODIFY from the live base contents: remove every
            // entry still pointing at an emptied source, register dest under
            // the smallest of those keys unless it is already present.
            let entries = NodeRef::new(&bpage).entries();
            let sources: Vec<PageId> = group
                .iter()
                .map(|&(_, l)| l)
                .filter(|&l| l != dest)
                .collect();
            let old_entries: Vec<(u64, PageId)> = entries
                .iter()
                .copied()
                .filter(|(_, c)| sources.contains(c))
                .collect();
            let has_dest = entries.iter().any(|(_, c)| *c == dest);
            let entry_key = old_entries
                .iter()
                .map(|(k, _)| *k)
                .min()
                .unwrap_or(group[0].0);
            let new_entries = if has_dest {
                Vec::new()
            } else {
                vec![(entry_key, dest)]
            };
            let prev = db.reorg_table().recent_lsn();
            let lsn = db.log().append(&LogRecord::ReorgModify {
                unit,
                base_page: base,
                old_entries: old_entries.clone(),
                new_entries: new_entries.clone(),
                prev_lsn: prev,
            });
            db.reorg_table().advance(lsn);
            let mut node = NodeView::new(&mut bpage);
            for (k, _) in &old_entries {
                node.remove_entry(*k);
            }
            for (k, c) in &new_entries {
                node.insert_entry(*k, *c)
                    .map_err(|e| CoreError::Recovery(format!("MODIFY insert failed: {e}")))?;
            }
            bpage.set_lsn(lsn);
            db.tracer().emit(
                TraceKind::UnitModify,
                unit.0,
                1,
                u64::from(base.0),
                old_entries.len() as u64,
                new_entries.len() as u64,
            );
        }
        self.check_fail(FailSite::BeforeEnd)?;
        // --- Deallocate emptied sources (careful writing: dest first). ---
        let pool = db.pool();
        pool.flush_page(dest)?;
        let mut freed = 0;
        for &(_, org) in group {
            if org != dest {
                pool.discard(org);
                db.fsm().free(org);
                freed += 1;
            }
        }
        // --- END. ---
        #[cfg(debug_assertions)]
        self.debug_assert_unit_outcome(&[base], &[dest]);
        db.log().append(&LogRecord::ReorgEnd { unit, largest_key });
        db.reorg_table().finish_unit(largest_key);
        locks.release_all(owner);
        {
            let mut st = self.stats.lock();
            st.units += 1;
            st.pages_freed += freed;
            if in_place {
                st.inplace_units += 1;
            } else {
                st.copy_switch_units += 1;
            }
        }
        let cm = db.core_metrics();
        cm.units_completed.inc();
        cm.pages_freed.add(freed);
        if in_place {
            cm.units_inplace.inc();
        } else {
            cm.units_copy_switch.inc();
        }
        db.tracer().emit(
            TraceKind::UnitEnd,
            unit.0,
            1,
            u64::from(base.0),
            largest_key,
            freed,
        );
        Ok(largest_key)
    }

    /// Debug-build invariant hook, called at a unit boundary: END is about
    /// to be logged and every unit lock is still held, so the pages the
    /// unit rewrote are stable. Each base page must hold a valid sorted
    /// entry list and each surviving leaf a valid sorted record list —
    /// the same local invariants `obr-check`'s fsck verifies offline.
    /// Release builds compile this away.
    #[cfg(debug_assertions)]
    fn debug_assert_unit_outcome(&self, bases: &[PageId], leaves: &[PageId]) {
        let pool = self.db.pool();
        for &id in bases {
            let g = pool.fetch(id).expect("unit base page unreadable at END");
            let mut page = g.read().clone();
            NodeView::new(&mut page)
                .validate()
                .expect("reorganization unit left an invalid base page");
        }
        for &id in leaves {
            let g = pool.fetch(id).expect("unit leaf unreadable at END");
            let mut page = g.read().clone();
            LeafView::new(&mut page)
                .validate()
                .expect("reorganization unit left an invalid leaf");
        }
    }

    /// Stitch the side-pointer chain after compaction: `left_n <-> dest <->
    /// right_n`, logging one SIDEPTR record per changed page.
    fn fix_chain_after_compact(
        &self,
        unit: UnitId,
        group: &[(u64, PageId)],
        dest: PageId,
        left_n: PageId,
        right_n: PageId,
    ) -> CoreResult<()> {
        let db = &self.db;
        let pool = db.pool();
        let log_side =
            |page: PageId, old: (PageId, PageId), new: (PageId, PageId)| -> CoreResult<Lsn> {
                let prev = db.reorg_table().recent_lsn();
                let lsn = db.log().append(&LogRecord::ReorgSidePtr {
                    unit,
                    page,
                    old_left: old.0,
                    old_right: old.1,
                    new_left: new.0,
                    new_right: new.1,
                    prev_lsn: prev,
                });
                db.reorg_table().advance(lsn);
                Ok(lsn)
            };
        {
            let dg = pool.fetch(dest)?;
            let mut dpage = dg.write();
            let old = (dpage.left_sibling(), dpage.right_sibling());
            let new = (left_n, right_n);
            if old != new {
                let lsn = log_side(dest, old, new)?;
                dpage.set_left_sibling(left_n);
                dpage.set_right_sibling(right_n);
                dpage.set_lsn(lsn);
            }
        }
        if left_n.is_valid() {
            let g = pool.fetch(left_n)?;
            let mut page = g.write();
            let old = (page.left_sibling(), page.right_sibling());
            if old.1 != dest {
                let lsn = log_side(left_n, old, (old.0, dest))?;
                page.set_right_sibling(dest);
                page.set_lsn(lsn);
            }
        }
        if right_n.is_valid() {
            let g = pool.fetch(right_n)?;
            let mut page = g.write();
            let old = (page.left_sibling(), page.right_sibling());
            if old.0 != dest {
                let lsn = log_side(right_n, old, (dest, old.1))?;
                page.set_left_sibling(dest);
                page.set_lsn(lsn);
            }
        }
        let _ = group;
        Ok(())
    }

    /// Point `left.right = right` and `right.left = left` (when valid),
    /// logging SIDEPTR records — chain restoration after an undo.
    fn stitch(&self, unit: UnitId, left: PageId, right: PageId) -> CoreResult<()> {
        let db = &self.db;
        let pool = db.pool();
        if left.is_valid() {
            let g = pool.fetch(left)?;
            let mut page = g.write();
            let old = (page.left_sibling(), page.right_sibling());
            if old.1 != right {
                let prev = db.reorg_table().recent_lsn();
                let lsn = db.log().append(&LogRecord::ReorgSidePtr {
                    unit,
                    page: left,
                    old_left: old.0,
                    old_right: old.1,
                    new_left: old.0,
                    new_right: right,
                    prev_lsn: prev,
                });
                db.reorg_table().advance(lsn);
                page.set_right_sibling(right);
                page.set_lsn(lsn);
            }
        }
        if right.is_valid() {
            let g = pool.fetch(right)?;
            let mut page = g.write();
            let old = (page.left_sibling(), page.right_sibling());
            if old.0 != left {
                let prev = db.reorg_table().recent_lsn();
                let lsn = db.log().append(&LogRecord::ReorgSidePtr {
                    unit,
                    page: right,
                    old_left: old.0,
                    old_right: old.1,
                    new_left: left,
                    new_right: old.1,
                    prev_lsn: prev,
                });
                db.reorg_table().advance(lsn);
                page.set_left_sibling(left);
                page.set_lsn(lsn);
            }
        }
        Ok(())
    }

    /// §5.2: undo a unit's moves via compensating MOVE records. The unit
    /// stays open so callers can log chain repairs (SIDEPTR) inside it;
    /// follow with [`Self::close_undone_unit`].
    fn undo_moves(&self, unit: UnitId, journal: &[MoveJournal]) -> CoreResult<()> {
        let db = &self.db;
        let tree = db.tree();
        let _g = tree.smo_guard();
        let pool = db.pool();
        for m in journal.iter().rev() {
            let og = pool.fetch(m.org)?;
            let dg = pool.fetch(m.dest)?;
            let mut opage = og.write();
            let mut dpage = dg.write();
            let prev = db.reorg_table().recent_lsn();
            let lsn = db.log().append(&LogRecord::ReorgMove {
                unit,
                org: m.dest,
                dest: m.org,
                payload: MovePayload::Records(m.records.clone()),
                prev_lsn: prev,
            });
            db.reorg_table().advance(lsn);
            {
                let mut dleaf = LeafView::new(&mut dpage);
                for (k, _) in &m.records {
                    dleaf.remove(*k);
                }
            }
            {
                let mut oleaf = LeafView::new(&mut opage);
                for (k, v) in &m.records {
                    oleaf.upsert(k.to_owned(), v)?;
                }
            }
            opage.set_lsn(lsn);
            dpage.set_lsn(lsn);
        }
        Ok(())
    }

    /// END an undone unit: it completed with net-zero effect; largest_key 0
    /// cannot regress LK (finish keeps the max).
    fn close_undone_unit(&self, unit: UnitId) {
        self.db.log().append(&LogRecord::ReorgEnd {
            unit,
            largest_key: 0,
        });
        self.db.reorg_table().abandon_unit();
        self.stats.lock().units_undone += 1;
        self.db.core_metrics().units_undone.inc();
        self.db
            .tracer()
            .emit(TraceKind::UnitUndo, unit.0, 0, 0, 0, 0);
    }

    // ------------------------------------------------------------------
    // Pass 2: Swapping-Moving (§6, Figure 2).
    // ------------------------------------------------------------------

    /// Pass 2: place leaves contiguously in key order, preferring moves to
    /// empty pages over swaps.
    pub fn pass2_swap_move(&self) -> CoreResult<()> {
        let units_before = self.db.core_metrics().units_completed.get();
        self.db.tracer().emit(TraceKind::PassEnter, 0, 2, 0, 0, 0);
        self.pass2_swap_move_inner()?;
        let units = self.db.core_metrics().units_completed.get() - units_before;
        self.db
            .tracer()
            .emit(TraceKind::PassExit, 0, 2, 0, units, 0);
        Ok(())
    }

    fn pass2_swap_move_inner(&self) -> CoreResult<()> {
        let tree = self.db.tree();
        let fsm = self.db.fsm();
        let mut leaves = tree.leaves_in_key_order()?;
        if leaves.is_empty() {
            return Ok(());
        }
        // Target region: the configured leaf region (§6 two-region layout)
        // or, without one, the lowest current leaf position.
        let boundary = fsm.leaf_boundary();
        let start = if boundary.0 > 0 {
            boundary.0
        } else {
            leaves.iter().min().copied().unwrap_or(PageId(0)).0
        };
        for i in 0..leaves.len() {
            let target = PageId(start + i as u32);
            let leaf = leaves[i];
            if leaf == target {
                continue;
            }
            if fsm.allocate_specific(target) {
                match self.move_unit_with_retries(leaf, target) {
                    Ok(()) => leaves[i] = target,
                    Err(CoreError::TooManyRetries(_)) => {
                        // Leave this leaf where it is; §3 allows "not
                        // necessarily a perfectly ordered" result.
                        fsm.free(target);
                        self.stats.lock().skipped_placements += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            } else {
                // Occupied: swap if it holds another leaf of this tree.
                let occupant_is_leaf = {
                    let g = self.db.pool().fetch(target)?;
                    let page = g.read();
                    page.page_type() == Some(PageType::Leaf)
                };
                let occupied_by_ours = leaves.iter().position(|&l| l == target);
                match (occupant_is_leaf, occupied_by_ours) {
                    (true, Some(j)) if j > i => match self.swap_unit_with_retries(leaf, target) {
                        Ok(()) => {
                            leaves[j] = leaf;
                            leaves[i] = target;
                        }
                        Err(CoreError::TooManyRetries(_)) => {
                            self.stats.lock().skipped_placements += 1;
                            continue;
                        }
                        Err(e) => return Err(e),
                    },
                    _ => {
                        // An internal/meta page sits in the leaf region (or
                        // a foreign leaf): leave this leaf where it is.
                        continue;
                    }
                }
            }
        }
        Ok(())
    }

    fn move_unit_with_retries(&self, src: PageId, target: PageId) -> CoreResult<()> {
        let mut attempt = 0;
        loop {
            match self.move_leaf_unit(src, target) {
                Ok(()) => return Ok(()),
                Err(CoreError::Lock(LockError::Deadlock))
                | Err(CoreError::Lock(LockError::Timeout)) => {
                    attempt += 1;
                    self.stats.lock().deadlock_retries += 1;
                    self.db.core_metrics().deadlock_retries.inc();
                    self.db.locks().release_all(self.owner);
                    if attempt > self.cfg.max_unit_retries {
                        return Err(CoreError::TooManyRetries(format!(
                            "move {src}->{target} after {attempt} deadlocks"
                        )));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2 * attempt as u64));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn swap_unit_with_retries(&self, a: PageId, b: PageId) -> CoreResult<()> {
        let mut attempt = 0;
        loop {
            match self.swap_leaf_unit(a, b) {
                Ok(()) => return Ok(()),
                Err(CoreError::Lock(LockError::Deadlock))
                | Err(CoreError::Lock(LockError::Timeout)) => {
                    attempt += 1;
                    self.stats.lock().deadlock_retries += 1;
                    self.db.core_metrics().deadlock_retries.inc();
                    self.db.locks().release_all(self.owner);
                    if attempt > self.cfg.max_unit_retries {
                        return Err(CoreError::TooManyRetries(format!(
                            "swap {a}<->{b} after {attempt} deadlocks"
                        )));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2 * attempt as u64));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn base_of_leaf(&self, leaf: PageId) -> CoreResult<PageId> {
        let tree = self.db.tree();
        let pool = self.db.pool();
        let key = {
            let g = pool.fetch(leaf)?;
            let page = g.read();
            LeafRef::new(&page).first_key().unwrap_or(page.low_mark())
        };
        let path = tree.path_for(key)?;
        if path.len() < 2 {
            return Err(CoreError::Recovery(format!("leaf {leaf} has no base page")));
        }
        // The descent is by key; verify it actually reached this leaf (the
        // low mark is historical, so a probe may land left of it).
        Ok(path[path.len() - 2])
    }

    /// Pass-2 move: copy one leaf to a reserved empty `target` and repoint
    /// its parent (a `Move` unit, §5).
    fn move_leaf_unit(&self, src: PageId, target: PageId) -> CoreResult<()> {
        let db = &self.db;
        let tree = db.tree();
        let locks = db.locks();
        let owner = self.owner;
        let gen = tree.generation()?;
        let base = self.base_of_leaf(src)?;
        locks.lock(owner, ResourceId::Tree(gen), LockMode::IX)?;
        locks.lock(owner, ResourceId::Page(base.0), LockMode::S)?;
        locks.lock(owner, ResourceId::Page(base.0), LockMode::R)?;
        locks.lock(owner, ResourceId::Page(src.0), LockMode::RX)?;
        locks.lock(owner, ResourceId::Page(target.0), LockMode::RX)?;
        let mut held_neighbours: Vec<PageId> = Vec::new();
        let (left_n, right_n) =
            self.lock_chain_neighbours(src, src, &[src, target], &mut held_neighbours)?;
        let unit = self.next_unit_id();
        let begin_lsn = db.log().append(&LogRecord::ReorgBegin {
            unit,
            kind: ReorgKind::Move,
            base_pages: vec![base],
            leaf_pages: vec![src, target],
        });
        db.reorg_table().begin_unit(begin_lsn);
        db.core_metrics().units_started.inc();
        db.tracer().emit(
            TraceKind::UnitBegin,
            unit.0,
            2,
            u64::from(base.0),
            u64::from(src.0),
            u64::from(target.0),
        );
        self.check_fail(FailSite::AfterUnitBegin)?;
        let largest_key;
        let mut journal: Vec<MoveJournal> = Vec::new();
        {
            let _g = tree.smo_guard();
            let pool = db.pool();
            let sg = pool.fetch(src)?;
            let tg = pool.fetch_new(target)?;
            let mut spage = sg.write();
            let mut tpage = tg.write();
            let records = LeafRef::new(&spage).records();
            largest_key = records.last().map(|(k, _)| *k).unwrap_or(0);
            let payload = match self.cfg.log_strategy {
                LogStrategy::KeysOnly => {
                    MovePayload::Keys(records.iter().map(|(k, _)| *k).collect())
                }
                LogStrategy::FullRecords => MovePayload::Records(records.clone()),
            };
            let prev = db.reorg_table().recent_lsn();
            let lsn = db.log().append(&LogRecord::ReorgMove {
                unit,
                org: src,
                dest: target,
                payload,
                prev_lsn: prev,
            });
            db.reorg_table().advance(lsn);
            let low_mark = spage.low_mark();
            {
                let mut tleaf = LeafView::init(&mut tpage);
                tleaf.extend(&records)?;
                tleaf.page_mut().set_low_mark(low_mark);
            }
            {
                let mut sleaf = LeafView::new(&mut spage);
                sleaf.take_all();
            }
            spage.set_lsn(lsn);
            tpage.set_lsn(lsn);
            if self.cfg.log_strategy == LogStrategy::KeysOnly {
                pool.add_write_dependency(src, target);
            }
            self.stats.lock().records_moved += records.len() as u64;
            db.core_metrics().records_moved.add(records.len() as u64);
            db.tracer().emit(
                TraceKind::Pass2Move,
                unit.0,
                2,
                u64::from(src.0),
                u64::from(target.0),
                records.len() as u64,
            );
            journal.push(MoveJournal {
                org: src,
                dest: target,
                records,
            });
            drop(spage);
            drop(tpage);
            self.fix_chain_after_compact(unit, &[], target, left_n, right_n)?;
        }
        // MODIFY: repoint the parent entry from src to target.
        if let Err(e) = locks.lock(owner, ResourceId::Page(base.0), LockMode::X) {
            // §5.2: deadlock after the records moved — undo the moves and
            // repair the chain before END so the SIDEPTRs stay in-unit.
            self.undo_moves(unit, &journal)?;
            self.fix_chain_after_compact(unit, &[], src, left_n, right_n)?;
            self.close_undone_unit(unit);
            return Err(e.into());
        }
        {
            let _g = tree.smo_guard();
            let pool = db.pool();
            let bg = pool.fetch(base)?;
            let mut bpage = bg.write();
            let entry_key = {
                let node = NodeRef::new(&bpage);
                node.entries()
                    .iter()
                    .find(|(_, c)| *c == src)
                    .map(|(k, _)| *k)
                    .ok_or_else(|| {
                        CoreError::Recovery(format!("leaf {src} not under base {base}"))
                    })?
            };
            let prev = db.reorg_table().recent_lsn();
            let lsn = db.log().append(&LogRecord::ReorgModify {
                unit,
                base_page: base,
                old_entries: vec![(entry_key, src)],
                new_entries: vec![(entry_key, target)],
                prev_lsn: prev,
            });
            db.reorg_table().advance(lsn);
            let mut node = NodeView::new(&mut bpage);
            node.set_child(entry_key, target)
                .map_err(CoreError::Storage)?;
            bpage.set_lsn(lsn);
        }
        self.check_fail(FailSite::BeforeEnd)?;
        let pool = db.pool();
        pool.flush_page(target)?;
        pool.discard(src);
        db.fsm().free(src);
        #[cfg(debug_assertions)]
        self.debug_assert_unit_outcome(&[base], &[target]);
        db.log().append(&LogRecord::ReorgEnd { unit, largest_key });
        db.reorg_table().finish_unit(largest_key);
        locks.release_all(owner);
        {
            let mut st = self.stats.lock();
            st.units += 1;
            st.moves += 1;
            st.pages_freed += 1;
        }
        let cm = db.core_metrics();
        cm.units_completed.inc();
        cm.pass2_moves.inc();
        cm.pages_freed.inc();
        db.tracer().emit(
            TraceKind::UnitEnd,
            unit.0,
            2,
            u64::from(base.0),
            largest_key,
            1,
        );
        Ok(())
    }

    /// Exchange the contents of `a` and `b` under the SMO guard, logging
    /// one full page image, remapping self-referencing side pointers, and
    /// patching the external neighbours. Self-inverse, which is what makes
    /// the §5.2 undo of a swap trivial.
    fn apply_swap(
        &self,
        unit: UnitId,
        a: PageId,
        b: PageId,
        neighbours: [PageId; 4],
    ) -> CoreResult<()> {
        let db = &self.db;
        let tree = db.tree();
        let _g = tree.smo_guard();
        let pool = db.pool();
        let remap = |p: PageId| {
            if p == a {
                b
            } else if p == b {
                a
            } else {
                p
            }
        };
        {
            let ag = pool.fetch(a)?;
            let bg = pool.fetch(b)?;
            let mut apage = ag.write();
            let mut bpage = bg.write();
            let image_a_old = image_of(&apage);
            let prev = db.reorg_table().recent_lsn();
            let lsn = db.log().append(&LogRecord::ReorgSwap {
                unit,
                page_a: a,
                page_b: b,
                image_a_old,
                prev_lsn: prev,
            });
            db.reorg_table().advance(lsn);
            // Exchange the full images (headers — low marks, side pointers —
            // travel with the content), then remap self-references.
            std::mem::swap(apage.bytes_mut(), bpage.bytes_mut());
            for page in [&mut apage, &mut bpage] {
                let (l, r) = (page.left_sibling(), page.right_sibling());
                page.set_left_sibling(remap(l));
                page.set_right_sibling(remap(r));
            }
            apage.set_lsn(lsn);
            bpage.set_lsn(lsn);
            // Careful writing: the unlogged side (b's old image, now in a)
            // must not be overwritten on disk before `a` is durable.
            pool.add_write_dependency(b, a);
        }
        // External neighbours now point at swapped positions. Each is
        // visited once, even when it neighbours both swapped pages.
        let mut seen: Vec<PageId> = Vec::with_capacity(4);
        for n in neighbours {
            if !n.is_valid() || n == a || n == b || seen.contains(&n) {
                continue;
            }
            seen.push(n);
            let g = pool.fetch(n)?;
            let mut page = g.write();
            let old = (page.left_sibling(), page.right_sibling());
            let new = (remap(old.0), remap(old.1));
            if old != new {
                let prev = db.reorg_table().recent_lsn();
                let lsn = db.log().append(&LogRecord::ReorgSidePtr {
                    unit,
                    page: n,
                    old_left: old.0,
                    old_right: old.1,
                    new_left: new.0,
                    new_right: new.1,
                    prev_lsn: prev,
                });
                db.reorg_table().advance(lsn);
                page.set_left_sibling(new.0);
                page.set_right_sibling(new.1);
                page.set_lsn(lsn);
            }
        }
        Ok(())
    }

    /// Pass-2 swap: exchange the contents of two leaves, logging one full
    /// page image (the paper's unavoidable cost, §5) and repointing both
    /// parents.
    fn swap_leaf_unit(&self, a: PageId, b: PageId) -> CoreResult<()> {
        let db = &self.db;
        let tree = db.tree();
        let locks = db.locks();
        let owner = self.owner;
        let gen = tree.generation()?;
        let base_a = self.base_of_leaf(a)?;
        let base_b = self.base_of_leaf(b)?;
        locks.lock(owner, ResourceId::Tree(gen), LockMode::IX)?;
        for base in [base_a, base_b] {
            locks.lock(owner, ResourceId::Page(base.0), LockMode::S)?;
            locks.lock(owner, ResourceId::Page(base.0), LockMode::R)?;
        }
        locks.lock(owner, ResourceId::Page(a.0), LockMode::RX)?;
        locks.lock(owner, ResourceId::Page(b.0), LockMode::RX)?;
        let mut held_neighbours: Vec<PageId> = Vec::new();
        let (a_left, a_right) = self.lock_chain_neighbours(a, a, &[a, b], &mut held_neighbours)?;
        let (b_left, b_right) = self.lock_chain_neighbours(b, b, &[a, b], &mut held_neighbours)?;
        let unit = self.next_unit_id();
        let begin_lsn = db.log().append(&LogRecord::ReorgBegin {
            unit,
            kind: ReorgKind::Swap,
            base_pages: vec![base_a, base_b],
            leaf_pages: vec![a, b],
        });
        db.reorg_table().begin_unit(begin_lsn);
        db.core_metrics().units_started.inc();
        db.tracer().emit(
            TraceKind::UnitBegin,
            unit.0,
            2,
            u64::from(base_a.0),
            u64::from(a.0),
            u64::from(b.0),
        );
        self.check_fail(FailSite::AfterUnitBegin)?;
        self.apply_swap(unit, a, b, [a_left, a_right, b_left, b_right])?;
        db.tracer().emit(
            TraceKind::Pass2Swap,
            unit.0,
            2,
            u64::from(a.0),
            u64::from(b.0),
            0,
        );
        // MODIFY both parents (upgrade R -> X). When the two leaves share a
        // parent, it is updated exactly once.
        let bases: Vec<PageId> = if base_a == base_b {
            vec![base_a]
        } else {
            vec![base_a, base_b]
        };
        let mut upgrade_err = None;
        for &base in &bases {
            if let Err(e) = locks.lock(owner, ResourceId::Page(base.0), LockMode::X) {
                upgrade_err = Some(e);
                break;
            }
        }
        if let Some(e) = upgrade_err {
            // §5.2: deadlock after the contents were exchanged. The swap is
            // self-inverse: apply it again (with fresh log records) to undo,
            // then abandon the unit without advancing LK.
            let (na_l, na_r) = self.chain_neighbours(a, a)?;
            let (nb_l, nb_r) = self.chain_neighbours(b, b)?;
            self.apply_swap(unit, a, b, [na_l, na_r, nb_l, nb_r])?;
            db.log().append(&LogRecord::ReorgEnd {
                unit,
                largest_key: 0,
            });
            db.reorg_table().abandon_unit();
            self.stats.lock().units_undone += 1;
            db.core_metrics().units_undone.inc();
            db.tracer().emit(TraceKind::UnitUndo, unit.0, 2, 0, 0, 0);
            return Err(e.into());
        }
        {
            let _g = tree.smo_guard();
            let pool = db.pool();
            for &base in &bases {
                let bg = pool.fetch(base)?;
                let mut bpage = bg.write();
                let entries = NodeRef::new(&bpage).entries();
                let mut old_entries = Vec::new();
                let mut new_entries = Vec::new();
                for (k, c) in entries {
                    let mapped = if c == a {
                        b
                    } else if c == b {
                        a
                    } else {
                        continue;
                    };
                    old_entries.push((k, c));
                    new_entries.push((k, mapped));
                }
                if old_entries.is_empty() {
                    continue;
                }
                let prev = db.reorg_table().recent_lsn();
                let lsn = db.log().append(&LogRecord::ReorgModify {
                    unit,
                    base_page: base,
                    old_entries: old_entries.clone(),
                    new_entries: new_entries.clone(),
                    prev_lsn: prev,
                });
                db.reorg_table().advance(lsn);
                let mut node = NodeView::new(&mut bpage);
                for ((k, _), (_, c)) in old_entries.iter().zip(new_entries.iter()) {
                    node.set_child(*k, *c).map_err(CoreError::Storage)?;
                }
                bpage.set_lsn(lsn);
            }
        }
        self.check_fail(FailSite::BeforeEnd)?;
        // Make the logged side durable so the careful-writing chain is
        // short-lived, then END.
        db.pool().flush_page(a)?;
        let largest_key = {
            let g = db.pool().fetch(a)?;
            let page = g.read();
            LeafRef::new(&page).last_key().unwrap_or(0)
        };
        #[cfg(debug_assertions)]
        self.debug_assert_unit_outcome(&bases, &[a, b]);
        db.log().append(&LogRecord::ReorgEnd { unit, largest_key });
        db.reorg_table().finish_unit(largest_key);
        locks.release_all(owner);
        {
            let mut st = self.stats.lock();
            st.units += 1;
            st.swaps += 1;
        }
        let cm = db.core_metrics();
        cm.units_completed.inc();
        cm.pass2_swaps.inc();
        db.tracer().emit(
            TraceKind::UnitEnd,
            unit.0,
            2,
            u64::from(base_a.0),
            largest_key,
            0,
        );
        Ok(())
    }
}
