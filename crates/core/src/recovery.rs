//! Crash recovery: ARIES-style redo and transaction undo, plus the paper's
//! **Forward Recovery** (§5.1) and pass-3 resumption (§7.3).
//!
//! Redo starts at the last (sharp) checkpoint and replays every logged
//! action whose page LSN shows it never reached disk. Loser transactions
//! are rolled back logically with compensation records. An interrupted
//! reorganization unit, however, is *not* rolled back: its BEGIN record
//! names the pages involved, the already-logged MOVEs are redone, and the
//! remaining moves / base-page MODIFY / side-pointer repairs are performed
//! forward before a fresh END record closes the unit — "the reorganization
//! unit will be able to finish the work instead of rolling back and wasting
//! the work that has already been done."
//!
//! If pass 3 was in flight, the newest `Pass3Stable` record (after any
//! switch) yields the restart state. The side file is rebuilt by
//! *reconciliation* rather than log replay: the base tree's level-1
//! mappings below the stable frontier are diffed against the partially
//! built new tree's, and one entry is appended per difference — exactly
//! the catch-up work that remains (§7.3). The free-space map rebuild then
//! reclaims new-tree pages allocated after the last force-write.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use obr_btree::{LeafRef, LeafView, NodeRef, NodeView};
use obr_storage::{Lsn, PageId, PageType};
use obr_wal::{LogRecord, MovePayload, Pass3State, ReorgKind, TxnId, UnitId};

use crate::db::Database;
use crate::error::{CoreError, CoreResult};
use crate::pass3::Pass3Observer;
use crate::sidefile::{SideEntry, SideOp, SIDE_FILE_PAGE};

/// What recovery did — the E5 metrics.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Log records scanned in the redo pass.
    pub redo_scanned: usize,
    /// Page actions actually re-applied (page LSN was behind).
    pub redo_applied: usize,
    /// Loser transactions rolled back.
    pub losers_undone: usize,
    /// Compensation records written during undo.
    pub clrs_written: usize,
    /// Incomplete reorganization units finished forward (§5.1).
    pub forward_units_completed: usize,
    /// Records already moved by interrupted units and *kept* — the work a
    /// rollback-based scheme (\[Smi90\]) would have thrown away.
    pub records_preserved: u64,
    /// Pass-3 restart state, when an internal reorganization was in flight.
    pub pass3_resume: Option<Pass3State>,
    /// Side-file entries rebuilt by reconciling the recovered trees.
    pub side_entries_restored: usize,
    /// Pages reclaimed by the free-space-map rebuild.
    pub pages_reclaimed: usize,
}

#[derive(Debug)]
struct UnitInfo {
    unit: UnitId,
    kind: ReorgKind,
    base_pages: Vec<PageId>,
    leaf_pages: Vec<PageId>,
    swap_logged: bool,
}

/// Test-only sabotage switch: when `OBR_BUG_SKIP_SIDE_RESTORE=1`, recovery
/// skips rebuilding the side file instead of reconciling it. This exists
/// solely so the crash-consistency checker can prove it catches the
/// resulting Forward Recovery violations (lost catch-up after a pass-3
/// crash); it is never set outside the checker's own teeth tests.
fn skip_side_restore() -> bool {
    std::env::var_os("OBR_BUG_SKIP_SIDE_RESTORE").is_some_and(|v| v == "1")
}

/// Run full recovery over a freshly [`Database::reopen`]ed engine.
pub fn recover(db: &Arc<Database>) -> CoreResult<RecoveryReport> {
    let mut report = RecoveryReport::default();
    db.core_metrics().recovery_runs.inc();
    db.tracer()
        .emit(obr_obs::TraceKind::RecoveryBegin, 0, 0, 0, 0, 0);
    let log = Arc::clone(db.log());
    // --- Redo start: the last durable (sharp) checkpoint. ---
    let ckpt = log.last_checkpoint()?;
    let mut losers: HashMap<TxnId, Lsn> = HashMap::new();
    let redo_start = match &ckpt {
        Some((lsn, LogRecord::Checkpoint { data })) => {
            db.reorg_table().restore(data.reorg);
            for (t, l) in &data.active_txns {
                losers.insert(*t, *l);
            }
            *lsn
        }
        _ => Lsn(1),
    };
    // --- Redo scan. ---
    let mut open_units: HashMap<UnitId, UnitInfo> = HashMap::new();
    let mut latest_stable: Option<Pass3State> = None;
    let mut switch_seen = false;
    for (lsn, rec) in log.records_from(redo_start)? {
        report.redo_scanned += 1;
        match &rec {
            LogRecord::TxnBegin { txn } => {
                losers.insert(*txn, Lsn::ZERO);
            }
            LogRecord::TxnCommit { txn } | LogRecord::TxnAbort { txn } => {
                losers.remove(txn);
            }
            // Side-file records (page == SIDE_FILE_PAGE) are not replayed:
            // a crash can separate an SMO record from the side entry logged
            // just after it, so the log alone under- or over-states the
            // catch-up work. The side file is instead rebuilt from the
            // recovered trees themselves (see [`rebuild_side_file`]).
            LogRecord::TxnInsert { txn, page, .. } | LogRecord::TxnDelete { txn, page, .. }
                if *page != SIDE_FILE_PAGE =>
            {
                losers.insert(*txn, lsn);
            }
            LogRecord::TxnUpdate { txn, .. } | LogRecord::Clr { txn, .. } => {
                losers.insert(*txn, lsn);
            }
            LogRecord::ReorgBegin {
                unit,
                kind,
                base_pages,
                leaf_pages,
            } => {
                // Thread the reorg state table along the scan so that any
                // records forward recovery appends continue the unit's
                // prev-LSN chain instead of restarting it at zero.
                db.reorg_table().begin_unit(lsn);
                open_units.insert(
                    *unit,
                    UnitInfo {
                        unit: *unit,
                        kind: *kind,
                        base_pages: base_pages.clone(),
                        leaf_pages: leaf_pages.clone(),
                        swap_logged: false,
                    },
                );
            }
            LogRecord::ReorgMove { .. }
            | LogRecord::ReorgModify { .. }
            | LogRecord::ReorgSidePtr { .. } => {
                db.reorg_table().advance(lsn);
            }
            LogRecord::ReorgSwap { unit, .. } => {
                db.reorg_table().advance(lsn);
                if let Some(u) = open_units.get_mut(unit) {
                    u.swap_logged = true;
                }
            }
            LogRecord::ReorgEnd { unit, largest_key } => {
                open_units.remove(unit);
                db.reorg_table().restore(obr_wal::ReorgTableSnapshot {
                    lk: Some(db.reorg_table().lk().unwrap_or(0).max(*largest_key)),
                    begin_lsn: None,
                    recent_lsn: None,
                });
            }
            LogRecord::Pass3Stable { state } => {
                latest_stable = Some(*state);
            }
            LogRecord::Pass3Switch { .. } => {
                switch_seen = true;
                latest_stable = None;
            }
            LogRecord::Checkpoint { data } => {
                db.reorg_table().restore(data.reorg);
            }
            _ => {}
        }
        if redo_one(db, lsn, &rec)? {
            report.redo_applied += 1;
        }
    }
    // --- Undo losers (logical, with CLRs). ---
    let mut loser_list: Vec<(TxnId, Lsn)> = losers.into_iter().collect();
    loser_list.sort();
    for (txn, last) in loser_list {
        undo_txn(db, txn, last, &mut report)?;
    }
    // --- Forward recovery (§5.1). ---
    let mut units: Vec<UnitInfo> = open_units.into_values().collect();
    units.sort_by_key(|u| u.unit);
    for info in units {
        complete_unit(db, &info, &mut report)?;
    }
    // --- Pass-3 restart state (§7.3). ---
    if !switch_seen {
        if let Some(state) = latest_stable {
            rebuild_side_file(db, &state, &mut report)?;
            // Keep capturing base-mapping changes between recovery and the
            // resume call, exactly as a running pass 3 would.
            db.set_current(state.stable_key);
            db.tree()
                .set_observer(Arc::new(Pass3Observer::new(Arc::clone(db))));
            report.pass3_resume = Some(state);
        }
    }
    // --- Free-space map rebuild from reachability. ---
    let mut reachable: HashSet<PageId> = db.tree().reachable_pages()?.into_iter().collect();
    if let Some(state) = &report.pass3_resume {
        if state.new_root.is_valid() {
            collect_new_tree_pages(db, state.new_root, &mut reachable)?;
        }
    }
    let fsm = db.fsm();
    let total = fsm.num_pages();
    for i in 0..total {
        let p = PageId(i);
        if !reachable.contains(&p) {
            fsm.free(p);
            report.pages_reclaimed += 1;
        }
    }
    let cm = db.core_metrics();
    cm.recovery_redo_applied.add(report.redo_applied as u64);
    cm.recovery_losers_undone.add(report.losers_undone as u64);
    cm.recovery_clrs_written.add(report.clrs_written as u64);
    cm.recovery_forward_units
        .add(report.forward_units_completed as u64);
    db.tracer().emit(
        obr_obs::TraceKind::RecoveryEnd,
        0,
        0,
        0,
        report.redo_applied as u64,
        report.forward_units_completed as u64,
    );
    Ok(report)
}

/// Rebuild the side file for a pass-3 resume (§7.3) by *reconciliation*:
/// diff the base tree's level-1 `(low key -> leaf)` mappings below the
/// stable frontier against the partially built new tree's, and append one
/// side entry per difference.
///
/// Replaying the logged side-file records instead would be wrong twice
/// over. A crash can cut the log between an SMO record and the side entry
/// the pass-3 observer appended just after it, so the durable mapping
/// change has no durable side entry (and the converse ordering merely
/// flips the failure: a durable side entry for a mapping change that never
/// happened). And undoing a loser during recovery itself changes base
/// mappings — e.g. re-inserting a key whose leaf was freed-at-empty —
/// after every logged entry was written. The recovered trees are the
/// ground truth; their difference is exactly the catch-up that remains.
fn rebuild_side_file(
    db: &Arc<Database>,
    state: &Pass3State,
    report: &mut RecoveryReport,
) -> CoreResult<()> {
    if skip_side_restore() {
        return Ok(());
    }
    // Entries at or past the frontier live on base pages the resumed read
    // loop will re-read; only the already-read span needs catch-up. (With
    // `STABLE_ALL_READ` the frontier covers every key.)
    let frontier = state.stable_key;
    let (root, _) = db.tree().anchor()?;
    let base = level1_entries(db, root)?;
    let new = if state.new_root.is_valid() {
        level1_entries(db, state.new_root)?
    } else {
        std::collections::BTreeMap::new()
    };
    for (k, c) in base.range(..frontier) {
        if new.get(k) != Some(c) {
            db.side_file().append(
                TxnId::SYSTEM,
                SideEntry {
                    key: *k,
                    op: SideOp::Upsert(*c),
                },
            );
            report.side_entries_restored += 1;
        }
    }
    for k in new.range(..frontier).map(|(k, _)| *k) {
        if !base.contains_key(&k) {
            db.side_file().append(
                TxnId::SYSTEM,
                SideEntry {
                    key: k,
                    op: SideOp::Remove,
                },
            );
            report.side_entries_restored += 1;
        }
    }
    Ok(())
}

/// Collect the `(low key -> leaf)` entries of every level-1 internal page
/// reachable from `root`.
fn level1_entries(
    db: &Arc<Database>,
    root: PageId,
) -> CoreResult<std::collections::BTreeMap<u64, PageId>> {
    let mut out = std::collections::BTreeMap::new();
    let mut seen = HashSet::new();
    let mut stack = vec![root];
    while let Some(p) = stack.pop() {
        if !seen.insert(p) {
            continue;
        }
        let g = db.pool().fetch(p)?;
        let page = g.read();
        if page.page_type() != Some(PageType::Internal) {
            continue;
        }
        if page.level() == 1 {
            for (k, c) in NodeRef::new(&page).entries() {
                out.insert(k, c);
            }
        } else {
            stack.extend(NodeRef::new(&page).children());
        }
    }
    Ok(out)
}

fn collect_new_tree_pages(
    db: &Arc<Database>,
    root: PageId,
    out: &mut HashSet<PageId>,
) -> CoreResult<()> {
    // The partial new tree shares its leaves with the old tree; collect the
    // internal pages reachable from its (stable) root.
    let mut stack = vec![root];
    while let Some(p) = stack.pop() {
        if !out.insert(p) {
            continue;
        }
        let g = db.pool().fetch(p)?;
        let page = g.read();
        if page.page_type() != Some(PageType::Internal) || page.level() <= 1 {
            continue;
        }
        stack.extend(NodeRef::new(&page).children());
    }
    Ok(())
}

/// Apply one log record's redo action. Returns true when something changed.
///
/// Shared with [`crate::replica::Replica`]: log shipping is exactly
/// continuous redo, so the replica applies records with the same
/// page-LSN-gated function restart recovery uses.
// protocol: no-wal redo replays mutations from already-durable log records; re-appending them would double-log
pub(crate) fn redo_one(db: &Arc<Database>, lsn: Lsn, rec: &LogRecord) -> CoreResult<bool> {
    let pool = db.pool();
    let behind = |p: PageId| -> CoreResult<bool> {
        let g = pool.fetch(p)?;
        let page = g.read();
        Ok(page.lsn() < lsn)
    };
    match rec {
        LogRecord::TxnInsert {
            page, key, value, ..
        } if *page != SIDE_FILE_PAGE && behind(*page)? => {
            let g = pool.fetch(*page)?;
            let mut pg = g.write();
            if pg.page_type() == Some(PageType::Leaf) {
                LeafView::new(&mut pg).upsert(*key, value)?;
            }
            pg.set_lsn(lsn);
            return Ok(true);
        }
        LogRecord::TxnDelete { page, key, .. } if *page != SIDE_FILE_PAGE && behind(*page)? => {
            let g = pool.fetch(*page)?;
            let mut pg = g.write();
            if pg.page_type() == Some(PageType::Leaf) {
                LeafView::new(&mut pg).remove(*key);
            }
            pg.set_lsn(lsn);
            return Ok(true);
        }
        LogRecord::TxnUpdate {
            page,
            key,
            new_value,
            ..
        } if behind(*page)? => {
            let g = pool.fetch(*page)?;
            let mut pg = g.write();
            if pg.page_type() == Some(PageType::Leaf) {
                LeafView::new(&mut pg).upsert(*key, new_value)?;
            }
            pg.set_lsn(lsn);
            return Ok(true);
        }
        LogRecord::Clr {
            page,
            reinsert,
            key,
            value,
            ..
        } if behind(*page)? => {
            let g = pool.fetch(*page)?;
            let mut pg = g.write();
            if pg.page_type() == Some(PageType::Leaf) {
                if *reinsert {
                    LeafView::new(&mut pg).upsert(*key, value)?;
                } else {
                    LeafView::new(&mut pg).remove(*key);
                }
            }
            pg.set_lsn(lsn);
            return Ok(true);
        }
        LogRecord::Smo { images, new_anchor } => {
            let mut any = false;
            for (p, image) in images {
                if behind(*p)? {
                    let g = pool.fetch(*p)?;
                    let mut pg = g.write();
                    pg.bytes_mut().copy_from_slice(&image[..]);
                    pg.set_lsn(lsn);
                    any = true;
                }
            }
            if let Some((root, height)) = new_anchor {
                if behind(db.tree().meta_id())? {
                    db.tree().set_anchor(*root, *height, lsn)?;
                    any = true;
                }
            }
            return Ok(any);
        }
        LogRecord::ReorgMove {
            org, dest, payload, ..
        } => {
            return redo_move(db, lsn, *org, *dest, payload);
        }
        LogRecord::ReorgSwap {
            page_a,
            page_b,
            image_a_old,
            ..
        } => {
            return redo_swap(db, lsn, *page_a, *page_b, image_a_old);
        }
        LogRecord::ReorgModify {
            base_page,
            old_entries,
            new_entries,
            ..
        } if behind(*base_page)? => {
            let g = pool.fetch(*base_page)?;
            let mut pg = g.write();
            if pg.page_type() == Some(PageType::Internal) {
                let mut node = NodeView::new(&mut pg);
                for (k, _) in old_entries {
                    node.remove_entry(*k);
                }
                for (k, c) in new_entries {
                    if node.set_child(*k, *c).is_err() {
                        node.insert_entry(*k, *c)?;
                    }
                }
            }
            pg.set_lsn(lsn);
            return Ok(true);
        }
        LogRecord::ReorgSidePtr {
            page,
            new_left,
            new_right,
            ..
        } if behind(*page)? => {
            let g = pool.fetch(*page)?;
            let mut pg = g.write();
            pg.set_left_sibling(*new_left);
            pg.set_right_sibling(*new_right);
            pg.set_lsn(lsn);
            return Ok(true);
        }
        LogRecord::Pass3Switch {
            new_root,
            new_height,
            ..
        } => {
            let meta = db.tree().meta_id();
            if behind(meta)? {
                let old_gen = db.tree().generation()?;
                db.tree().set_anchor(*new_root, *new_height, lsn)?;
                db.tree().set_generation(old_gen + 1)?;
                db.tree().set_reorg_bit(false)?;
                return Ok(true);
            }
        }
        _ => {}
    }
    Ok(false)
}

/// Redo a MOVE: capture values (from the log or, under careful writing,
/// from the still-intact source page), install them in the destination,
/// then remove them from the source.
fn redo_move(
    db: &Arc<Database>,
    lsn: Lsn,
    org: PageId,
    dest: PageId,
    payload: &MovePayload,
) -> CoreResult<bool> {
    let pool = db.pool();
    let (need_org, need_dest) = {
        let og = pool.fetch(org)?;
        let dg = pool.fetch(dest)?;
        let o = og.read();
        let d = dg.read();
        (o.lsn() < lsn, d.lsn() < lsn)
    };
    if !need_org && !need_dest {
        return Ok(false);
    }
    let records: Vec<(u64, Vec<u8>)> = if need_dest {
        match payload {
            MovePayload::Records(rs) => rs.clone(),
            MovePayload::Keys(ks) => {
                // Careful writing guarantees org still holds the bodies.
                if !need_org {
                    return Err(CoreError::Recovery(format!(
                        "careful-writing violation: dest {dest} not durable but org {org} already cleaned"
                    )));
                }
                let og = pool.fetch(org)?;
                let opage = og.read();
                if opage.page_type() != Some(PageType::Leaf) {
                    return Err(CoreError::Recovery(format!(
                        "careful-writing violation: org {org} overwritten before dest {dest} durable"
                    )));
                }
                let leaf = LeafRef::new(&opage);
                let mut rs = Vec::with_capacity(ks.len());
                for k in ks {
                    let v = leaf.get(*k).ok_or_else(|| {
                        CoreError::Recovery(format!(
                            "careful-writing violation: key {k} missing from org {org}"
                        ))
                    })?;
                    rs.push((*k, v));
                }
                rs
            }
        }
    } else {
        Vec::new()
    };
    if need_dest {
        let dg = pool.fetch(dest)?;
        let mut dpage = dg.write();
        if dpage.page_type() != Some(PageType::Leaf) {
            // Crash before the new-place destination was initialized.
            let mut leaf = LeafView::init(&mut dpage);
            if let Some((k, _)) = records.first() {
                leaf.page_mut().set_low_mark(*k);
            }
        }
        let mut leaf = LeafView::new(&mut dpage);
        for (k, v) in &records {
            leaf.upsert(*k, v)?;
        }
        dpage.set_lsn(lsn);
    }
    if need_org {
        let keys = payload.keys();
        let og = pool.fetch(org)?;
        let mut opage = og.write();
        if opage.page_type() == Some(PageType::Leaf) {
            let mut leaf = LeafView::new(&mut opage);
            for k in keys {
                leaf.remove(k);
            }
        }
        opage.set_lsn(lsn);
    }
    Ok(true)
}

/// Redo a swap from its one logged image (§5): `b`'s new content is the
/// logged old image of `a`; `a`'s new content is `b`'s old content, still
/// present because careful writing forbids flushing `b` before `a`.
fn redo_swap(
    db: &Arc<Database>,
    lsn: Lsn,
    a: PageId,
    b: PageId,
    image_a_old: &[u8; obr_storage::PAGE_SIZE],
) -> CoreResult<bool> {
    let pool = db.pool();
    let ag = pool.fetch(a)?;
    let bg = pool.fetch(b)?;
    let mut apage = ag.write();
    let mut bpage = bg.write();
    let need_a = apage.lsn() < lsn;
    let need_b = bpage.lsn() < lsn;
    if !need_a && !need_b {
        return Ok(false);
    }
    if need_a && !need_b {
        return Err(CoreError::Recovery(format!(
            "careful-writing violation: swap target {b} durable before {a}"
        )));
    }
    let remap = |p: PageId| {
        if p == a {
            b
        } else if p == b {
            a
        } else {
            p
        }
    };
    if need_a {
        // b still holds its pre-swap content.
        let b_old = *bpage.bytes();
        apage.bytes_mut().copy_from_slice(&b_old);
        let (l, r) = (apage.left_sibling(), apage.right_sibling());
        apage.set_left_sibling(remap(l));
        apage.set_right_sibling(remap(r));
        apage.set_lsn(lsn);
    }
    if need_b {
        bpage.bytes_mut().copy_from_slice(image_a_old);
        let (l, r) = (bpage.left_sibling(), bpage.right_sibling());
        bpage.set_left_sibling(remap(l));
        bpage.set_right_sibling(remap(r));
        bpage.set_lsn(lsn);
    }
    Ok(true)
}

/// Roll back one loser transaction by walking its prev-LSN chain.
fn undo_txn(
    db: &Arc<Database>,
    txn: TxnId,
    last: Lsn,
    report: &mut RecoveryReport,
) -> CoreResult<()> {
    let tree = db.tree();
    let log = db.log();
    let mut cur = last;
    while cur != Lsn::ZERO {
        let Some(rec) = log.read(cur)? else { break };
        match rec {
            LogRecord::TxnInsert {
                txn: t,
                page,
                key,
                prev_lsn,
                ..
            } if t == txn => {
                if page != SIDE_FILE_PAGE {
                    tree.undo_insert(txn, key, prev_lsn)?;
                    report.clrs_written += 1;
                }
                cur = prev_lsn;
            }
            LogRecord::TxnDelete {
                txn: t,
                page,
                key,
                old_value,
                prev_lsn,
            } if t == txn => {
                if page != SIDE_FILE_PAGE {
                    tree.undo_delete(txn, key, &old_value, prev_lsn)?;
                    report.clrs_written += 1;
                }
                cur = prev_lsn;
            }
            LogRecord::TxnUpdate {
                txn: t,
                key,
                old_value,
                prev_lsn,
                ..
            } if t == txn => {
                tree.undo_update(txn, key, &old_value, prev_lsn)?;
                report.clrs_written += 1;
                cur = prev_lsn;
            }
            LogRecord::Clr {
                txn: t, undo_next, ..
            } if t == txn => {
                cur = undo_next;
            }
            LogRecord::TxnBegin { txn: t } if t == txn => break,
            _ => break,
        }
    }
    log.append(&LogRecord::TxnAbort { txn });
    report.losers_undone += 1;
    Ok(())
}

/// Forward-complete one interrupted reorganization unit (§5.1).
fn complete_unit(
    db: &Arc<Database>,
    info: &UnitInfo,
    report: &mut RecoveryReport,
) -> CoreResult<()> {
    let tree = db.tree();
    let pool = db.pool();
    let mut largest_key = 0u64;
    match info.kind {
        ReorgKind::Compact | ReorgKind::Move => {
            let dest = if info.kind == ReorgKind::Move {
                *info.leaf_pages.last().expect("move unit lists dest")
            } else {
                info.leaf_pages[0]
            };
            let sources: Vec<PageId> = info
                .leaf_pages
                .iter()
                .copied()
                .filter(|&p| p != dest)
                .collect();
            let _g = tree.smo_guard();
            // Count work already durable: records that reached dest.
            {
                let dg = pool.fetch(dest)?;
                let dpage = dg.read();
                if dpage.page_type() == Some(PageType::Leaf) {
                    report.records_preserved += LeafRef::new(&dpage).count() as u64;
                }
            }
            // Finish outstanding moves.
            for org in sources.iter().copied() {
                let records = {
                    let og = pool.fetch(org)?;
                    let opage = og.read();
                    if opage.page_type() != Some(PageType::Leaf) {
                        continue;
                    }
                    LeafRef::new(&opage).records()
                };
                if records.is_empty() {
                    continue;
                }
                let prev = db.reorg_table().recent_lsn();
                let lsn = db.log().append(&LogRecord::ReorgMove {
                    unit: info.unit,
                    org,
                    dest,
                    payload: MovePayload::Records(records.clone()),
                    prev_lsn: prev,
                });
                db.reorg_table().advance(lsn);
                {
                    let dg = pool.fetch(dest)?;
                    let mut dpage = dg.write();
                    if dpage.page_type() != Some(PageType::Leaf) {
                        let mut leaf = LeafView::init(&mut dpage);
                        leaf.page_mut().set_low_mark(records[0].0);
                    }
                    let mut leaf = LeafView::new(&mut dpage);
                    for (k, v) in &records {
                        leaf.upsert(*k, v)?;
                    }
                    dpage.set_lsn(lsn);
                }
                {
                    let og = pool.fetch(org)?;
                    let mut opage = og.write();
                    LeafView::new(&mut opage).take_all();
                    opage.set_lsn(lsn);
                }
            }
            {
                let dg = pool.fetch(dest)?;
                let dpage = dg.read();
                if dpage.page_type() == Some(PageType::Leaf) {
                    if let Some(k) = LeafRef::new(&dpage).last_key() {
                        largest_key = k;
                    }
                }
            }
            // Finish the MODIFY on each base page.
            for &base in &info.base_pages {
                let bg = pool.fetch(base)?;
                let mut bpage = bg.write();
                if bpage.page_type() != Some(PageType::Internal) {
                    continue;
                }
                let entries = NodeRef::new(&bpage).entries();
                let stale: Vec<(u64, PageId)> = entries
                    .iter()
                    .copied()
                    .filter(|(_, c)| sources.contains(c))
                    .collect();
                let has_dest = entries.iter().any(|(_, c)| *c == dest);
                if stale.is_empty() && has_dest {
                    continue; // MODIFY already durable
                }
                let Some(entry_key) = stale.iter().map(|(k, _)| *k).min() else {
                    continue; // nothing stale and no dest: not our base
                };
                let new_entries = if has_dest {
                    Vec::new()
                } else {
                    vec![(entry_key, dest)]
                };
                let prev = db.reorg_table().recent_lsn();
                let lsn = db.log().append(&LogRecord::ReorgModify {
                    unit: info.unit,
                    base_page: base,
                    old_entries: stale.clone(),
                    new_entries: new_entries.clone(),
                    prev_lsn: prev,
                });
                db.reorg_table().advance(lsn);
                let mut node = NodeView::new(&mut bpage);
                for (k, _) in &stale {
                    node.remove_entry(*k);
                }
                for (k, c) in &new_entries {
                    if node.set_child(*k, *c).is_err() {
                        node.insert_entry(*k, *c)?;
                    }
                }
                bpage.set_lsn(lsn);
            }
        }
        ReorgKind::Swap => {
            let (a, b) = (info.leaf_pages[0], info.leaf_pages[1]);
            let _g = tree.smo_guard();
            if info.swap_logged {
                // Contents exchanged (redone); ensure both parents route
                // correctly by their current first keys.
                for leaf in [a, b] {
                    let key = {
                        let g = pool.fetch(leaf)?;
                        let page = g.read();
                        if page.page_type() != Some(PageType::Leaf) {
                            continue;
                        }
                        let r = LeafRef::new(&page);
                        largest_key = largest_key.max(r.last_key().unwrap_or(0));
                        match r.first_key() {
                            Some(k) => k,
                            None => continue,
                        }
                    };
                    let path = tree.path_for_locked(key)?;
                    if path.len() < 2 {
                        continue;
                    }
                    let base = path[path.len() - 2];
                    let routed = *path.last().expect("non-empty");
                    if routed != leaf {
                        let bg = pool.fetch(base)?;
                        let mut bpage = bg.write();
                        let entry = NodeRef::new(&bpage).entry_for(key);
                        if let Some((k, old_child)) = entry {
                            let prev = db.reorg_table().recent_lsn();
                            let lsn = db.log().append(&LogRecord::ReorgModify {
                                unit: info.unit,
                                base_page: base,
                                old_entries: vec![(k, old_child)],
                                new_entries: vec![(k, leaf)],
                                prev_lsn: prev,
                            });
                            db.reorg_table().advance(lsn);
                            NodeView::new(&mut bpage)
                                .set_child(k, leaf)
                                .map_err(CoreError::Storage)?;
                            bpage.set_lsn(lsn);
                        }
                    }
                }
            }
            // If the swap image was never logged, nothing moved: close the
            // unit with no effect.
        }
    }
    // Side-pointer chain repair: recompute the whole chain (recovery-time
    // only; simple and always correct).
    repair_side_chain(db, info.unit)?;
    db.log().append(&LogRecord::ReorgEnd {
        unit: info.unit,
        largest_key,
    });
    db.reorg_table().finish_unit(largest_key);
    report.forward_units_completed += 1;
    Ok(())
}

/// Rebuild the leaf side-pointer chain from the in-order walk, logging a
/// SIDEPTR record for every page whose links change.
fn repair_side_chain(db: &Arc<Database>, unit: UnitId) -> CoreResult<()> {
    let tree = db.tree();
    if tree.side_mode() == obr_btree::SidePointerMode::None {
        return Ok(());
    }
    let two_way = tree.side_mode() == obr_btree::SidePointerMode::TwoWay;
    let leaves = tree.leaves_in_key_order()?;
    let pool = db.pool();
    for (i, &leaf) in leaves.iter().enumerate() {
        let want_right = if i + 1 == leaves.len() {
            PageId::INVALID
        } else {
            leaves[i + 1]
        };
        let g = pool.fetch(leaf)?;
        let mut page = g.write();
        if page.page_type() != Some(PageType::Leaf) {
            continue;
        }
        let old = (page.left_sibling(), page.right_sibling());
        let want_left = if !two_way {
            old.0
        } else if i == 0 {
            PageId::INVALID
        } else {
            leaves[i - 1]
        };
        if old != (want_left, want_right) {
            let prev = db.reorg_table().recent_lsn();
            let lsn = db.log().append(&LogRecord::ReorgSidePtr {
                unit,
                page: leaf,
                old_left: old.0,
                old_right: old.1,
                new_left: want_left,
                new_right: want_right,
                prev_lsn: prev,
            });
            db.reorg_table().advance(lsn);
            page.set_left_sibling(want_left);
            page.set_right_sibling(want_right);
            page.set_lsn(lsn);
        }
    }
    Ok(())
}
