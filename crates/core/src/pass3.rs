//! Pass 3 (§7): rebuild the upper levels of the tree new-place and switch.
//!
//! The reorganizer reads the old tree's base pages left to right — holding
//! only one S lock at a time — and feeds their `(low key, leaf)` entries to
//! a bottom-up [`UpperBuilder`]; the leaves are *shared* between old and new
//! tree ("making a copy of the upper part of the tree while leaving the
//! leaves in place"). Concurrent base-page changes (leaf splits and
//! free-at-empty deallocations) behind the read frontier are captured in the
//! side file via the [`SmoObserver`] hook and replayed onto the new tree
//! during catch-up. Every `ReorgConfig::stable_interval` base pages, the
//! new-tree pages changed since the last stable point are forced to disk and
//! a `Pass3Stable` record fixes the restart position (§7.3). The switch
//! (§7.4) X-locks the side file, drains it, atomically repoints the root in
//! the meta page (bumping the tree generation, i.e. the lock name), then
//! X-locks the *old* tree lock to drain old-tree transactions before
//! deallocating the old upper levels.

use obr_sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obr_btree::builder::UpperBuilder;
use obr_btree::node::NODE_CAPACITY;
use obr_btree::{NodeRef, NodeView, SmoObserver};
use obr_lock::{LockMode, OwnerId, ResourceId};
use obr_obs::TraceKind;
use obr_storage::{Page, PageId, PageType, StorageError, PAGE_SIZE};
use obr_wal::{LogRecord, Pass3State, TxnId};

use crate::db::{Database, CK_IDLE};
use crate::error::{CoreError, CoreResult};
use crate::reorg::{FailSite, Reorganizer};
use crate::sidefile::{SideEntry, SideOp};

/// Sentinel stable key meaning "all base pages have been read".
pub const STABLE_ALL_READ: u64 = u64::MAX;

fn image_of(page: &Page) -> Box<[u8; PAGE_SIZE]> {
    Box::new(*page.bytes())
}

/// The §7.2 observer: catches base-page entry changes made by user
/// transactions while pass 3 runs, and queues the ones behind the read
/// frontier (`key < Get_Current()`) into the side file.
pub struct Pass3Observer {
    db: Arc<Database>,
    /// SMOs gated so far (diagnostics).
    gates: AtomicU64,
}

impl Pass3Observer {
    /// Create an observer bound to `db`.
    pub fn new(db: Arc<Database>) -> Pass3Observer {
        Pass3Observer {
            db,
            gates: AtomicU64::new(0),
        }
    }

    /// Number of structure modifications that passed through the gate.
    pub fn gates_entered(&self) -> u64 {
        self.gates.load(Ordering::Relaxed)
    }
}

impl SmoObserver for Pass3Observer {
    fn gate(&self) -> u64 {
        // §7.2: the updater requests an IX lock on the side-file table,
        // held across the SMO so the switch's final catch-up cannot miss an
        // entry. "If it can't obtain the IX lock, this means switching is
        // in progress. In this case, it requests an instant duration IX
        // lock. When the success status is returned (switching is
        // finished), the updater must search in the new tree" — which our
        // SMO does automatically, because every descent re-reads the root
        // anchor; by then the reorganization bit is off and Get_Current()
        // reports nothing behind the frontier, so no side entry is written.
        let owner = self.db.new_owner();
        self.gates.fetch_add(1, Ordering::Relaxed);
        match self
            .db
            .locks()
            .try_lock(owner, ResourceId::SideFile, LockMode::IX)
        {
            Ok(()) => owner.0,
            Err(_) => {
                let _ = self
                    .db
                    .locks()
                    .lock_instant(owner, ResourceId::SideFile, LockMode::IX);
                0 // nothing held
            }
        }
    }

    fn ungate(&self, token: u64) {
        if token != 0 {
            self.db.locks().unlock(OwnerId(token), ResourceId::SideFile);
        }
    }

    fn base_entry_upserted(&self, key: u64, leaf: PageId) {
        if key < self.db.get_current() {
            // Record-level locking on the side-file entry key (§7.2).
            let owner = self.db.new_owner();
            let _ = self
                .db
                .locks()
                .lock(owner, ResourceId::Key(key), LockMode::X);
            self.db.side_file().append(
                TxnId::SYSTEM,
                SideEntry {
                    key,
                    op: SideOp::Upsert(leaf),
                },
            );
            self.db
                .tracer()
                .emit(TraceKind::SideEnqueue, 0, 3, u64::from(leaf.0), key, 1);
            self.db.locks().unlock(owner, ResourceId::Key(key));
        }
    }

    fn base_entry_removed(&self, key: u64) {
        if key < self.db.get_current() {
            let owner = self.db.new_owner();
            let _ = self
                .db
                .locks()
                .lock(owner, ResourceId::Key(key), LockMode::X);
            self.db.side_file().append(
                TxnId::SYSTEM,
                SideEntry {
                    key,
                    op: SideOp::Remove,
                },
            );
            self.db
                .tracer()
                .emit(TraceKind::SideEnqueue, 0, 3, 0, key, 0);
            self.db.locks().unlock(owner, ResourceId::Key(key));
        }
    }
}

/// Editor for the (not yet anchored) new tree: applies side-file entries to
/// its base pages, splitting or shrinking internal pages as needed. Every
/// change is logged as an `Smo` record with full page images so redo works
/// without the tree being anchored.
pub struct NewTreeEditor<'a> {
    db: &'a Database,
    /// Root of the new tree (may change when the editor splits it).
    pub root: PageId,
    /// Height of the new tree.
    pub height: u8,
    node_fill_entries: usize,
}

impl<'a> NewTreeEditor<'a> {
    /// Wrap a freshly built new tree.
    pub fn new(db: &'a Database, root: PageId, height: u8, node_fill: f64) -> NewTreeEditor<'a> {
        NewTreeEditor {
            db,
            root,
            height,
            node_fill_entries: ((NODE_CAPACITY as f64 * node_fill) as usize)
                .clamp(2, NODE_CAPACITY),
        }
    }

    fn descend_to_base(&self, key: u64) -> CoreResult<Vec<PageId>> {
        let pool = self.db.pool();
        let mut path = vec![self.root];
        let mut cur = self.root;
        let mut level = self.height;
        while level > 1 {
            let g = pool.fetch(cur)?;
            let page = g.read();
            if page.page_type() != Some(PageType::Internal) {
                return Err(CoreError::Recovery(format!(
                    "new tree: {cur} not internal at level {level}"
                )));
            }
            cur = NodeRef::new(&page).child_for(key).ok_or_else(|| {
                CoreError::Recovery(format!("new tree: empty node {cur} on descent"))
            })?;
            path.push(cur);
            level -= 1;
        }
        Ok(path)
    }

    fn log_images(&self, pages: &[PageId]) -> CoreResult<()> {
        let pool = self.db.pool();
        let mut images = Vec::with_capacity(pages.len());
        for &p in pages {
            let g = pool.fetch(p)?;
            let page = g.read();
            images.push((p, image_of(&page)));
        }
        let lsn = self.db.log().append(&LogRecord::Smo {
            images,
            new_anchor: None,
        });
        for &p in pages {
            let g = pool.fetch(p)?;
            g.write().set_lsn(lsn);
        }
        Ok(())
    }

    /// Apply one side-file entry.
    pub fn apply(&mut self, entry: SideEntry) -> CoreResult<()> {
        let path = self.descend_to_base(entry.key)?;
        match entry.op {
            SideOp::Upsert(leaf) => self.upsert_at(&path, path.len() - 1, entry.key, leaf),
            SideOp::Remove => self.remove_at(&path, path.len() - 1, entry.key),
        }
    }

    fn upsert_at(
        &mut self,
        path: &[PageId],
        idx: usize,
        key: u64,
        child: PageId,
    ) -> CoreResult<()> {
        let pool = self.db.pool();
        let page_id = path[idx];
        let exact;
        let room;
        {
            let g = pool.fetch(page_id)?;
            let page = g.read();
            let node = NodeRef::new(&page);
            exact = node.entries().iter().any(|&(k, _)| k == key);
            room = node.count() < NODE_CAPACITY;
        }
        if exact || room {
            let g = pool.fetch(page_id)?;
            let mut page = g.write();
            let mut node = NodeView::new(&mut page);
            if exact {
                node.set_child(key, child).map_err(CoreError::Storage)?;
            } else {
                node.insert_entry(key, child).map_err(CoreError::Storage)?;
            }
            drop(page);
            self.log_images(&[page_id])?;
            return Ok(());
        }
        // Full: split this node, then retry the insert from the (possibly
        // new) root — path shape may have changed.
        self.split_node(path, idx)?;
        let path = self.descend_to_base(key)?;
        self.upsert_at(&path, path.len() - 1, key, child)
    }

    fn split_node(&mut self, path: &[PageId], idx: usize) -> CoreResult<()> {
        let pool = self.db.pool();
        let fsm = self.db.fsm();
        let node_id = path[idx];
        let new_id = fsm.allocate_internal().ok_or(StorageError::NoFreePage)?;
        let (sib_low, level) = {
            let ng = pool.fetch(node_id)?;
            let sg = pool.fetch_new(new_id)?;
            let mut npage = ng.write();
            let mut spage = sg.write();
            let level = npage.level();
            let entries = NodeRef::new(&npage).entries();
            // Split at the configured fill so post-split pages stay near f2.
            let at = (entries.len() / 2).min(self.node_fill_entries).max(1);
            let (keep, moved) = entries.split_at(at);
            let low_mark = npage.low_mark();
            {
                let mut node = NodeView::init(&mut npage, level);
                for (k, c) in keep {
                    node.insert_entry(*k, *c).map_err(CoreError::Storage)?;
                }
                node.page_mut().set_low_mark(low_mark);
            }
            {
                let mut sib = NodeView::init(&mut spage, level);
                for (k, c) in moved {
                    sib.insert_entry(*k, *c).map_err(CoreError::Storage)?;
                }
            }
            (moved[0].0, level)
        };
        if idx == 0 {
            // Root split: the new tree grows.
            let root_id = fsm.allocate_internal().ok_or(StorageError::NoFreePage)?;
            {
                let rg = pool.fetch_new(root_id)?;
                let mut rpage = rg.write();
                let old_low = {
                    let g = pool.fetch(node_id)?;
                    let p = g.read();
                    let lm = p.low_mark();
                    if lm == u64::MAX {
                        0
                    } else {
                        lm
                    }
                };
                let mut root = NodeView::init(&mut rpage, level + 1);
                root.insert_entry(old_low, node_id)
                    .map_err(CoreError::Storage)?;
                root.insert_entry(sib_low, new_id)
                    .map_err(CoreError::Storage)?;
            }
            self.root = root_id;
            self.height = level + 1;
            self.log_images(&[node_id, new_id, root_id])?;
        } else {
            self.log_images(&[node_id, new_id])?;
            self.upsert_at(path, idx - 1, sib_low, new_id)?;
        }
        Ok(())
    }

    fn remove_at(&mut self, path: &[PageId], idx: usize, key: u64) -> CoreResult<()> {
        let pool = self.db.pool();
        let page_id = path[idx];
        let now_empty = {
            let g = pool.fetch(page_id)?;
            let mut page = g.write();
            let mut node = NodeView::new(&mut page);
            // The entry key may differ slightly if it was re-registered;
            // fall back to the routing entry when exact removal misses.
            if node.remove_entry(key).is_none() {
                let route = NodeRef::new(node.page()).entry_for(key);
                if let Some((k, _)) = route {
                    node.remove_entry(k);
                }
            }
            node.is_empty()
        };
        self.log_images(&[page_id])?;
        if now_empty && idx > 0 {
            // Free-at-empty cascade on the new tree.
            let parent_id = path[idx - 1];
            let removed = {
                let g = pool.fetch(parent_id)?;
                let mut page = g.write();
                let mut node = NodeView::new(&mut page);
                node.repoint_child(page_id, page_id).inspect(|&low| {
                    node.remove_entry(low);
                })
            };
            if removed.is_some() {
                self.log_images(&[parent_id])?;
                self.db.pool().discard(page_id);
                self.db.fsm().free(page_id);
                // Continue the cascade if the parent emptied too.
                let parent_empty = {
                    let g = pool.fetch(parent_id)?;
                    let page = g.read();
                    NodeRef::new(&page).is_empty()
                };
                if parent_empty && idx - 1 > 0 {
                    return self.remove_cascade(path, idx - 1);
                }
            }
        }
        Ok(())
    }

    fn remove_cascade(&mut self, path: &[PageId], idx: usize) -> CoreResult<()> {
        let pool = self.db.pool();
        let page_id = path[idx];
        let parent_id = path[idx - 1];
        let removed = {
            let g = pool.fetch(parent_id)?;
            let mut page = g.write();
            let mut node = NodeView::new(&mut page);
            node.repoint_child(page_id, page_id).inspect(|&low| {
                node.remove_entry(low);
            })
        };
        if removed.is_some() {
            self.log_images(&[parent_id])?;
            self.db.pool().discard(page_id);
            self.db.fsm().free(page_id);
            let parent_empty = {
                let g = pool.fetch(parent_id)?;
                let page = g.read();
                NodeRef::new(&page).is_empty()
            };
            if parent_empty && idx - 1 > 0 {
                return self.remove_cascade(path, idx - 1);
            }
        }
        Ok(())
    }
}

impl Reorganizer {
    /// Pass 3: shrink the tree by rebuilding its upper levels new-place and
    /// switching (§7).
    pub fn pass3_shrink(&self) -> CoreResult<()> {
        self.pass3_run(None)
    }

    /// Resume pass 3 after a crash, from the recovery-supplied restart
    /// state (§7.3).
    pub fn pass3_resume(&self, state: Pass3State) -> CoreResult<()> {
        self.db_handle().core_metrics().recovery_pass3_resumes.inc();
        self.pass3_run(Some(state))
    }

    fn pass3_run(&self, resume: Option<Pass3State>) -> CoreResult<()> {
        let db = self.db_handle();
        let tree = db.tree();
        let (old_root, old_height) = tree.anchor()?;
        if old_height == 0 {
            return Ok(()); // nothing above the leaves to rebuild
        }
        let old_gen = tree.generation()?;
        db.tracer()
            .emit(TraceKind::PassEnter, 0, 3, u64::from(old_root.0), 0, 0);
        tree.set_reorg_bit(true)?;
        let observer = Arc::new(Pass3Observer::new(Arc::clone(&db)));
        tree.set_observer(observer as Arc<dyn SmoObserver>);
        db.set_current(0);
        let cfg = self.config();
        let mut builder = match &resume {
            Some(state) if state.stable_key != STABLE_ALL_READ => UpperBuilder::resume(
                Arc::clone(db.pool()),
                Arc::clone(db.fsm()),
                0,
                cfg.node_fill,
                state.new_root,
            )?,
            Some(_) | None => UpperBuilder::new(
                Arc::clone(db.pool()),
                Arc::clone(db.fsm()),
                0,
                cfg.node_fill,
            ),
        };
        let built = match &resume {
            Some(state) if state.stable_key == STABLE_ALL_READ => {
                // The build finished before the crash; its root is durable.
                obr_btree::builder::BuiltTree {
                    root: state.new_root,
                    height: {
                        let g = db.pool().fetch(state.new_root)?;
                        let page = g.read();
                        page.level()
                    },
                }
            }
            Some(state) => {
                self.pass3_read_loop(&db, &mut builder, Some(state.stable_key))?;
                self.pass3_finish_build(&db, builder)?
            }
            None => {
                self.pass3_read_loop(&db, &mut builder, None)?;
                self.pass3_finish_build(&db, builder)?
            }
        };
        self.pass3_catchup_and_switch(&db, built, old_root, old_gen)?;
        db.tracer().emit(TraceKind::PassExit, 0, 3, 0, 0, 0);
        Ok(())
    }

    /// Read base pages from `start` (a low-mark frontier) to the end,
    /// streaming entries into the builder with stable points.
    fn pass3_read_loop(
        &self,
        db: &Arc<Database>,
        builder: &mut UpperBuilder,
        start: Option<u64>,
    ) -> CoreResult<()> {
        let tree = db.tree();
        let locks = db.locks();
        let cfg = self.config();
        let mut last_low: Option<u64> = None;
        // Resume: skip every base page whose low mark is below the stable
        // key (they were read before the crash).
        let min_low = start;
        let mut since_stable = 0usize;
        loop {
            // Get_Next: the base page with the smallest low mark greater
            // than the last one read.
            let next = {
                let mut bases: Vec<(u64, PageId)> = Vec::new();
                for b in tree.base_pages()? {
                    let g = db.pool().fetch(b)?;
                    bases.push((g.read().low_mark(), b));
                }
                bases.sort();
                bases.into_iter().find(|(low, _)| {
                    last_low.map(|l| *low > l).unwrap_or(true)
                        && min_low.map(|m| *low >= m).unwrap_or(true)
                })
            };
            let Some((low, base)) = next else { break };
            locks.lock(self.owner(), ResourceId::Page(base.0), LockMode::S)?;
            let entries = {
                // Atomic vs SMOs: read the entries and advance CK under the
                // tree's SMO guard, so every base change is either visible
                // in this read or caught by the side file.
                let _g = tree.smo_guard();
                let bg = db.pool().fetch(base)?;
                let page = bg.read();
                if page.page_type() != Some(PageType::Internal) {
                    Vec::new() // deallocated since listing; skip
                } else {
                    let entries = NodeRef::new(&page).entries();
                    // Next frontier: smallest base low mark above this one.
                    let mut next_low = STABLE_ALL_READ;
                    for b in tree.base_pages()? {
                        let g = db.pool().fetch(b)?;
                        let l = g.read().low_mark();
                        if l > low && l < next_low {
                            next_low = l;
                        }
                    }
                    db.set_current(next_low);
                    entries
                }
            };
            locks.unlock(self.owner(), ResourceId::Page(base.0));
            for (k, leaf) in entries {
                // A base split behind us re-exposes entries already pushed;
                // those changes are covered by the side file.
                if builder.last_key().map(|l| k <= l).unwrap_or(false) {
                    continue;
                }
                builder.push(k, leaf)?;
            }
            {
                let mut st = self.stats.lock();
                st.base_pages_read += 1;
            }
            db.core_metrics().base_pages_read.inc();
            last_low = Some(low);
            since_stable += 1;
            if since_stable >= cfg.stable_interval {
                since_stable = 0;
                self.pass3_stable_point(db, builder)?;
                self.check_fail(FailSite::Pass3AfterStable)?;
            }
        }
        Ok(())
    }

    /// Log full images of freshly built new-tree pages as one `Smo`
    /// record. The primary's own recovery never needs it (the pages are
    /// force-written before the stable record), but a log-shipping replica
    /// has no access to this disk: the log must carry everything, and
    /// redo's page-LSN gate makes the images free on the primary.
    fn log_built_images(db: &Arc<Database>, pages: &[PageId]) -> CoreResult<()> {
        if pages.is_empty() {
            return Ok(());
        }
        let pool = db.pool();
        let mut images = Vec::with_capacity(pages.len());
        for &p in pages {
            let g = pool.fetch(p)?;
            images.push((p, image_of(&g.read())));
        }
        let lsn = db.log().append(&LogRecord::Smo {
            images,
            new_anchor: None,
        });
        for &p in pages {
            let g = pool.fetch(p)?;
            g.write().set_lsn(lsn);
        }
        Ok(())
    }

    fn pass3_stable_point(&self, db: &Arc<Database>, builder: &mut UpperBuilder) -> CoreResult<()> {
        let touched = builder.take_touched();
        Self::log_built_images(db, &touched)?;
        // Pages the pool already evicted were written (and will be synced
        // just below); the skipped set distinguishes them from typos in the
        // touched bookkeeping, which would name pages never dirtied at all.
        let _already_durable = db.pool().flush_pages(&touched)?;
        db.disk().sync()?;
        let state = Pass3State {
            stable_key: db.get_current(),
            new_root: builder.top_page().unwrap_or(PageId::INVALID),
        };
        db.log().append_force(&LogRecord::Pass3Stable { state })?;
        self.stats.lock().stable_points += 1;
        db.core_metrics().stable_points.inc();
        db.tracer().emit(
            TraceKind::Pass3Stable,
            0,
            3,
            u64::from(state.new_root.0),
            state.stable_key,
            0,
        );
        Ok(())
    }

    fn pass3_finish_build(
        &self,
        db: &Arc<Database>,
        builder: UpperBuilder,
    ) -> CoreResult<obr_btree::builder::BuiltTree> {
        // Make the whole new upper level durable before catch-up (§7.3).
        let pages = builder.pages_allocated();
        let built = builder.finish()?;
        Self::log_built_images(db, &pages)?;
        let _already_durable = db.pool().flush_pages(&pages)?;
        db.disk().sync()?;
        db.log().append_force(&LogRecord::Pass3Stable {
            state: Pass3State {
                stable_key: STABLE_ALL_READ,
                new_root: built.root,
            },
        })?;
        Ok(built)
    }

    /// Every internal page reachable from `root` (the old tree's upper
    /// levels, collected right before disposal so base pages created by
    /// concurrent splits during pass 3 are included).
    fn collect_internal_pages(db: &Arc<Database>, root: PageId) -> CoreResult<Vec<PageId>> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(p) = stack.pop() {
            let g = db.pool().fetch(p)?;
            let page = g.read();
            if page.page_type() != Some(PageType::Internal) {
                continue;
            }
            out.push(p);
            if page.level() > 1 {
                stack.extend(NodeRef::new(&page).children());
            }
        }
        Ok(out)
    }

    fn pass3_catchup_and_switch(
        &self,
        db: &Arc<Database>,
        built: obr_btree::builder::BuiltTree,
        old_root: PageId,
        old_gen: u32,
    ) -> CoreResult<()> {
        let tree = db.tree();
        let locks = db.locks();
        let cfg = self.config();
        let mut editor = NewTreeEditor::new(db, built.root, built.height, cfg.node_fill);
        // Catch-up: drain the side file; new entries may keep arriving, but
        // leaf splits are rare so this converges (§7.1).
        loop {
            let mut applied = 0u64;
            while let Some((_, entry)) = db.side_file().pop_front(TxnId::SYSTEM) {
                editor.apply(entry)?;
                applied += 1;
            }
            self.stats.lock().side_entries_applied += applied;
            db.core_metrics().side_entries_applied.add(applied);
            if applied > 0 {
                db.tracer().emit(TraceKind::SideDrain, 0, 3, 0, applied, 0);
            }
            if db.side_file().is_empty() {
                break;
            }
        }
        self.check_fail(FailSite::Pass3BeforeSwitch)?;
        // --- The switch (§7.4). ---
        locks.lock(self.owner(), ResourceId::SideFile, LockMode::X)?;
        // Base-page-changing SMOs are gated now: the old tree's upper
        // levels are final, so this snapshot misses nothing.
        let old_internal = Self::collect_internal_pages(db, old_root)?;
        // Final catch-up: the few entries appended while we waited.
        let mut applied = 0u64;
        while let Some((_, entry)) = db.side_file().pop_front(TxnId::SYSTEM) {
            editor.apply(entry)?;
            applied += 1;
        }
        self.stats.lock().side_entries_applied += applied;
        db.core_metrics().side_entries_applied.add(applied);
        if applied > 0 {
            db.tracer().emit(TraceKind::SideDrain, 0, 3, 0, applied, 1);
        }
        // Editor changes after the final stable record: force them so the
        // switch lands on a durable new tree.
        db.pool().flush_all()?;
        {
            let _g = tree.smo_guard();
            let lsn = db.log().append_force(&LogRecord::Pass3Switch {
                old_root,
                new_root: editor.root,
                new_height: editor.height,
            })?;
            tree.set_anchor(editor.root, editor.height, lsn)?;
            tree.set_generation(old_gen + 1)?;
            tree.set_reorg_bit(false)?;
            db.tracer().emit(
                TraceKind::TreeSwitch,
                0,
                3,
                u64::from(editor.root.0),
                u64::from(old_root.0),
                u64::from(editor.height),
            );
        }
        // The root location lives in "a special place on the disk": force it.
        db.pool().flush_page(tree.meta_id())?;
        db.set_current(0);
        tree.clear_observer();
        // Release the side-file X now: unlike the paper's system, our
        // readers re-read the root anchor on every operation, so no reader
        // can keep navigating the *old* tree after the switch — base-page
        // updates on the new tree cannot make anyone's search incorrect.
        // (Holding it through the old-tree drain, as the paper does for
        // systems with physically-resident old-tree readers, would deadlock
        // gate-blocked updaters that still hold old-tree intent locks — the
        // very situation §7.4 resolves by aborting them.)
        locks.unlock(self.owner(), ResourceId::SideFile);
        // Drain transactions still using the old tree, then reclaim its
        // upper levels.
        locks.lock(self.owner(), ResourceId::Tree(old_gen), LockMode::X)?;
        for p in old_internal {
            db.pool().discard(p);
            db.fsm().free(p);
        }
        db.set_current(CK_IDLE);
        locks.release_all(self.owner());
        Ok(())
    }
}
