//! Error type for the reorganizer and recovery.

use std::fmt;

use obr_btree::BTreeError;
use obr_lock::LockError;
use obr_storage::StorageError;

/// Errors from reorganization and recovery.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// Underlying tree failure.
    Tree(BTreeError),
    /// A lock request failed terminally (timeout / unsupported conversion).
    Lock(LockError),
    /// An injected fail point fired (crash testing, E5).
    InjectedCrash(&'static str),
    /// The reorganizer gave up after repeated deadlocks on one unit.
    TooManyRetries(String),
    /// Recovery found the log/disk in an impossible state.
    Recovery(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Tree(e) => write!(f, "tree: {e}"),
            CoreError::Lock(e) => write!(f, "lock: {e}"),
            CoreError::InjectedCrash(site) => write!(f, "injected crash at {site}"),
            CoreError::TooManyRetries(msg) => write!(f, "too many retries: {msg}"),
            CoreError::Recovery(msg) => write!(f, "recovery: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Tree(e) => Some(e),
            CoreError::Lock(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<BTreeError> for CoreError {
    fn from(e: BTreeError) -> Self {
        CoreError::Tree(e)
    }
}

impl From<LockError> for CoreError {
    fn from(e: LockError) -> Self {
        CoreError::Lock(e)
    }
}

/// Convenience alias.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CoreError::from(StorageError::NoFreePage);
        assert!(e.to_string().contains("no free page"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::InjectedCrash("after-begin")
            .to_string()
            .contains("after-begin"));
    }
}
