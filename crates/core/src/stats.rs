//! One-call health snapshot of the whole engine — what an operator (or the
//! reorganization daemon) looks at to decide whether the tree needs help.

use std::fmt;

use obr_btree::TreeStats;
use obr_lock::LockStats;
use obr_storage::DiskStats;
use obr_wal::{LogStats, SyncStats};

use crate::db::Database;
use crate::error::CoreResult;

/// Aggregated snapshot across every subsystem.
#[derive(Debug, Clone)]
pub struct DatabaseStats {
    /// Tree shape.
    pub tree: TreeStats,
    /// Lock manager counters.
    pub locks: LockStats,
    /// Log volume counters.
    pub log: LogStats,
    /// Disk I/O counters.
    pub disk: DiskStats,
    /// Buffer pool residency.
    pub pool_resident: usize,
    /// Buffer pool capacity.
    pub pool_capacity: usize,
    /// Buffer pool shard count (frame-table concurrency).
    pub pool_shards: usize,
    /// WAL durability counters (fsync batching from group commit).
    pub wal_sync: SyncStats,
    /// Free pages available.
    pub free_pages: usize,
    /// Queued side-file entries (non-zero only during pass 3).
    pub side_file_len: usize,
    /// Whether an internal-page reorganization is running (§7.2 bit).
    pub reorg_bit: bool,
}

impl DatabaseStats {
    /// Fraction of key-adjacent leaf pairs that are physically non-adjacent.
    pub fn disorder_fraction(&self) -> f64 {
        if self.tree.leaf_pages < 2 {
            0.0
        } else {
            self.tree.leaf_discontinuities() as f64 / (self.tree.leaf_pages - 1) as f64
        }
    }
}

impl fmt::Display for DatabaseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tree:   {} records | {} leaves @ fill {:.2} | {} internal | height {}",
            self.tree.records,
            self.tree.leaf_pages,
            self.tree.avg_leaf_fill,
            self.tree.internal_pages,
            self.tree.height
        )?;
        writeln!(
            f,
            "layout: {} discontinuities ({:.0}% disorder) | scan seek {}",
            self.tree.leaf_discontinuities(),
            self.disorder_fraction() * 100.0,
            self.tree.scan_seek_distance()
        )?;
        writeln!(
            f,
            "space:  {} free pages | pool {}/{} frames in {} shards",
            self.free_pages, self.pool_resident, self.pool_capacity, self.pool_shards
        )?;
        writeln!(
            f,
            "log:    {} records, {} bytes ({} reorg bytes) | {} flushes -> {} batches, {} fsyncs",
            self.log.records,
            self.log.bytes,
            self.log.reorg_bytes,
            self.wal_sync.flush_calls,
            self.wal_sync.batches,
            self.wal_sync.syncs
        )?;
        writeln!(
            f,
            "disk:   {} reads, {} writes, seek {}",
            self.disk.reads, self.disk.writes, self.disk.seek_distance
        )?;
        write!(
            f,
            "locks:  {} grants, {} waited, {} forgone (RX), {} deadlocks{}",
            self.locks.immediate_grants,
            self.locks.waited_grants,
            self.locks.forgone,
            self.locks.deadlocks,
            if self.reorg_bit {
                format!(" | PASS 3 RUNNING, side file: {}", self.side_file_len)
            } else {
                String::new()
            }
        )
    }
}

impl Database {
    /// Collect a [`DatabaseStats`] snapshot.
    pub fn stats(&self) -> CoreResult<DatabaseStats> {
        Ok(DatabaseStats {
            tree: self.tree().stats()?,
            locks: self.locks().stats(),
            log: self.log().stats(),
            disk: self.disk().stats(),
            pool_resident: self.pool().resident(),
            pool_capacity: self.pool().capacity(),
            pool_shards: self.pool().shard_count(),
            wal_sync: self.log().sync_stats(),
            free_pages: self.fsm().free_count(),
            side_file_len: self.side_file().len(),
            reorg_bit: self.tree().reorg_bit()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_btree::SidePointerMode;
    use obr_storage::{DiskManager, InMemoryDisk};
    use std::sync::Arc;

    #[test]
    fn snapshot_renders_every_section() {
        let disk = Arc::new(InMemoryDisk::new(1024));
        let db =
            Database::create(disk as Arc<dyn DiskManager>, 1024, SidePointerMode::TwoWay).unwrap();
        let records: Vec<(u64, Vec<u8>)> = (0..500u64).map(|k| (k, vec![1; 32])).collect();
        db.tree().bulk_load(&records, 0.5, 0.9).unwrap();
        let s = db.stats().unwrap();
        assert_eq!(s.tree.records, 500);
        assert!(s.free_pages > 0);
        let text = s.to_string();
        for needle in ["tree:", "layout:", "space:", "log:", "disk:", "locks:"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        assert!(!text.contains("PASS 3"));
    }

    #[test]
    fn disorder_fraction_bounds() {
        let disk = Arc::new(InMemoryDisk::new(256));
        let db =
            Database::create(disk as Arc<dyn DiskManager>, 256, SidePointerMode::TwoWay).unwrap();
        let s = db.stats().unwrap();
        assert_eq!(s.disorder_fraction(), 0.0); // single empty leaf
    }
}
