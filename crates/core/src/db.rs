//! The assembled database engine: one handle bundling every substrate the
//! paper assumes — disk, buffer pool with careful writing, WAL, lock
//! manager, free-space map, reorganization state table, side file, and the
//! primary B+-tree.

use obr_sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obr_btree::{BTree, SidePointerMode};
use obr_lock::{LockManager, OwnerId};
use obr_obs::{Registry, Snapshot, Tracer};
use obr_storage::{BufferPool, DiskManager, FreeSpaceMap, PageId, WalFlush};
use obr_wal::{CheckpointData, LogManager, LogRecord, ReorgStateTable, TxnId};

use crate::error::CoreResult;
use crate::metrics::CoreMetrics;
use crate::sidefile::SideFile;

/// Sentinel for "no pass-3 read position" (reorganization idle).
pub const CK_IDLE: u64 = u64::MAX;

/// Knobs for the engine's concurrency substrates. [`Default`] is the tuned
/// configuration; the degraded settings exist so benchmarks can measure
/// what each optimization buys (`EngineConfig::single_mutex_baseline`).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Buffer-pool shard count; `None` sizes it to the machine.
    pub pool_shards: Option<usize>,
    /// Batch concurrent WAL committers into shared fsyncs (on by default).
    pub group_commit: bool,
    /// Pages reserved at the front of the disk for meta/internal pages.
    pub internal_region_pages: u32,
    /// Seal threshold for durable WAL segments: once the active segment
    /// file reaches this many bytes it is sealed (becomes immutable and
    /// shippable) and a new one is started. Only durable databases use
    /// it. Small values (a few KiB) force frequent seals for tests.
    pub wal_segment_bytes: u64,
    /// Network frontend: maximum concurrent client sessions the server
    /// admits; a connection past the limit is answered `BUSY` at handshake
    /// time and closed (see [`crate::admission::AdmissionGate`]).
    pub max_sessions: usize,
    /// Network frontend: bounded in-flight request queue — how many
    /// data-plane requests may execute concurrently across all sessions.
    /// Requests past the limit are shed with a typed `BUSY`, never queued
    /// unboundedly. Zero sheds everything (administrative drain).
    pub admission_queue: usize,
}

/// Default WAL segment seal threshold (4 MiB).
pub const DEFAULT_WAL_SEGMENT_BYTES: u64 = 4 << 20;

/// Default concurrent-session ceiling for the network frontend.
pub const DEFAULT_MAX_SESSIONS: usize = 64;

/// Default in-flight request ceiling for the network frontend.
pub const DEFAULT_ADMISSION_QUEUE: usize = 128;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pool_shards: None,
            group_commit: true,
            internal_region_pages: 0,
            wal_segment_bytes: DEFAULT_WAL_SEGMENT_BYTES,
            max_sessions: DEFAULT_MAX_SESSIONS,
            admission_queue: DEFAULT_ADMISSION_QUEUE,
        }
    }
}

impl EngineConfig {
    /// The pre-sharding, pre-group-commit engine: one frame-table mutex, one
    /// log lock held across fsync. Exists for A/B benchmarking only.
    pub fn single_mutex_baseline() -> Self {
        EngineConfig {
            pool_shards: Some(1),
            group_commit: false,
            ..EngineConfig::default()
        }
    }

    fn build_pool(&self, disk: &Arc<dyn DiskManager>, frames: usize) -> Arc<BufferPool> {
        Arc::new(match self.pool_shards {
            Some(n) => BufferPool::with_shards(Arc::clone(disk), frames, n),
            None => BufferPool::new(Arc::clone(disk), frames),
        })
    }
}

/// The database.
pub struct Database {
    disk: Arc<dyn DiskManager>,
    pool: Arc<BufferPool>,
    fsm: Arc<FreeSpaceMap>,
    log: Arc<LogManager>,
    locks: Arc<LockManager>,
    reorg_table: Arc<ReorgStateTable>,
    side_file: Arc<SideFile>,
    tree: Arc<BTree>,
    next_txn: AtomicU64,
    next_owner: AtomicU64,
    /// `Get_Current()` of §7.2: the low mark of the base page pass 3 is
    /// currently reading; [`CK_IDLE`] when no internal reorganization runs.
    ck: AtomicU64,
    /// Active transactions: id -> (begin LSN, most recent LSN).
    active_txns:
        obr_sync::Mutex<std::collections::HashMap<TxnId, (obr_storage::Lsn, obr_storage::Lsn)>>,
    /// Per-database metrics directory: every subsystem publishes its live
    /// counter handles here at assembly time.
    metrics: Arc<Registry>,
    /// Per-database trace sink for reorganization/recovery events.
    tracer: Arc<Tracer>,
    /// Engine-level counters (reorg units, recovery, daemon, tree gauges).
    core_metrics: CoreMetrics,
}

impl Database {
    /// Final assembly shared by every construction path: build the
    /// per-database observability registry and tracer, create the
    /// subsystems that don't vary between paths, and have each subsystem
    /// publish its live metric handles into the registry.
    fn assemble(
        disk: Arc<dyn DiskManager>,
        pool: Arc<BufferPool>,
        fsm: Arc<FreeSpaceMap>,
        log: Arc<LogManager>,
        tree: Arc<BTree>,
    ) -> Arc<Database> {
        let metrics = Arc::new(Registry::new());
        let locks = Arc::new(LockManager::new());
        let side_file = Arc::new(SideFile::new(Arc::clone(&log)));
        let core_metrics = CoreMetrics::default();
        pool.register_metrics(&metrics);
        log.register_metrics(&metrics);
        locks.register_metrics(&metrics);
        side_file.register_metrics(&metrics);
        core_metrics.register(&metrics);
        Arc::new(Database {
            disk,
            pool,
            fsm,
            locks,
            reorg_table: Arc::new(ReorgStateTable::new()),
            side_file,
            log,
            tree,
            next_txn: AtomicU64::new(1),
            next_owner: AtomicU64::new(1_000_000),
            ck: AtomicU64::new(CK_IDLE),
            active_txns: obr_sync::Mutex::named(std::collections::HashMap::new(), "db.active_txns"),
            metrics,
            tracer: Arc::new(Tracer::new()),
            core_metrics,
        })
    }

    /// Create a fresh database over `disk` with a buffer pool of
    /// `pool_frames` frames and a brand-new (empty) tree.
    pub fn create(
        disk: Arc<dyn DiskManager>,
        pool_frames: usize,
        side: SidePointerMode,
    ) -> CoreResult<Arc<Database>> {
        Self::create_with_regions(disk, pool_frames, side, 0)
    }

    /// Like [`Self::create`], but reserving the first
    /// `internal_region_pages` pages for meta/internal pages (§6 of the
    /// paper assumes leaves and internal pages live in different parts of
    /// the disk; this makes pass 2 able to pack leaves perfectly).
    pub fn create_with_regions(
        disk: Arc<dyn DiskManager>,
        pool_frames: usize,
        side: SidePointerMode,
        internal_region_pages: u32,
    ) -> CoreResult<Arc<Database>> {
        Self::create_with_config(
            disk,
            pool_frames,
            side,
            EngineConfig {
                internal_region_pages,
                ..EngineConfig::default()
            },
        )
    }

    /// Like [`Self::create`], with explicit [`EngineConfig`] knobs (pool
    /// sharding, WAL group commit, region split).
    pub fn create_with_config(
        disk: Arc<dyn DiskManager>,
        pool_frames: usize,
        side: SidePointerMode,
        cfg: EngineConfig,
    ) -> CoreResult<Arc<Database>> {
        let pool = cfg.build_pool(&disk, pool_frames);
        let fsm = Arc::new(FreeSpaceMap::new_all_free(disk.num_pages()));
        fsm.set_leaf_boundary(PageId(cfg.internal_region_pages));
        let log = Arc::new(LogManager::new());
        log.set_group_commit(cfg.group_commit);
        pool.set_wal(Arc::clone(&log) as Arc<dyn WalFlush>);
        let tree = Arc::new(BTree::create(
            Arc::clone(&pool),
            Arc::clone(&fsm),
            Arc::clone(&log),
            side,
        )?);
        Ok(Self::assemble(disk, pool, fsm, log, tree))
    }

    /// Create a fully durable database: pages in `<dir>/pages.db`, WAL as
    /// a segmented log under `<dir>/wal/`. Use [`crate::recovery::recover`]
    /// after [`Self::open_durable`] to restart from the files.
    pub fn create_durable(
        dir: &std::path::Path,
        pages: u32,
        pool_frames: usize,
        side: SidePointerMode,
    ) -> CoreResult<Arc<Database>> {
        Self::create_durable_with_config(dir, pages, pool_frames, side, EngineConfig::default())
    }

    /// Like [`Self::create_durable`], with explicit [`EngineConfig`] knobs.
    pub fn create_durable_with_config(
        dir: &std::path::Path,
        pages: u32,
        pool_frames: usize,
        side: SidePointerMode,
        cfg: EngineConfig,
    ) -> CoreResult<Arc<Database>> {
        std::fs::create_dir_all(dir).map_err(obr_storage::StorageError::Io)?;
        let disk: Arc<dyn DiskManager> =
            Arc::new(obr_storage::FileDisk::open(&dir.join("pages.db"), pages)?);
        let log = Arc::new(LogManager::open_dir(
            &dir.join("wal"),
            cfg.wal_segment_bytes,
        )?);
        Self::create_over(disk, log, pool_frames, side, cfg)
    }

    /// Assemble a fresh database over an already-opened disk and log. The
    /// crash checker uses this to pair a journaling page disk with a real
    /// file-backed (segmented) WAL.
    pub fn create_with_log(
        disk: Arc<dyn DiskManager>,
        log: Arc<LogManager>,
        pool_frames: usize,
        side: SidePointerMode,
        cfg: EngineConfig,
    ) -> CoreResult<Arc<Database>> {
        Self::create_over(disk, log, pool_frames, side, cfg)
    }

    fn create_over(
        disk: Arc<dyn DiskManager>,
        log: Arc<LogManager>,
        pool_frames: usize,
        side: SidePointerMode,
        cfg: EngineConfig,
    ) -> CoreResult<Arc<Database>> {
        log.set_group_commit(cfg.group_commit);
        let pool = cfg.build_pool(&disk, pool_frames);
        let fsm = Arc::new(FreeSpaceMap::new_all_free(disk.num_pages()));
        fsm.set_leaf_boundary(PageId(cfg.internal_region_pages));
        pool.set_wal(Arc::clone(&log) as Arc<dyn WalFlush>);
        let tree = Arc::new(BTree::create(
            Arc::clone(&pool),
            Arc::clone(&fsm),
            Arc::clone(&log),
            side,
        )?);
        Ok(Self::assemble(disk, pool, fsm, log, tree))
    }

    /// Reopen a durable database from its directory (run
    /// [`crate::recovery::recover`] on the result before use). Opens the
    /// segmented WAL at `<dir>/wal/` when present, falling back to a
    /// legacy single-file `<dir>/wal.log`.
    pub fn open_durable(
        dir: &std::path::Path,
        pool_frames: usize,
        side: SidePointerMode,
    ) -> CoreResult<Arc<Database>> {
        let disk = Arc::new(obr_storage::FileDisk::open(&dir.join("pages.db"), 1)?);
        let wal_dir = dir.join("wal");
        let log = if wal_dir.is_dir() || !dir.join("wal.log").exists() {
            Arc::new(LogManager::open_dir(&wal_dir, DEFAULT_WAL_SEGMENT_BYTES)?)
        } else {
            Arc::new(LogManager::open_file(&dir.join("wal.log"))?)
        };
        Self::reopen(disk as Arc<dyn DiskManager>, log, pool_frames, side)
    }

    /// Reassemble a database over an existing disk + log (used by
    /// recovery). The tree is opened at the conventional meta page 0; the
    /// free-space map starts all-allocated and is rebuilt by recovery.
    pub fn reopen(
        disk: Arc<dyn DiskManager>,
        log: Arc<LogManager>,
        pool_frames: usize,
        side: SidePointerMode,
    ) -> CoreResult<Arc<Database>> {
        Self::reopen_with_config(disk, log, pool_frames, side, EngineConfig::default())
    }

    /// Like [`Self::reopen`], with explicit [`EngineConfig`] knobs (used by
    /// recovery drivers that restart a tuned or baseline engine as-was).
    pub fn reopen_with_config(
        disk: Arc<dyn DiskManager>,
        log: Arc<LogManager>,
        pool_frames: usize,
        side: SidePointerMode,
        cfg: EngineConfig,
    ) -> CoreResult<Arc<Database>> {
        let pool = cfg.build_pool(&disk, pool_frames);
        let fsm = Arc::new(FreeSpaceMap::new_all_allocated(disk.num_pages()));
        log.set_group_commit(cfg.group_commit);
        pool.set_wal(Arc::clone(&log) as Arc<dyn WalFlush>);
        let tree = Arc::new(BTree::open(
            Arc::clone(&pool),
            Arc::clone(&fsm),
            Arc::clone(&log),
            PageId(0),
            side,
        )?);
        Ok(Self::assemble(disk, pool, fsm, log, tree))
    }

    /// The per-database metrics registry. Subsystem counters are live: a
    /// [`Registry::snapshot`] at any moment reads the same atomics the hot
    /// paths update. Prefer [`Self::metrics_snapshot`], which also
    /// refreshes the tree-shape gauges.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The per-database trace sink. Attach a JSONL writer with
    /// [`Tracer::attach_file`] to stream reorganization events.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Engine-level counters (crate-internal write access).
    pub(crate) fn core_metrics(&self) -> &CoreMetrics {
        &self.core_metrics
    }

    /// Snapshot every registered metric, after refreshing the tree-shape
    /// gauges (`tree_*`) from a fresh [`obr_btree::TreeStats`] walk.
    pub fn metrics_snapshot(&self) -> CoreResult<Snapshot> {
        let t = self.tree.stats()?;
        self.core_metrics.publish_tree(&t);
        Ok(self.metrics.snapshot())
    }

    /// The primary B+-tree.
    pub fn tree(&self) -> &Arc<BTree> {
        &self.tree
    }

    /// The disk.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// The buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The free-space map.
    pub fn fsm(&self) -> &Arc<FreeSpaceMap> {
        &self.fsm
    }

    /// The write-ahead log.
    pub fn log(&self) -> &Arc<LogManager> {
        &self.log
    }

    /// The lock manager.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The reorganization state table (§5).
    pub fn reorg_table(&self) -> &Arc<ReorgStateTable> {
        &self.reorg_table
    }

    /// The side file (§7.2).
    pub fn side_file(&self) -> &Arc<SideFile> {
        &self.side_file
    }

    /// Allocate a fresh transaction id and register it active.
    pub fn begin_txn(&self) -> TxnId {
        let txn = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        let lsn = self.log.append(&LogRecord::TxnBegin { txn });
        self.active_txns.lock().insert(txn, (lsn, lsn));
        txn
    }

    /// Record a transaction's newest LSN (its undo chain head).
    pub fn note_txn_lsn(&self, txn: TxnId, lsn: obr_storage::Lsn) {
        let mut g = self.active_txns.lock();
        let e = g.entry(txn).or_insert((lsn, lsn));
        e.1 = lsn;
    }

    /// Most recent LSN of an active transaction.
    pub fn txn_lsn(&self, txn: TxnId) -> obr_storage::Lsn {
        self.active_txns
            .lock()
            .get(&txn)
            .map(|(_, recent)| *recent)
            .unwrap_or(obr_storage::Lsn::ZERO)
    }

    /// Mark a transaction finished (committed or fully rolled back).
    pub fn end_txn(&self, txn: TxnId) {
        self.active_txns.lock().remove(&txn);
    }

    /// A fresh lock-owner id (readers, the reorganizer, gate tokens).
    pub fn new_owner(&self) -> OwnerId {
        OwnerId(self.next_owner.fetch_add(1, Ordering::Relaxed))
    }

    /// §7.2 `Get_Current()`: the low mark of the base page currently being
    /// read by pass 3 ([`CK_IDLE`] when idle).
    pub fn get_current(&self) -> u64 {
        self.ck.load(Ordering::Acquire)
    }

    /// Set the pass-3 current key (reorganizer only).
    pub fn set_current(&self, ck: u64) {
        self.ck.store(ck, Ordering::Release);
    }

    /// Write a **sharp** checkpoint: every dirty page is flushed first (so
    /// redo never needs records that precede the checkpoint), then a
    /// checkpoint record carrying the reorganization state table and the
    /// active-transaction list is forced to the log.
    ///
    /// A flush or log I/O failure is returned, not panicked: checkpoints
    /// are retried by the daemon, and a transient error must not take the
    /// engine down (the previous checkpoint simply stays the recovery
    /// anchor).
    pub fn checkpoint(&self) -> CoreResult<obr_storage::Lsn> {
        self.pool.flush_all()?;
        let pass3 = self.pass3_state();
        let active: Vec<(TxnId, obr_storage::Lsn)> = self
            .active_txns
            .lock()
            .iter()
            .map(|(t, (_, recent))| (*t, *recent))
            .collect();
        let rec = LogRecord::Checkpoint {
            data: CheckpointData {
                reorg: self.reorg_table.snapshot(),
                active_txns: active,
                pass3,
            },
        };
        Ok(self.log.append_force(&rec)?)
    }

    fn pass3_state(&self) -> Option<obr_wal::Pass3State> {
        // Pass-3 restart state is logged explicitly at stable points; the
        // checkpoint carries only the "is pass 3 running" hint through the
        // reorg bit in the (durable) meta page. Returning None here keeps
        // the checkpoint small; recovery finds the newest Pass3Stable.
        None
    }

    /// §5: the log low-water mark — "the lowest LSN that must be kept
    /// available for recovery": the minimum of the last checkpoint, the
    /// oldest active transaction's BEGIN, and the in-flight reorganization
    /// unit's BEGIN.
    pub fn log_low_water_mark(&self) -> obr_storage::Lsn {
        use obr_storage::Lsn;
        let ckpt = self
            .log
            .last_checkpoint()
            .ok()
            .flatten()
            .map(|(lsn, _)| lsn)
            .unwrap_or(Lsn(1));
        let oldest_txn = self
            .active_txns
            .lock()
            .values()
            .map(|(begin, _)| *begin)
            .min()
            .unwrap_or(Lsn(u64::MAX));
        let reorg = self.reorg_table.begin_lsn().unwrap_or(Lsn(u64::MAX));
        ckpt.min(oldest_txn).min(reorg)
    }

    /// Drop log records below the low-water mark. A sharp checkpoint is
    /// written first so redo never needs the dropped prefix; for a
    /// segmented WAL the freed prefix is then reclaimed on disk by
    /// recycling every sealed segment below the (boundary-rounded) mark.
    /// Returns the number of records discarded.
    pub fn truncate_log(&self) -> CoreResult<usize> {
        self.checkpoint()?; // sharp: flushes every dirty page first
        let before = self.log.len();
        self.log.truncate_before(self.log_low_water_mark());
        self.log.recycle_segments()?;
        Ok(before - self.log.len())
    }

    /// Simulate a crash: the OS flushed the dirty pages selected by `keep`
    /// (closed under careful-writing prerequisites); everything volatile —
    /// buffer pool, unforced log tail, lock tables, reorganization table —
    /// is lost. The disk and the durable log survive.
    pub fn crash(&self, keep: impl FnMut(PageId) -> bool) -> CoreResult<usize> {
        self.pool.simulate_crash(keep)?;
        let lost = self.log.simulate_crash();
        Ok(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_storage::{InMemoryDisk, Lsn};

    fn db() -> Arc<Database> {
        let disk = Arc::new(InMemoryDisk::new(256));
        Database::create(disk, 256, SidePointerMode::TwoWay).unwrap()
    }

    #[test]
    fn create_yields_working_tree() {
        let d = db();
        let txn = d.begin_txn();
        d.tree().insert(txn, Lsn::ZERO, 1, b"x").unwrap();
        assert_eq!(d.tree().search(1).unwrap().unwrap(), b"x");
    }

    #[test]
    fn txn_bookkeeping() {
        let d = db();
        let t1 = d.begin_txn();
        let t2 = d.begin_txn();
        assert_ne!(t1, t2);
        d.note_txn_lsn(t1, Lsn(9));
        assert_eq!(d.txn_lsn(t1), Lsn(9));
        d.end_txn(t1);
        assert_eq!(d.txn_lsn(t1), Lsn::ZERO);
    }

    #[test]
    fn owner_ids_are_unique() {
        let d = db();
        assert_ne!(d.new_owner(), d.new_owner());
    }

    #[test]
    fn get_current_defaults_to_idle() {
        let d = db();
        assert_eq!(d.get_current(), CK_IDLE);
        d.set_current(42);
        assert_eq!(d.get_current(), 42);
    }

    #[test]
    fn checkpoint_is_durable() {
        let d = db();
        let lsn = d.checkpoint().unwrap();
        assert!(d.log().durable_lsn() >= lsn);
        let (_, rec) = d.log().last_checkpoint().unwrap().unwrap();
        assert!(matches!(rec, LogRecord::Checkpoint { .. }));
    }

    #[test]
    fn crash_loses_unflushed_work() {
        let d = db();
        let txn = d.begin_txn();
        d.tree().insert(txn, Lsn::ZERO, 7, b"v").unwrap();
        // Nothing flushed: the page update and log tail are volatile.
        let lost = d.crash(|_| false).unwrap();
        assert!(lost > 0);
    }
}
