//! Engine-level metric handles: reorganization, recovery, daemon and tree
//! shape, published into the per-database [`Registry`].
//!
//! The lock manager, buffer pool, WAL and side file each own their handles
//! and register them directly; what remains — everything the reorganizer,
//! the recovery driver and the daemon count — lives here, owned by the
//! [`crate::Database`] so it accumulates across reorganizer instances
//! (each daemon cycle constructs a fresh `Reorganizer`, whose
//! [`crate::ReorgStats`] is therefore per-run; these counters are the
//! database-lifetime view of the same events).

use obr_obs::{Counter, Gauge, Registry};

/// Database-lifetime counters and gauges for the reorganization machinery.
/// Field-per-metric: the hot paths clone nothing and format nothing.
#[derive(Debug, Default)]
pub(crate) struct CoreMetrics {
    // Reorganization units (paper §5, Figure 2).
    pub units_started: Counter,
    pub units_completed: Counter,
    pub units_undone: Counter,
    pub units_inplace: Counter,
    pub units_copy_switch: Counter,
    pub deadlock_retries: Counter,
    pub records_moved: Counter,
    pub pages_freed: Counter,
    // Pass 2 (§6.2) and pass 3 (§7).
    pub pass2_swaps: Counter,
    pub pass2_moves: Counter,
    pub base_pages_read: Counter,
    pub stable_points: Counter,
    pub side_entries_applied: Counter,
    // Restart recovery (§5.1, §7.3).
    pub recovery_runs: Counter,
    pub recovery_redo_applied: Counter,
    pub recovery_losers_undone: Counter,
    pub recovery_clrs_written: Counter,
    pub recovery_forward_units: Counter,
    pub recovery_pass3_resumes: Counter,
    // Reorg daemon.
    pub daemon_cycles: Counter,
    pub daemon_runs: Counter,
    /// Cycles that failed and were retried instead of killing the thread.
    pub daemon_errors: Counter,
    /// WAL truncations (checkpoint + segment recycle) the daemon drove.
    pub daemon_truncations: Counter,
    // Tree shape, refreshed by `Database::metrics_snapshot` / `stats`.
    pub tree_records: Gauge,
    pub tree_leaf_pages: Gauge,
    pub tree_internal_pages: Gauge,
    pub tree_height: Gauge,
    pub tree_fill_permille: Gauge,
    pub tree_discontinuities: Gauge,
}

impl CoreMetrics {
    /// Publish every handle into `reg` under its canonical name (the full
    /// inventory is documented in DESIGN.md "Observability").
    pub(crate) fn register(&self, reg: &Registry) {
        reg.register_counter("reorg_units_started", &self.units_started);
        reg.register_counter("reorg_units_completed", &self.units_completed);
        reg.register_counter("reorg_units_undone", &self.units_undone);
        reg.register_counter("reorg_units_inplace", &self.units_inplace);
        reg.register_counter("reorg_units_copy_switch", &self.units_copy_switch);
        reg.register_counter("reorg_deadlock_retries", &self.deadlock_retries);
        reg.register_counter("reorg_records_moved", &self.records_moved);
        reg.register_counter("reorg_pages_freed", &self.pages_freed);
        reg.register_counter("reorg_pass2_swaps", &self.pass2_swaps);
        reg.register_counter("reorg_pass2_moves", &self.pass2_moves);
        reg.register_counter("reorg_base_pages_read", &self.base_pages_read);
        reg.register_counter("reorg_stable_points", &self.stable_points);
        reg.register_counter("reorg_side_entries_applied", &self.side_entries_applied);
        reg.register_counter("recovery_runs", &self.recovery_runs);
        reg.register_counter("recovery_redo_applied", &self.recovery_redo_applied);
        reg.register_counter("recovery_losers_undone", &self.recovery_losers_undone);
        reg.register_counter("recovery_clrs_written", &self.recovery_clrs_written);
        reg.register_counter("recovery_forward_units", &self.recovery_forward_units);
        reg.register_counter("recovery_pass3_resumes", &self.recovery_pass3_resumes);
        reg.register_counter("reorg_daemon_cycles", &self.daemon_cycles);
        reg.register_counter("reorg_daemon_runs", &self.daemon_runs);
        reg.register_counter("reorg_daemon_errors", &self.daemon_errors);
        reg.register_counter("reorg_daemon_truncations", &self.daemon_truncations);
        reg.register_gauge("tree_records", &self.tree_records);
        reg.register_gauge("tree_leaf_pages", &self.tree_leaf_pages);
        reg.register_gauge("tree_internal_pages", &self.tree_internal_pages);
        reg.register_gauge("tree_height", &self.tree_height);
        reg.register_gauge("tree_fill_permille", &self.tree_fill_permille);
        reg.register_gauge("tree_discontinuities", &self.tree_discontinuities);
    }

    /// Refresh the tree-shape gauges from a fresh [`obr_btree::TreeStats`].
    pub(crate) fn publish_tree(&self, t: &obr_btree::TreeStats) {
        self.tree_records.set(t.records);
        self.tree_leaf_pages.set(t.leaf_pages as u64);
        self.tree_internal_pages.set(t.internal_pages as u64);
        self.tree_height.set(t.height as u64);
        self.tree_fill_permille
            .set((t.avg_leaf_fill * 1000.0) as u64);
        self.tree_discontinuities
            .set(t.leaf_discontinuities() as u64);
    }
}
