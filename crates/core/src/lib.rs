//! The paper's contribution: on-line reorganization of sparsely-populated
//! B+-trees (Salzberg & Zou, SIGMOD 1996).
//!
//! * [`reorg::Reorganizer`] — the three-pass algorithm: pass 1 compacts
//!   leaves (in-place compaction + new-place copy-and-switch with the §6.1
//!   placement heuristic), pass 2 optionally swaps/moves leaves into
//!   physical key order, pass 3 rebuilds the upper levels bottom-up behind a
//!   side file and switches trees (§7.4).
//! * [`recovery`] — ARIES-style redo + transaction undo, plus the paper's
//!   **Forward Recovery**: an interrupted reorganization unit is finished,
//!   not rolled back (§5.1), and an interrupted pass 3 resumes from the last
//!   stable key (§7.3).
//! * [`db::Database`] — the assembled engine: disk, buffer pool with careful
//!   writing, WAL, lock manager, free-space map, tree, reorganization state
//!   table, and crash simulation.
//! * [`sidefile::SideFile`] — the §7.2 side file.

pub mod admission;
pub mod daemon;
pub mod db;
pub mod error;
mod metrics;
pub mod pass3;
pub mod recovery;
pub mod reorg;
pub mod replica;
pub mod sidefile;
pub mod stats;

pub use admission::{AdmissionGate, Busy, RequestPermit, SessionPermit};
pub use daemon::{DaemonOptions, ReorgDaemon};
pub use db::{Database, EngineConfig};
pub use error::{CoreError, CoreResult};
pub use pass3::{NewTreeEditor, Pass3Observer, STABLE_ALL_READ};
pub use recovery::{recover, RecoveryReport};
pub use reorg::{
    FailPoint, FailSite, LogStrategy, PlacementPolicy, ReorgConfig, ReorgDecision, ReorgStats,
    ReorgTrigger, Reorganizer,
};
pub use replica::Replica;
pub use sidefile::{SideEntry, SideFile, SideOp};
pub use stats::DatabaseStats;
