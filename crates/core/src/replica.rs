//! A log-shipping read replica.
//!
//! Segmenting the WAL (see `obr-wal`) makes sealed segments immutable
//! files, which is exactly the unit of log shipping: a replica ingests
//! sealed segments as they appear, then tail-streams the active segment,
//! and applies every record through the same page-LSN-gated redo function
//! restart recovery uses ([`crate::recovery`]). Replication is therefore
//! *continuous recovery*: the replica's pages are byte-identical to what
//! the primary's crash recovery would reconstruct at the same LSN, so it
//! follows the reorganizer's checkpoint, pass-3 stable, and tree-switch
//! records without any replica-specific logic — after a
//! [`obr_wal::LogRecord::Pass3Switch`] is applied, reads run against the
//! new tree, just as on the primary.
//!
//! # Consistency
//!
//! The replica's state at [`Replica::applied_lsn`] equals the primary's
//! *physical* state at that LSN: committed work is present, and a
//! transaction in flight at the shipping horizon appears exactly as it
//! would to the primary's own recovery before undo. Quiesce writers (or
//! compare after commit) for a record-for-record match with the primary.
//!
//! # Falling behind
//!
//! The primary recycles sealed segments below its log low-water mark. A
//! replica that has not ingested a segment before it is recycled cannot
//! catch up from the log alone and reports
//! [`CoreError::Recovery`]; re-seed it from a fresh snapshot.

use std::path::Path;
use std::sync::Arc;

use obr_btree::SidePointerMode;
use obr_obs::{Counter, Gauge};
use obr_storage::{DiskManager, InMemoryDisk, Lsn};
use obr_sync::Mutex;
use obr_wal::{segment, LogManager, LogReader, LogRecord};

use crate::db::Database;
use crate::error::{CoreError, CoreResult};
use crate::recovery::redo_one;

/// Apply-side progress, guarded by one mutex so segment ingest and tail
/// sync serialize (records must apply in LSN order).
#[derive(Debug, Default)]
struct Progress {
    /// Highest LSN applied; `Lsn::ZERO` before the first record.
    applied: Lsn,
    /// Sealed segments ingested.
    segments: u64,
    /// Checkpoint records seen (the replica's reorg-horizon markers).
    checkpoints: u64,
    /// Tree switches followed (pass-3 completions on the primary).
    switches: u64,
}

/// Live handles registered into the replica database's own registry.
#[derive(Debug, Default)]
struct ReplicaMetrics {
    applied_lsn: Gauge,
    records_applied: Counter,
    segments_ingested: Counter,
    lag: Gauge,
}

/// A read-only database following a primary by applying its WAL.
pub struct Replica {
    db: Arc<Database>,
    progress: Mutex<Progress>,
    metrics: ReplicaMetrics,
}

impl Replica {
    /// Create a replica with its own in-memory disk and buffer pool, shaped
    /// like the primary (`pages`, `side` must match the primary's creation
    /// parameters so physical redo lands on identical page layouts).
    pub fn new(pages: u32, pool_frames: usize, side: SidePointerMode) -> CoreResult<Replica> {
        let disk = Arc::new(InMemoryDisk::new(pages));
        let db = Database::create(disk as Arc<dyn DiskManager>, pool_frames, side)?;
        Ok(Self::over(db))
    }

    /// Wrap an already-assembled database (e.g. one reopened from a
    /// snapshot of the primary's page file) as the replica's apply target.
    /// Shipping starts from the snapshot's state; call
    /// [`Self::set_applied_floor`] with the snapshot's checkpoint LSN so
    /// already-materialized records are skipped.
    pub fn over(db: Arc<Database>) -> Replica {
        let metrics = ReplicaMetrics::default();
        let reg = db.metrics();
        reg.register_gauge("replica_applied_lsn", &metrics.applied_lsn);
        reg.register_counter("replica_records_applied", &metrics.records_applied);
        reg.register_counter("replica_segments_ingested", &metrics.segments_ingested);
        reg.register_gauge("replica_lag", &metrics.lag);
        Replica {
            db,
            progress: Mutex::named(Progress::default(), "replica.progress"),
            metrics,
        }
    }

    /// The replica's database. Reads are fine; writing to it forks the
    /// replica from the primary's history.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Highest LSN applied so far.
    pub fn applied_lsn(&self) -> Lsn {
        self.progress.lock().applied
    }

    /// Checkpoint records the replica has applied past.
    pub fn checkpoints_seen(&self) -> u64 {
        self.progress.lock().checkpoints
    }

    /// Tree-switch records followed (each one moved reads to a new tree).
    pub fn switches_seen(&self) -> u64 {
        self.progress.lock().switches
    }

    /// Declare that state up to `lsn` is already materialized (snapshot
    /// bootstrap): records at or below it are skipped, not re-applied.
    pub fn set_applied_floor(&self, lsn: Lsn) {
        let mut p = self.progress.lock();
        if lsn > p.applied {
            p.applied = lsn;
            self.metrics.applied_lsn.set(lsn.0);
        }
    }

    /// Apply records in order, skipping anything at or below the applied
    /// LSN and erroring on a gap.
    fn apply_batch(&self, records: &[(Lsn, LogRecord)]) -> CoreResult<u64> {
        let mut p = self.progress.lock();
        let mut applied = 0u64;
        for (lsn, rec) in records {
            if *lsn <= p.applied {
                continue;
            }
            if lsn.0 != p.applied.0 + 1 {
                // applied == ZERO with a first record past LSN 1 is still a
                // gap: the history below it was recycled unseen, and
                // applying from mid-history would silently diverge. A
                // snapshot bootstrap must declare its floor first.
                if p.applied == Lsn::ZERO {
                    return Err(CoreError::Recovery(format!(
                        "replication gap: first shipped record is LSN {lsn} but \
                         this replica has no applied floor; re-seed from a \
                         snapshot (set_applied_floor) before ingesting a \
                         recycled log"
                    )));
                }
                return Err(CoreError::Recovery(format!(
                    "replication gap: next record is LSN {lsn}, applied through {}",
                    p.applied
                )));
            }
            redo_one(&self.db, *lsn, rec)?;
            match rec {
                LogRecord::Checkpoint { .. } => p.checkpoints += 1,
                LogRecord::Pass3Switch { .. } => p.switches += 1,
                _ => {}
            }
            p.applied = *lsn;
            applied += 1;
        }
        self.metrics.applied_lsn.set(p.applied.0);
        self.metrics.records_applied.add(applied);
        Ok(applied)
    }

    /// Ingest one **sealed** segment file shipped from the primary.
    ///
    /// The file name carries its first LSN; a torn record in a sealed
    /// segment is corruption (the primary only seals at record
    /// boundaries), and a first LSN beyond `applied + 1` is a shipping gap
    /// — the segment between was lost or recycled unseen. Returns the
    /// number of records applied (0 when the whole segment was already
    /// applied).
    pub fn ingest_segment(&self, path: &Path) -> CoreResult<u64> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let first_lsn = segment::parse_segment_name(name).ok_or_else(|| {
            CoreError::Recovery(format!("{name:?} is not a WAL segment file name"))
        })?;
        let bytes = std::fs::read(path).map_err(obr_storage::StorageError::Io)?;
        self.ingest_segment_bytes(first_lsn, &bytes, true, None)
    }

    /// Ingest a segment shipped as raw bytes — the network transport path
    /// (the wire carries `(first_lsn, sealed, bytes)` frames; see
    /// PROTOCOL.md §7).
    ///
    /// For a **sealed** segment a torn record is corruption, exactly as in
    /// [`Self::ingest_segment`]. For the **active** segment (`sealed =
    /// false`) a torn tail is simply the primary's in-flight write: the
    /// intact prefix is applied and the tail ignored. `apply_upto` caps
    /// application at the primary's durable LSN so records that were
    /// written but not yet fsynced on the primary are not replayed ahead
    /// of durability.
    pub fn ingest_segment_bytes(
        &self,
        first_lsn: Lsn,
        bytes: &[u8],
        sealed: bool,
        apply_upto: Option<Lsn>,
    ) -> CoreResult<u64> {
        let scan = LogReader::scan(bytes);
        if sealed {
            if let Some(tail) = scan.torn {
                return Err(CoreError::Recovery(format!(
                    "sealed segment at LSN {first_lsn} is torn at byte {}: \
                     refusing to ship a partial segment",
                    tail.offset
                )));
            }
        }
        let upto = apply_upto.unwrap_or(Lsn(u64::MAX));
        let records: Vec<(Lsn, LogRecord)> = scan
            .records
            .into_iter()
            .enumerate()
            .map(|(i, rec)| (Lsn(first_lsn.0 + i as u64), rec))
            .filter(|(lsn, _)| *lsn <= upto)
            .collect();
        let n = self.apply_batch(&records)?;
        if sealed && n > 0 {
            let mut p = self.progress.lock();
            p.segments += 1;
            self.metrics.segments_ingested.inc();
        }
        Ok(n)
    }

    /// Ingest every segment under the primary's WAL directory: sealed
    /// segments whole, then the active segment's intact prefix (its torn
    /// tail, if any, is the primary's in-flight write and is simply not
    /// shipped yet). This is the out-of-process catch-up path; a live
    /// in-process replica uses [`Self::sync_from`] for the tail instead.
    pub fn ingest_dir(&self, wal_dir: &Path) -> CoreResult<u64> {
        let segments = segment::list_segments(wal_dir).map_err(obr_storage::StorageError::Io)?;
        let Some(last) = segments.len().checked_sub(1) else {
            return Ok(0);
        };
        let mut total = 0u64;
        for (i, (first_lsn, path)) in segments.iter().enumerate() {
            if i != last {
                total += self.ingest_segment(path)?;
                continue;
            }
            // Active segment: apply the intact prefix only.
            let bytes = std::fs::read(path).map_err(obr_storage::StorageError::Io)?;
            let scan = LogReader::scan(&bytes);
            let records: Vec<(Lsn, LogRecord)> = scan
                .records
                .into_iter()
                .enumerate()
                .map(|(j, rec)| (Lsn(first_lsn.0 + j as u64), rec))
                .collect();
            total += self.apply_batch(&records)?;
        }
        Ok(total)
    }

    /// Tail-stream from a live primary's log: apply every durable record
    /// past the applied LSN. Errors with [`CoreError::Recovery`] when the
    /// primary has already recycled records the replica never saw.
    pub fn sync_from(&self, log: &LogManager) -> CoreResult<u64> {
        let next = Lsn(self.applied_lsn().0 + 1);
        if next < log.first_lsn() {
            return Err(CoreError::Recovery(format!(
                "replica fell behind: needs LSN {next} but the primary's log \
                 now starts at {} (segments recycled); re-seed from a snapshot",
                log.first_lsn()
            )));
        }
        let durable = log.durable_lsn();
        let records: Vec<(Lsn, LogRecord)> = log
            .records_from(next)?
            .into_iter()
            .filter(|(lsn, _)| *lsn <= durable)
            .collect();
        let n = self.apply_batch(&records)?;
        self.metrics
            .lag
            .set(durable.0.saturating_sub(self.applied_lsn().0));
        Ok(n)
    }

    /// How many durable records the replica is behind `log`.
    pub fn lag(&self, log: &LogManager) -> u64 {
        let lag = log.durable_lsn().0.saturating_sub(self.applied_lsn().0);
        self.metrics.lag.set(lag);
        lag
    }

    /// Point lookup against the replica's current tree.
    pub fn get(&self, key: u64) -> CoreResult<Option<Vec<u8>>> {
        Ok(self.db.tree().search(key)?)
    }

    /// Range scan `[lo, hi]` against the replica's current tree.
    pub fn scan(&self, lo: u64, hi: u64) -> CoreResult<Vec<(u64, Vec<u8>)>> {
        Ok(self.db.tree().range_scan(lo, hi)?)
    }

    /// Every record in the replica's current tree.
    pub fn scan_all(&self) -> CoreResult<Vec<(u64, Vec<u8>)>> {
        Ok(self.db.tree().collect_all()?)
    }
}
