//! Admission control for the network frontend: bounded sessions and a
//! bounded in-flight request queue, both shedding with a typed *busy*
//! outcome instead of queueing unboundedly or blocking.
//!
//! The gate is two permit counters over plain atomics (no locks, no
//! waiting — an admission decision is a single CAS loop):
//!
//! * **Session permits** bound how many client connections may be live at
//!   once ([`EngineConfig::max_sessions`](crate::EngineConfig)). A
//!   connection that cannot get one is told `BUSY` at handshake time and
//!   closed — it never consumes a server thread.
//! * **Request permits** bound how many data-plane requests may be in
//!   flight across all sessions
//!   ([`EngineConfig::admission_queue`](crate::EngineConfig)). This is the
//!   server's bounded work queue: with thread-per-session execution a
//!   permit is held exactly for the duration of one request, so the knob
//!   caps the engine-side concurrency the frontend can generate. A request
//!   that cannot get a permit is answered `BUSY` immediately — shed, not
//!   enqueued — which keeps tail latency bounded under overload (the
//!   client retries with backoff; see PROTOCOL.md §6).
//!
//! Permits are RAII guards, so an early return or a panicking handler can
//! never leak capacity.

use obr_sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use obr_obs::{Counter, Gauge, Registry};

/// Why admission was refused. The server maps both to the wire-level
/// `BUSY` error code, with the variant in the message for operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Busy {
    /// Every session slot is taken (`max_sessions`).
    Sessions,
    /// Every in-flight request slot is taken (`admission_queue`).
    Requests,
}

impl std::fmt::Display for Busy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Busy::Sessions => write!(f, "session limit reached"),
            Busy::Requests => write!(f, "admission queue full"),
        }
    }
}

#[derive(Debug, Default)]
struct GateMetrics {
    sessions: Gauge,
    sessions_total: Counter,
    sessions_shed: Counter,
    inflight: Gauge,
    requests_shed: Counter,
}

#[derive(Debug)]
struct GateInner {
    max_sessions: usize,
    queue_slots: usize,
    sessions: AtomicUsize,
    inflight: AtomicUsize,
    metrics: GateMetrics,
}

/// The admission gate shared by the listener and every session thread.
#[derive(Clone, Debug)]
pub struct AdmissionGate {
    inner: Arc<GateInner>,
}

impl AdmissionGate {
    /// A gate admitting at most `max_sessions` concurrent sessions and
    /// `queue_slots` concurrent in-flight requests. Zero `queue_slots` is
    /// legal and sheds every data-plane request (useful for tests and for
    /// draining a server administratively).
    pub fn new(max_sessions: usize, queue_slots: usize) -> AdmissionGate {
        AdmissionGate {
            inner: Arc::new(GateInner {
                max_sessions,
                queue_slots,
                sessions: AtomicUsize::new(0),
                inflight: AtomicUsize::new(0),
                metrics: GateMetrics::default(),
            }),
        }
    }

    /// Publish the gate's live handles into a metrics registry
    /// (`server_sessions`, `server_sessions_total`, `server_sessions_shed`,
    /// `server_inflight`, `server_requests_shed`).
    pub fn register_metrics(&self, reg: &Registry) {
        let m = &self.inner.metrics;
        reg.register_gauge("server_sessions", &m.sessions);
        reg.register_counter("server_sessions_total", &m.sessions_total);
        reg.register_counter("server_sessions_shed", &m.sessions_shed);
        reg.register_gauge("server_inflight", &m.inflight);
        reg.register_counter("server_requests_shed", &m.requests_shed);
    }

    /// Session-slot ceiling this gate enforces.
    pub fn max_sessions(&self) -> usize {
        self.inner.max_sessions
    }

    /// In-flight request ceiling this gate enforces.
    pub fn queue_slots(&self) -> usize {
        self.inner.queue_slots
    }

    /// Live sessions right now.
    pub fn sessions(&self) -> usize {
        // relaxed: monotonic-ish observability read; admission itself uses
        // the CAS loop below, never this value.
        self.inner.sessions.load(Ordering::Relaxed)
    }

    /// In-flight requests right now.
    pub fn inflight(&self) -> usize {
        // relaxed: observability read only.
        self.inner.inflight.load(Ordering::Relaxed)
    }

    fn try_take(slot: &AtomicUsize, limit: usize) -> bool {
        // relaxed: the counter guards capacity only — no data is published
        // through it, so the CAS needs atomicity, not ordering.
        slot.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            (n < limit).then_some(n + 1)
        })
        .is_ok()
    }

    /// Try to admit one session. `Err(Busy::Sessions)` means the caller
    /// should answer `BUSY` and close; `Ok` returns an RAII permit that
    /// frees the slot on drop.
    pub fn admit_session(&self) -> Result<SessionPermit, Busy> {
        if !Self::try_take(&self.inner.sessions, self.inner.max_sessions) {
            self.inner.metrics.sessions_shed.inc();
            return Err(Busy::Sessions);
        }
        self.inner.metrics.sessions.inc();
        self.inner.metrics.sessions_total.inc();
        Ok(SessionPermit { gate: self.clone() })
    }

    /// Try to start one request. `Err(Busy::Requests)` means shed (answer
    /// `BUSY` now); `Ok` returns an RAII permit held for the request's
    /// duration.
    pub fn start_request(&self) -> Result<RequestPermit, Busy> {
        if !Self::try_take(&self.inner.inflight, self.inner.queue_slots) {
            self.inner.metrics.requests_shed.inc();
            return Err(Busy::Requests);
        }
        self.inner.metrics.inflight.inc();
        Ok(RequestPermit { gate: self.clone() })
    }
}

/// RAII session slot; dropping it re-opens the slot.
#[derive(Debug)]
pub struct SessionPermit {
    gate: AdmissionGate,
}

impl Drop for SessionPermit {
    fn drop(&mut self) {
        // relaxed: capacity release; the next admission CAS observes it.
        self.gate.inner.sessions.fetch_sub(1, Ordering::Relaxed);
        self.gate.inner.metrics.sessions.dec();
    }
}

/// RAII in-flight request slot; dropping it re-opens the slot.
#[derive(Debug)]
pub struct RequestPermit {
    gate: AdmissionGate,
}

impl Drop for RequestPermit {
    fn drop(&mut self) {
        // relaxed: capacity release; the next admission CAS observes it.
        self.gate.inner.inflight.fetch_sub(1, Ordering::Relaxed);
        self.gate.inner.metrics.inflight.dec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_slots_are_bounded_and_refundable() {
        let gate = AdmissionGate::new(2, 8);
        let a = gate.admit_session().unwrap();
        let b = gate.admit_session().unwrap();
        assert_eq!(gate.admit_session().unwrap_err(), Busy::Sessions);
        drop(a);
        let c = gate.admit_session().unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.sessions(), 0);
    }

    #[test]
    fn zero_queue_sheds_every_request() {
        let gate = AdmissionGate::new(4, 0);
        assert_eq!(gate.start_request().unwrap_err(), Busy::Requests);
    }

    #[test]
    fn request_permits_bound_concurrency_under_contention() {
        let gate = AdmissionGate::new(64, 3);
        let peak = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gate = gate.clone();
                let peak = std::sync::Arc::clone(&peak);
                s.spawn(move || {
                    for _ in 0..200 {
                        match gate.start_request() {
                            Ok(_p) => {
                                let now = gate.inflight();
                                // relaxed: test-only max tracking.
                                peak.fetch_max(now, Ordering::Relaxed);
                            }
                            Err(Busy::Requests) => {}
                            Err(other) => panic!("unexpected {other:?}"),
                        }
                    }
                });
            }
        });
        // relaxed: test-only read after joins.
        assert!(peak.load(Ordering::Relaxed) <= 3);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn metrics_register_and_count_sheds() {
        let gate = AdmissionGate::new(1, 1);
        let reg = Registry::new();
        gate.register_metrics(&reg);
        let _s = gate.admit_session().unwrap();
        let _ = gate.admit_session();
        let _r = gate.start_request().unwrap();
        let _ = gate.start_request();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("server_sessions_shed"), 1);
        assert_eq!(snap.counter("server_requests_shed"), 1);
        assert_eq!(snap.gauge("server_sessions"), 1);
        assert_eq!(snap.gauge("server_inflight"), 1);
    }
}
