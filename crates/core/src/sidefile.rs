//! The side file of §7.2: a small system table that catches base-page
//! changes made by user transactions while pass 3 is copying the upper
//! levels of the tree.
//!
//! Each entry records one `(low_key -> leaf)` mapping change. Appends and
//! removals are logged (as record operations on the reserved side-file
//! "page"), so recovery can rebuild the table; per §7.3, entries for keys
//! past the most recent stable key are dropped at recovery because the
//! reorganizer will re-read those base pages anyway.

use obr_sync::atomic::{AtomicU64, Ordering};
use std::collections::BTreeMap;
use std::sync::Arc;

use obr_sync::Mutex;

use obr_storage::{Lsn, PageId, StorageError, StorageResult};
use obr_wal::{LogManager, LogRecord, TxnId};

/// The reserved "page" id under which side-file operations are logged.
pub const SIDE_FILE_PAGE: PageId = PageId(u32::MAX - 1);

/// One side-file operation on a base-page entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SideOp {
    /// Add or repoint the entry `key -> leaf`.
    Upsert(PageId),
    /// Remove the entry for `key`.
    Remove,
}

/// A recorded side-file entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SideEntry {
    /// The base-entry low key affected.
    pub key: u64,
    /// What happened to it.
    pub op: SideOp,
}

impl SideEntry {
    /// Encode for the log record value field.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(13);
        v.extend_from_slice(&self.key.to_le_bytes());
        match self.op {
            SideOp::Upsert(p) => {
                v.push(1);
                v.extend_from_slice(&p.0.to_le_bytes());
            }
            SideOp::Remove => v.push(0),
        }
        v
    }

    /// Decode from a log record value field.
    pub fn decode(bytes: &[u8]) -> StorageResult<SideEntry> {
        if bytes.len() < 9 {
            return Err(StorageError::Corrupt("short side entry".into()));
        }
        let key = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let op = match bytes[8] {
            0 => SideOp::Remove,
            1 => {
                if bytes.len() < 13 {
                    return Err(StorageError::Corrupt("short side upsert".into()));
                }
                SideOp::Upsert(PageId(u32::from_le_bytes(bytes[9..13].try_into().unwrap())))
            }
            t => return Err(StorageError::Corrupt(format!("bad side op tag {t}"))),
        };
        Ok(SideEntry { key, op })
    }
}

/// The side file: an ordered queue of [`SideEntry`]s keyed by append
/// sequence number. Appends while pass 3 runs; drained during catch-up and
/// the switch.
pub struct SideFile {
    log: Arc<LogManager>,
    seq: AtomicU64,
    entries: Mutex<BTreeMap<u64, SideEntry>>,
    appended_total: AtomicU64,
    /// Current queue depth with its high-watermark: the backlog pass-3
    /// catch-up must drain. Registered as `side_file_depth`.
    depth: obr_obs::Gauge,
    /// Same as `appended_total`, as a registry handle (`side_file_appends`).
    appends: obr_obs::Counter,
}

impl SideFile {
    /// A fresh, empty side file.
    pub fn new(log: Arc<LogManager>) -> SideFile {
        SideFile {
            log,
            seq: AtomicU64::new(1),
            entries: Mutex::named(BTreeMap::new(), "side.entries"),
            appended_total: AtomicU64::new(0),
            depth: obr_obs::Gauge::new(),
            appends: obr_obs::Counter::new(),
        }
    }

    /// Publish this side file's depth gauge and append counter into `reg`
    /// under the canonical `side_file_*` names.
    pub fn register_metrics(&self, reg: &obr_obs::Registry) {
        reg.register_gauge("side_file_depth", &self.depth);
        reg.register_counter("side_file_appends", &self.appends);
    }

    /// Append an entry; the insertion is logged (like any table insert).
    pub fn append(&self, txn: TxnId, entry: SideEntry) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.log.append(&LogRecord::TxnInsert {
            txn,
            page: SIDE_FILE_PAGE,
            key: seq,
            value: entry.encode(),
            prev_lsn: Lsn::ZERO,
        });
        let depth = {
            let mut g = self.entries.lock();
            g.insert(seq, entry);
            g.len()
        };
        self.appended_total.fetch_add(1, Ordering::Relaxed);
        self.appends.inc();
        self.depth.set(depth as u64);
        seq
    }

    /// Pop the oldest entry (catch-up application); the removal is logged.
    pub fn pop_front(&self, txn: TxnId) -> Option<(u64, SideEntry)> {
        let mut g = self.entries.lock();
        let (&seq, &entry) = g.iter().next()?;
        g.remove(&seq);
        let depth = g.len();
        drop(g);
        self.depth.set(depth as u64);
        self.log.append(&LogRecord::TxnDelete {
            txn,
            page: SIDE_FILE_PAGE,
            key: seq,
            old_value: entry.encode(),
            prev_lsn: Lsn::ZERO,
        });
        Some((seq, entry))
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries ever appended (E7 metric).
    pub fn appended_total(&self) -> u64 {
        self.appended_total.load(Ordering::Relaxed)
    }

    /// Recovery: re-install an entry replayed from the log.
    pub fn restore(&self, seq: u64, entry: SideEntry) {
        let mut g = self.entries.lock();
        g.insert(seq, entry);
        self.depth.set(g.len() as u64);
        let next = self.seq.load(Ordering::Relaxed).max(seq + 1);
        self.seq.store(next, Ordering::Relaxed);
    }

    /// Recovery: drop a replayed entry (its removal was logged).
    pub fn unrestore(&self, seq: u64) {
        let mut g = self.entries.lock();
        g.remove(&seq);
        self.depth.set(g.len() as u64);
    }

    /// §7.3: at recovery, entries for keys after the most recent stable key
    /// are dropped — the reorganizer will re-read those base pages. Returns
    /// how many were dropped.
    pub fn trim_after(&self, stable_key: u64) -> usize {
        let mut g = self.entries.lock();
        let before = g.len();
        g.retain(|_, e| e.key < stable_key);
        self.depth.set(g.len() as u64);
        before - g.len()
    }

    /// Snapshot for diagnostics.
    pub fn snapshot(&self) -> Vec<(u64, SideEntry)> {
        self.entries.lock().iter().map(|(&s, &e)| (s, e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf() -> SideFile {
        SideFile::new(Arc::new(LogManager::new()))
    }

    #[test]
    fn entry_codec_round_trip() {
        for e in [
            SideEntry {
                key: 42,
                op: SideOp::Upsert(PageId(7)),
            },
            SideEntry {
                key: 0,
                op: SideOp::Remove,
            },
        ] {
            assert_eq!(SideEntry::decode(&e.encode()).unwrap(), e);
        }
        assert!(SideEntry::decode(&[1, 2]).is_err());
        assert!(SideEntry::decode([0; 9][..].to_vec().as_slice()).is_ok());
    }

    #[test]
    fn fifo_order_preserved() {
        let f = sf();
        for k in [5u64, 1, 9] {
            f.append(
                TxnId(1),
                SideEntry {
                    key: k,
                    op: SideOp::Remove,
                },
            );
        }
        let keys: Vec<u64> =
            std::iter::from_fn(|| f.pop_front(TxnId(1)).map(|(_, e)| e.key)).collect();
        assert_eq!(keys, vec![5, 1, 9]); // append order, not key order
        assert!(f.is_empty());
        assert_eq!(f.appended_total(), 3);
    }

    #[test]
    fn append_and_pop_are_logged() {
        let log = Arc::new(LogManager::new());
        let f = SideFile::new(Arc::clone(&log));
        f.append(
            TxnId(3),
            SideEntry {
                key: 1,
                op: SideOp::Upsert(PageId(2)),
            },
        );
        f.pop_front(TxnId(3)).unwrap();
        let recs = log.records_from(Lsn(1)).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0].1, LogRecord::TxnInsert { page, .. } if page == SIDE_FILE_PAGE));
        assert!(matches!(recs[1].1, LogRecord::TxnDelete { page, .. } if page == SIDE_FILE_PAGE));
    }

    #[test]
    fn trim_after_stable_key() {
        let f = sf();
        for k in [10u64, 20, 30] {
            f.append(
                TxnId(1),
                SideEntry {
                    key: k,
                    op: SideOp::Remove,
                },
            );
        }
        // Stable key 20: entries for keys >= 20 will be re-read; drop them.
        assert_eq!(f.trim_after(20), 2);
        assert_eq!(f.len(), 1);
        assert_eq!(f.snapshot()[0].1.key, 10);
    }

    #[test]
    fn restore_respects_sequence() {
        let f = sf();
        f.restore(
            5,
            SideEntry {
                key: 9,
                op: SideOp::Remove,
            },
        );
        // Future appends must come after the restored sequence.
        let seq = f.append(
            TxnId(1),
            SideEntry {
                key: 10,
                op: SideOp::Remove,
            },
        );
        assert!(seq > 5);
        f.unrestore(5);
        assert_eq!(f.len(), 1);
    }
}
