//! A background reorganization daemon: the deployment shape the paper
//! implies ("the reorganizer runs in the background as one process", §8) —
//! it periodically inspects the tree and runs only the passes the
//! [`ReorgTrigger`] calls for.

use obr_sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use obr_sync::Mutex;

use crate::db::Database;
use crate::error::{CoreError, CoreResult};
use crate::reorg::{ReorgConfig, ReorgDecision, ReorgTrigger, Reorganizer};

/// Optional housekeeping the daemon performs alongside reorganization.
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonOptions {
    /// When set, any cycle that finds the WAL's on-disk footprint above
    /// this many bytes drives [`Database::truncate_log`] (sharp
    /// checkpoint plus sealed-segment recycling), keeping a long-lived
    /// service's log bounded.
    pub wal_budget_bytes: Option<u64>,
}

/// Handle to a running background reorganizer.
pub struct ReorgDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<CoreResult<Vec<ReorgDecision>>>>,
    runs: Arc<Mutex<Vec<ReorgDecision>>>,
}

impl ReorgDaemon {
    /// Spawn the daemon: every `interval` it evaluates `trigger` and runs
    /// whichever passes are needed.
    pub fn spawn(
        db: Arc<Database>,
        cfg: ReorgConfig,
        trigger: ReorgTrigger,
        interval: Duration,
    ) -> ReorgDaemon {
        Self::spawn_with_options(db, cfg, trigger, interval, DaemonOptions::default())
    }

    /// Like [`Self::spawn`], with housekeeping options (WAL truncation
    /// budget).
    ///
    /// A failed cycle — reorganization error, checkpoint flush error, log
    /// I/O error — is counted (`reorg_daemon_errors`), traced
    /// (`daemon_error`), and retried on the next interval; it never kills
    /// the daemon thread. Only a panic (a bug, not an environmental
    /// failure) ends the loop early.
    pub fn spawn_with_options(
        db: Arc<Database>,
        cfg: ReorgConfig,
        trigger: ReorgTrigger,
        interval: Duration,
        opts: DaemonOptions,
    ) -> ReorgDaemon {
        let stop = Arc::new(AtomicBool::new(false));
        let runs = Arc::new(Mutex::named(Vec::new(), "daemon.runs"));
        let stop2 = Arc::clone(&stop);
        let runs2 = Arc::clone(&runs);
        let handle = std::thread::Builder::new()
            .name("obr-reorg-daemon".into())
            .spawn(move || {
                let mut decisions = Vec::new();
                let mut consecutive_errors = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    // Sleep in small slices so stop() is responsive.
                    let mut slept = Duration::ZERO;
                    while slept < interval && !stop2.load(Ordering::Relaxed) {
                        let slice = Duration::from_millis(10).min(interval - slept);
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    db.core_metrics().daemon_cycles.inc();
                    db.tracer()
                        .emit(obr_obs::TraceKind::DaemonCycle, 0, 0, 0, 0, 0);
                    match Self::run_cycle(&db, &cfg, trigger, &opts) {
                        Ok(decision) => {
                            consecutive_errors = 0;
                            if decision != ReorgDecision::default() {
                                db.core_metrics().daemon_runs.inc();
                                db.tracer().emit(
                                    obr_obs::TraceKind::DaemonRun,
                                    0,
                                    0,
                                    0,
                                    u64::from(decision.compacted)
                                        | (u64::from(decision.swapped) << 1),
                                    u64::from(decision.shrunk),
                                );
                                decisions.push(decision);
                                runs2.lock().push(decision);
                            }
                        }
                        Err(e) => {
                            // Logged retry: a transient flush or I/O error
                            // must not abort the daemon (the next cycle
                            // simply tries again).
                            consecutive_errors += 1;
                            db.core_metrics().daemon_errors.inc();
                            db.tracer().emit(
                                obr_obs::TraceKind::DaemonError,
                                0,
                                0,
                                0,
                                consecutive_errors,
                                0,
                            );
                            eprintln!(
                                "obr-reorg-daemon: cycle failed (retrying next interval): {e}"
                            );
                        }
                    }
                }
                Ok(decisions)
            })
            .expect("spawn reorg daemon");
        ReorgDaemon {
            stop,
            handle: Some(handle),
            runs,
        }
    }

    /// One daemon cycle: reorganize if the trigger fires, then enforce the
    /// WAL budget. Every fallible step is propagated so the loop above can
    /// count/log and retry.
    fn run_cycle(
        db: &Arc<Database>,
        cfg: &ReorgConfig,
        trigger: ReorgTrigger,
        opts: &DaemonOptions,
    ) -> CoreResult<ReorgDecision> {
        let reorg = Reorganizer::new(Arc::clone(db), cfg.clone());
        let decision = reorg.run_if_needed(trigger)?;
        if let Some(budget) = opts.wal_budget_bytes {
            if db.log().on_disk_bytes() > budget {
                db.truncate_log()?;
                db.core_metrics().daemon_truncations.inc();
            }
        }
        Ok(decision)
    }

    /// Decisions made so far (non-blocking snapshot).
    pub fn decisions(&self) -> Vec<ReorgDecision> {
        self.runs.lock().clone()
    }

    /// Signal the daemon and wait for it to finish its current cycle.
    /// Returns every non-trivial decision it made.
    pub fn stop(mut self) -> CoreResult<Vec<ReorgDecision>> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h
                .join()
                .map_err(|_| CoreError::Recovery("reorg daemon panicked".into()))?,
            None => Ok(Vec::new()),
        }
    }
}

impl Drop for ReorgDaemon {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_btree::SidePointerMode;
    use obr_storage::{DiskManager, InMemoryDisk};

    fn sparse_db() -> Arc<Database> {
        let disk = Arc::new(InMemoryDisk::new(8192));
        let db =
            Database::create(disk as Arc<dyn DiskManager>, 8192, SidePointerMode::TwoWay).unwrap();
        let records: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, vec![0x44; 64])).collect();
        db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
        db
    }

    #[test]
    fn daemon_heals_a_degraded_tree_then_idles() {
        let db = sparse_db();
        let expected = db.tree().collect_all().unwrap();
        let daemon = ReorgDaemon::spawn(
            Arc::clone(&db),
            ReorgConfig::default(),
            ReorgTrigger::default(),
            Duration::from_millis(20),
        );
        // Wait until it has acted once.
        for _ in 0..200 {
            if !daemon.decisions().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let decisions = daemon.stop().unwrap();
        assert!(!decisions.is_empty(), "the sparse tree must trigger a run");
        assert!(decisions[0].compacted);
        // Subsequent cycles were no-ops (healthy tree): at most a couple of
        // decisions total.
        assert!(decisions.len() <= 2, "{decisions:?}");
        db.tree().validate().unwrap();
        assert_eq!(db.tree().collect_all().unwrap(), expected);
        assert!(db.tree().stats().unwrap().avg_leaf_fill > 0.7);
    }

    #[test]
    fn dropping_the_daemon_stops_it() {
        let db = sparse_db();
        {
            let _daemon = ReorgDaemon::spawn(
                Arc::clone(&db),
                ReorgConfig::default(),
                ReorgTrigger::default(),
                Duration::from_millis(5),
            );
            std::thread::sleep(Duration::from_millis(30));
        } // drop
        db.tree().validate().unwrap();
    }
}
