//! §5.2: "work must be undone if the reorganizer has already moved records
//! and gets into a deadlock situation." This test engineers exactly that —
//! a user holds an S lock on the unit's base page (so the reorganizer's
//! R→X upgrade must wait *after* its MOVEs were applied), then the user
//! requests the tree lock in X, closing a cycle. The reorganizer is always
//! the victim: it must undo the unit with compensating MOVE records, give
//! up its locks, and succeed on retry.

use std::sync::Arc;
use std::time::Duration;

use obr_btree::SidePointerMode;
use obr_core::{Database, ReorgConfig, Reorganizer};
use obr_lock::{LockMode, ResourceId};
use obr_storage::{DiskManager, InMemoryDisk};

fn val(k: u64) -> Vec<u8> {
    let mut v = k.to_le_bytes().to_vec();
    v.resize(64, 0x99);
    v
}

#[test]
fn reorganizer_undoes_moved_records_when_victimized() {
    let disk = Arc::new(InMemoryDisk::new(8192));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        8192,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..1500u64).map(|k| (k, val(k))).collect();
    db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
    let expected = db.tree().collect_all().unwrap();
    let first_base = db.tree().base_pages().unwrap()[0];
    let gen = db.tree().generation().unwrap();

    // The user reads the base page (S is compatible with the reorganizer's
    // R, so the unit proceeds all the way through its MOVEs).
    let user = db.new_owner();
    db.locks()
        .lock(user, ResourceId::Page(first_base.0), LockMode::S)
        .unwrap();

    let reorg = Reorganizer::new(
        Arc::clone(&db),
        ReorgConfig {
            swap_pass: false,
            shrink_pass: false,
            ..ReorgConfig::default()
        },
    );
    std::thread::scope(|s| {
        let handle = s.spawn(|| reorg.pass1_compact());
        // Give the first unit time to move its records and block on the
        // base-page X upgrade (our S lock holds it back).
        std::thread::sleep(Duration::from_millis(150));
        // Close the cycle: the user now wants the tree lock in X, which the
        // reorganizer holds in IX. Deadlock; the reorganizer is the victim.
        let locks = Arc::clone(db.locks());
        let user_wait = s.spawn(move || locks.lock(user, ResourceId::Tree(gen), LockMode::X));
        // Once the reorganizer has been victimized (and undone its unit),
        // its released IX lets the user's X through.
        user_wait.join().unwrap().unwrap();
        // Let the reorganizer retry against our still-held locks once or
        // twice, then get out of the way entirely.
        std::thread::sleep(Duration::from_millis(50));
        db.locks().release_all(user);
        handle.join().unwrap().unwrap();
    });

    let stats = reorg.stats();
    assert!(
        stats.units_undone >= 1,
        "the victimized unit must be undone via compensating moves: {stats:?}"
    );
    assert!(
        stats.deadlock_retries >= 1,
        "the reorganizer must have retried after the deadlock: {stats:?}"
    );
    // And the reorganization still completed correctly afterwards.
    db.tree().validate().unwrap();
    assert_eq!(db.tree().collect_all().unwrap(), expected);
    assert!(db.tree().stats().unwrap().avg_leaf_fill > 0.7);
}
