//! Targeted tests for pass-3 machinery: the incremental upper-level builder
//! and the new-tree editor that applies side-file entries (including the
//! split and free-at-empty cascade paths a busy catch-up would hit).

use std::sync::Arc;

use obr_btree::builder::UpperBuilder;
use obr_btree::SidePointerMode;
use obr_core::{Database, NewTreeEditor, SideEntry, SideOp};
use obr_storage::{DiskManager, InMemoryDisk, Lsn};
use obr_wal::TxnId;

fn val(k: u64) -> Vec<u8> {
    let mut v = k.to_le_bytes().to_vec();
    v.resize(64, 0x11);
    v
}

/// Build a database plus a freshly built (unanchored) copy of its upper
/// levels, like pass 3 does right before catch-up.
fn setup(node_fill: f64) -> (Arc<Database>, obr_btree::builder::BuiltTree) {
    let disk = Arc::new(InMemoryDisk::new(16_384));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        16_384,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..3000u64).map(|k| (k * 2, val(k))).collect();
    db.tree().bulk_load(&records, 0.9, 0.5).unwrap();
    // Read the base pages left to right, exactly like the pass-3 loop.
    let mut builder = UpperBuilder::new(
        Arc::clone(db.tree().pool()),
        Arc::clone(db.tree().fsm()),
        0,
        node_fill,
    );
    for base in db.tree().base_pages().unwrap() {
        for (k, leaf) in db.tree().base_entries(base).unwrap() {
            builder.push(k, leaf).unwrap();
        }
    }
    let built = builder.finish().unwrap();
    (db, built)
}

/// Anchor the new tree and fully validate it.
fn anchor_and_validate(db: &Arc<Database>, root: obr_storage::PageId, height: u8) -> u64 {
    db.tree().set_anchor(root, height, Lsn::ZERO).unwrap();
    db.tree().validate().unwrap()
}

#[test]
fn rebuilt_upper_levels_reach_every_leaf() {
    let (db, built) = setup(0.9);
    let expected = db.tree().collect_all().unwrap();
    let n = anchor_and_validate(&db, built.root, built.height);
    assert_eq!(n as usize, expected.len());
    assert_eq!(db.tree().collect_all().unwrap(), expected);
}

#[test]
fn editor_upserts_split_full_base_pages_and_grow_the_root() {
    // Tiny node fill: every new-tree page holds 2 entries, so a handful of
    // upserts forces base splits and root growth inside the editor.
    let (db, built) = setup(0.0);
    let before_height = built.height;
    let mut editor = NewTreeEditor::new(&db, built.root, built.height, 0.0);
    // Simulate concurrent leaf splits behind the frontier: create real new
    // leaves by splitting the old tree, then feed the same entries the
    // side file would carry.
    let mut new_entries = Vec::new();
    for k in 0..40u64 {
        let key = k * 2 + 1; // odd keys split existing full leaves
        db.tree()
            .insert(TxnId(1), Lsn::ZERO, key, &val(key))
            .unwrap();
        // Find where the key landed in the *old* tree.
        let leaf = db.tree().leaf_for(key).unwrap();
        let path = db.tree().path_for(key).unwrap();
        let base = path[path.len() - 2];
        let entry = db
            .tree()
            .base_entries(base)
            .unwrap()
            .into_iter()
            .find(|(_, c)| *c == leaf)
            .unwrap();
        new_entries.push(entry);
    }
    new_entries.sort();
    new_entries.dedup();
    for (k, leaf) in new_entries {
        editor
            .apply(SideEntry {
                key: k,
                op: SideOp::Upsert(leaf),
            })
            .unwrap();
    }
    assert!(
        editor.height >= before_height,
        "2-entry pages must have split upward"
    );
    let expected = db.tree().collect_all().unwrap();
    anchor_and_validate(&db, editor.root, editor.height);
    assert_eq!(db.tree().collect_all().unwrap(), expected);
}

#[test]
fn editor_removals_cascade_empty_pages_away() {
    let (db, built) = setup(0.0); // 2 entries per new-tree page
    let expected_before = db.tree().collect_all().unwrap();
    let mut editor = NewTreeEditor::new(&db, built.root, built.height, 0.0);
    // Delete whole leaves from the old tree (free-at-empty) and feed the
    // removals through the editor, like the side file would.
    let bases = db.tree().base_pages().unwrap();
    let doomed: Vec<(u64, obr_storage::PageId)> = db
        .tree()
        .base_entries(bases[0])
        .unwrap()
        .into_iter()
        .take(3)
        .collect();
    let mut removed_keys = Vec::new();
    for (entry_key, leaf) in doomed {
        let keys = {
            let g = db.tree().pool().fetch(leaf).unwrap();
            let page = g.read();
            obr_btree::LeafRef::new(&page).keys()
        };
        for k in keys {
            db.tree().delete(TxnId(1), Lsn::ZERO, k).unwrap();
            removed_keys.push(k);
        }
        editor
            .apply(SideEntry {
                key: entry_key,
                op: SideOp::Remove,
            })
            .unwrap();
    }
    let expected: Vec<(u64, Vec<u8>)> = expected_before
        .into_iter()
        .filter(|(k, _)| !removed_keys.contains(k))
        .collect();
    anchor_and_validate(&db, editor.root, editor.height);
    assert_eq!(db.tree().collect_all().unwrap(), expected);
}

#[test]
fn builder_resume_equals_uninterrupted_build() {
    // Build half the entries, "crash", resume from the durable spine, push
    // the rest: the result must route every key exactly like a one-shot
    // build.
    let disk = Arc::new(InMemoryDisk::new(16_384));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        16_384,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..4000u64).map(|k| (k, val(k))).collect();
    db.tree().bulk_load(&records, 0.9, 0.3).unwrap();
    let mut entries = Vec::new();
    for base in db.tree().base_pages().unwrap() {
        entries.extend(db.tree().base_entries(base).unwrap());
    }
    assert!(entries.len() > 20);
    let half = entries.len() / 2;

    let pool = Arc::clone(db.tree().pool());
    let fsm = Arc::clone(db.tree().fsm());
    let mut b1 = UpperBuilder::new(Arc::clone(&pool), Arc::clone(&fsm), 0, 0.1);
    for (k, leaf) in &entries[..half] {
        b1.push(*k, *leaf).unwrap();
    }
    // "Stable point": flush everything the builder touched, remember its
    // top page, drop the builder (the crash).
    for p in b1.take_touched() {
        db.pool().flush_page(p).unwrap();
    }
    let top = b1.top_page().unwrap();
    drop(b1);
    // Resume from the durable spine.
    let mut b2 = UpperBuilder::resume(Arc::clone(&pool), Arc::clone(&fsm), 0, 0.1, top).unwrap();
    assert_eq!(b2.last_key(), Some(entries[half - 1].0));
    for (k, leaf) in &entries[half..] {
        b2.push(*k, *leaf).unwrap();
    }
    let built = b2.finish().unwrap();
    let n = anchor_and_validate(&db, built.root, built.height);
    assert_eq!(n, 4000);
}
