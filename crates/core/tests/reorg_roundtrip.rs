//! End-to-end tests of the three-pass reorganization and forward recovery.

use std::sync::Arc;

use obr_btree::SidePointerMode;
use obr_core::{
    recover, Database, FailPoint, FailSite, LogStrategy, PlacementPolicy, ReorgConfig, Reorganizer,
};
use obr_storage::{DiskManager, InMemoryDisk, Lsn};

fn val(k: u64, len: usize) -> Vec<u8> {
    let mut v = k.to_le_bytes().to_vec();
    v.resize(len, 0x5A);
    v
}

/// Build a database whose tree is bulk-loaded sparse (fill `f1`).
fn sparse_db(pages: u32, n: u64, f1: f64) -> (Arc<InMemoryDisk>, Arc<Database>) {
    let disk = Arc::new(InMemoryDisk::new(pages));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        pages as usize,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..n).map(|k| (k * 3, val(k * 3, 64))).collect();
    db.tree().bulk_load(&records, f1, 0.9).unwrap();
    (disk, db)
}

fn cfg(swap: bool, shrink: bool) -> ReorgConfig {
    ReorgConfig {
        swap_pass: swap,
        shrink_pass: shrink,
        ..ReorgConfig::default()
    }
}

#[test]
fn pass1_compacts_without_losing_records() {
    let (_disk, db) = sparse_db(4096, 3000, 0.25);
    let before = db.tree().stats().unwrap();
    let expected = db.tree().collect_all().unwrap();
    assert!(before.avg_leaf_fill < 0.35);

    let reorg = Reorganizer::new(Arc::clone(&db), cfg(false, false));
    reorg.pass1_compact().unwrap();

    let after = db.tree().stats().unwrap();
    assert_eq!(db.tree().collect_all().unwrap(), expected);
    db.tree().validate().unwrap();
    assert!(
        after.avg_leaf_fill > 0.7,
        "fill {} should approach f2=0.9",
        after.avg_leaf_fill
    );
    assert!(
        after.leaf_pages < before.leaf_pages / 2,
        "leaves {} -> {}",
        before.leaf_pages,
        after.leaf_pages
    );
    let stats = reorg.stats();
    assert!(stats.units > 0);
    assert!(stats.pages_freed > 0);
}

#[test]
fn pass2_makes_leaves_contiguous() {
    let (_disk, db) = sparse_db(4096, 3000, 0.25);
    let reorg = Reorganizer::new(Arc::clone(&db), cfg(true, false));
    reorg.pass1_compact().unwrap();
    reorg.pass2_swap_move().unwrap();
    let stats = db.tree().stats().unwrap();
    db.tree().validate().unwrap();
    assert_eq!(
        stats.leaf_discontinuities(),
        0,
        "leaves must be physically contiguous in key order: {:?}",
        stats.leaves_in_key_order
    );
    assert_eq!(
        stats.scan_seek_distance(),
        stats.leaf_pages as u64 - 1,
        "a full scan should seek exactly one page per step"
    );
}

#[test]
fn full_three_pass_run_shrinks_the_tree() {
    // Low node fill at load time -> tall tree; reorganization should shrink.
    let disk = Arc::new(InMemoryDisk::new(8192));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        8192,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..6000u64).map(|k| (k, val(k, 64))).collect();
    db.tree().bulk_load(&records, 0.2, 0.05).unwrap();
    let before = db.tree().stats().unwrap();
    let gen_before = db.tree().generation().unwrap();
    let expected = db.tree().collect_all().unwrap();

    let reorg = Reorganizer::new(Arc::clone(&db), cfg(true, true));
    reorg.run().unwrap();

    let after = db.tree().stats().unwrap();
    assert_eq!(db.tree().collect_all().unwrap(), expected);
    db.tree().validate().unwrap();
    assert!(
        after.height < before.height,
        "height {} -> {} should shrink",
        before.height,
        after.height
    );
    assert!(after.internal_pages < before.internal_pages);
    assert_eq!(db.tree().generation().unwrap(), gen_before + 1);
    assert!(!db.tree().reorg_bit().unwrap());
    // Point lookups still work through the new tree.
    assert_eq!(db.tree().search(4242).unwrap().unwrap(), val(4242, 64));
}

#[test]
fn forward_recovery_completes_interrupted_unit() {
    let (disk, db) = sparse_db(4096, 2000, 0.25);
    let expected = db.tree().collect_all().unwrap();
    db.checkpoint().unwrap();

    // Crash mid-unit: after the first MOVE of the 3rd unit.
    let reorg = Reorganizer::new(Arc::clone(&db), cfg(false, false))
        .with_fail_point(FailPoint::new(FailSite::AfterFirstMove, 2));
    let err = reorg.pass1_compact().unwrap_err();
    assert!(err.to_string().contains("injected crash"));

    // Power failure: half the dirty pages happen to be on disk.
    let mut flip = false;
    db.crash(|_| {
        flip = !flip;
        flip
    })
    .unwrap();

    // Recover on a fresh engine over the surviving disk + log.
    let db2 = Database::reopen(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        Arc::clone(db.log()),
        4096,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let report = recover(&db2).unwrap();
    assert_eq!(
        report.forward_units_completed, 1,
        "the interrupted unit must be finished forward, not rolled back"
    );
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), expected);

    // And the reorganization can continue from LK to completion.
    let reorg2 = Reorganizer::new(Arc::clone(&db2), cfg(false, false));
    reorg2.pass1_compact().unwrap();
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), expected);
    assert!(db2.tree().stats().unwrap().avg_leaf_fill > 0.7);
}

#[test]
fn recovery_with_nothing_flushed_replays_all_work() {
    let (disk, db) = sparse_db(2048, 800, 0.3);
    let expected = db.tree().collect_all().unwrap();
    // Force the log (WAL) but flush no pages at all.
    let reorg = Reorganizer::new(Arc::clone(&db), cfg(false, false));
    reorg.pass1_compact().unwrap();
    db.log().flush_all().unwrap();
    db.crash(|_| false).unwrap();

    let db2 = Database::reopen(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        Arc::clone(db.log()),
        2048,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    recover(&db2).unwrap();
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), expected);
}

#[test]
fn keys_only_logging_is_much_smaller_than_full_records() {
    let (_d1, db1) = sparse_db(4096, 2000, 0.25);
    let (_d2, db2) = sparse_db(4096, 2000, 0.25);
    let mut c1 = cfg(false, false);
    c1.log_strategy = LogStrategy::KeysOnly;
    let mut c2 = cfg(false, false);
    c2.log_strategy = LogStrategy::FullRecords;
    Reorganizer::new(Arc::clone(&db1), c1)
        .pass1_compact()
        .unwrap();
    Reorganizer::new(Arc::clone(&db2), c2)
        .pass1_compact()
        .unwrap();
    let b1 = db1.log().stats().reorg_bytes;
    let b2 = db2.log().stats().reorg_bytes;
    assert!(
        b2 > b1 * 3,
        "full-record logging ({b2} B) should dwarf keys-only ({b1} B)"
    );
}

#[test]
fn heuristic_placement_reduces_pass2_swaps() {
    let run = |placement: PlacementPolicy| -> (u64, u64) {
        let (_d, db) = sparse_db(8192, 3000, 0.25);
        let mut c = cfg(true, false);
        c.placement = placement;
        let reorg = Reorganizer::new(Arc::clone(&db), c);
        reorg.pass1_compact().unwrap();
        reorg.pass2_swap_move().unwrap();
        db.tree().validate().unwrap();
        let s = reorg.stats();
        (s.swaps, s.moves)
    };
    let (swaps_h, _) = run(PlacementPolicy::Heuristic);
    let (swaps_r, _) = run(PlacementPolicy::Random(42));
    assert!(
        swaps_h <= swaps_r,
        "heuristic should not need more swaps ({swaps_h}) than random ({swaps_r})"
    );
}

#[test]
fn reorganization_preserves_data_under_concurrent_record_ops() {
    use obr_wal::TxnId;
    let (_disk, db) = sparse_db(8192, 3000, 0.3);
    let reorg = Reorganizer::new(Arc::clone(&db), cfg(true, false));
    let db2 = Arc::clone(&db);
    std::thread::scope(|s| {
        let h = s.spawn(move || {
            // Bare record ops race the reorganizer through the SMO epoch.
            for i in 0..500u64 {
                let k = 1_000_000 + i;
                db2.tree()
                    .insert(TxnId(99), Lsn::ZERO, k, &val(k, 32))
                    .unwrap();
                if i % 3 == 0 {
                    db2.tree().delete(TxnId(99), Lsn::ZERO, k).unwrap();
                }
            }
        });
        reorg.pass1_compact().unwrap();
        reorg.pass2_swap_move().unwrap();
        h.join().unwrap();
    });
    db.tree().validate().unwrap();
    // 500 inserted, every third deleted.
    let survivors = (0..500u64).filter(|i| i % 3 != 0).count() as u64;
    let scan = db.tree().range_scan(1_000_000, 2_000_000).unwrap();
    assert_eq!(scan.len() as u64, survivors);
}
