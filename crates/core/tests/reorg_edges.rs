//! Degenerate and boundary inputs for the reorganizer, plus a concurrent
//! partitioned-model stress test.

use std::sync::Arc;

use obr_btree::SidePointerMode;
use obr_core::{Database, ReorgConfig, Reorganizer};
use obr_storage::{DiskManager, InMemoryDisk};

fn db(pages: u32) -> Arc<Database> {
    let disk = Arc::new(InMemoryDisk::new(pages));
    Database::create(
        disk as Arc<dyn DiskManager>,
        pages as usize,
        SidePointerMode::TwoWay,
    )
    .unwrap()
}

#[test]
fn reorganizing_an_empty_tree_is_a_noop() {
    let d = db(256);
    let r = Reorganizer::new(Arc::clone(&d), ReorgConfig::default());
    r.run().unwrap();
    assert_eq!(d.tree().validate().unwrap(), 0);
    assert_eq!(r.stats().units, 0);
}

#[test]
fn reorganizing_a_single_leaf_tree_is_a_noop() {
    let d = db(256);
    use obr_txn_like::*;
    mod obr_txn_like {
        pub use obr_storage::Lsn;
        pub use obr_wal::TxnId;
    }
    for k in 0..10u64 {
        d.tree().insert(TxnId(1), Lsn::ZERO, k, &[1; 16]).unwrap();
    }
    let r = Reorganizer::new(Arc::clone(&d), ReorgConfig::default());
    r.run().unwrap();
    assert_eq!(d.tree().validate().unwrap(), 10);
    assert_eq!(r.stats().units, 0);
}

#[test]
fn already_compact_tree_produces_no_units() {
    let d = db(4096);
    let records: Vec<(u64, Vec<u8>)> = (0..3000u64).map(|k| (k, vec![2; 64])).collect();
    d.tree().bulk_load(&records, 0.9, 0.9).unwrap();
    let before = d.tree().stats().unwrap();
    let r = Reorganizer::new(Arc::clone(&d), ReorgConfig::default());
    r.pass1_compact().unwrap();
    r.pass2_swap_move().unwrap();
    let after = d.tree().stats().unwrap();
    assert_eq!(before.leaves_in_key_order, after.leaves_in_key_order);
    assert_eq!(r.stats().units, 0, "{:?}", r.stats());
    d.tree().validate().unwrap();
}

#[test]
fn pass2_alone_orders_an_uncompacted_tree() {
    use obr_storage::Lsn;
    use obr_wal::TxnId;
    // §6 two-region layout: perfect ordering is only guaranteed when no
    // internal page can sit inside the leaf region.
    let disk = Arc::new(InMemoryDisk::new(8192));
    let d = Database::create_with_regions(
        disk as Arc<dyn DiskManager>,
        8192,
        SidePointerMode::TwoWay,
        512,
    )
    .unwrap();
    // Interleaved inserts produce scattered leaves without any compaction.
    let records: Vec<(u64, Vec<u8>)> = (0..1000u64).map(|k| (k * 2, vec![3; 64])).collect();
    d.tree().bulk_load(&records, 0.85, 0.9).unwrap();
    for k in 0..1000u64 {
        d.tree()
            .insert(TxnId(1), Lsn::ZERO, k * 2 + 1, &[4; 64])
            .unwrap();
    }
    let before = d.tree().stats().unwrap();
    assert!(before.leaf_discontinuities() > 0);
    let expected = d.tree().collect_all().unwrap();
    let r = Reorganizer::new(Arc::clone(&d), ReorgConfig::default());
    r.pass2_swap_move().unwrap();
    let after = d.tree().stats().unwrap();
    assert_eq!(after.leaf_discontinuities(), 0);
    assert_eq!(d.tree().collect_all().unwrap(), expected);
    d.tree().validate().unwrap();
}
