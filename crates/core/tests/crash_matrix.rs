//! Crash-injection matrix: every unit fail site × both logging strategies ×
//! several flush behaviours, plus swap-unit forward recovery and recovery
//! idempotence. Every scenario must end with the exact pre-reorganization
//! data and a structurally valid tree.

use std::sync::Arc;

use obr_btree::SidePointerMode;
use obr_core::{
    recover, CoreError, Database, FailPoint, FailSite, LogStrategy, PlacementPolicy, ReorgConfig,
    Reorganizer,
};
use obr_storage::{DiskManager, InMemoryDisk, PageId};

fn val(k: u64) -> Vec<u8> {
    let mut v = k.to_le_bytes().to_vec();
    v.resize(64, 0x77);
    v
}

struct Scenario {
    disk: Arc<InMemoryDisk>,
    db: Arc<Database>,
    expected: Vec<(u64, Vec<u8>)>,
}

fn setup(side: SidePointerMode) -> Scenario {
    let disk = Arc::new(InMemoryDisk::new(8192));
    let db = Database::create(Arc::clone(&disk) as Arc<dyn DiskManager>, 8192, side).unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, val(k))).collect();
    db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
    db.checkpoint().unwrap();
    let expected = db.tree().collect_all().unwrap();
    Scenario { disk, db, expected }
}

/// Crash with the given flush behaviour, recover on a fresh engine, check
/// the data, and return the recovered database.
fn crash_and_recover(
    sc: &Scenario,
    side: SidePointerMode,
    mut keep: impl FnMut(PageId) -> bool,
) -> Arc<Database> {
    sc.db.crash(&mut keep).unwrap();
    let db2 = Database::reopen(
        Arc::clone(&sc.disk) as Arc<dyn DiskManager>,
        Arc::clone(sc.db.log()),
        8192,
        side,
    )
    .unwrap();
    recover(&db2).unwrap();
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), sc.expected);
    db2
}

fn run_site(site: FailSite, nth: u64, strategy: LogStrategy, keep_mod: u64) {
    let side = SidePointerMode::TwoWay;
    let sc = setup(side);
    let cfg = ReorgConfig {
        swap_pass: false,
        shrink_pass: false,
        log_strategy: strategy,
        ..ReorgConfig::default()
    };
    let reorg = Reorganizer::new(Arc::clone(&sc.db), cfg.clone())
        .with_fail_point(FailPoint::new(site, nth));
    match reorg.pass1_compact() {
        Err(CoreError::InjectedCrash(_)) => {}
        other => panic!("expected injected crash at {site:?}, got {other:?}"),
    }
    let mut i = 0u64;
    let db2 = crash_and_recover(&sc, side, |_| {
        i += 1;
        keep_mod != 0 && i.is_multiple_of(keep_mod)
    });
    // The reorganization completes from LK.
    Reorganizer::new(Arc::clone(&db2), cfg)
        .pass1_compact()
        .unwrap();
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), sc.expected);
    assert!(db2.tree().stats().unwrap().avg_leaf_fill > 0.7);
}

#[test]
fn crash_after_begin_keys_only() {
    run_site(FailSite::AfterUnitBegin, 1, LogStrategy::KeysOnly, 2);
}

#[test]
fn crash_after_first_move_keys_only_nothing_flushed() {
    run_site(FailSite::AfterFirstMove, 0, LogStrategy::KeysOnly, 0);
}

#[test]
fn crash_after_first_move_keys_only_partial_flush() {
    run_site(FailSite::AfterFirstMove, 3, LogStrategy::KeysOnly, 2);
}

#[test]
fn crash_before_modify_keys_only() {
    run_site(FailSite::BeforeModify, 2, LogStrategy::KeysOnly, 3);
}

#[test]
fn crash_before_end_keys_only() {
    run_site(FailSite::BeforeEnd, 1, LogStrategy::KeysOnly, 2);
}

#[test]
fn crash_after_first_move_full_records() {
    run_site(FailSite::AfterFirstMove, 2, LogStrategy::FullRecords, 2);
}

#[test]
fn crash_before_modify_full_records() {
    run_site(FailSite::BeforeModify, 1, LogStrategy::FullRecords, 5);
}

#[test]
fn crash_during_pass2_swap_is_forward_completed() {
    let side = SidePointerMode::TwoWay;
    let sc = setup(side);
    // Random placement maximizes pass-2 work, guaranteeing swap units.
    let cfg = ReorgConfig {
        swap_pass: true,
        shrink_pass: false,
        placement: PlacementPolicy::Random(7),
        ..ReorgConfig::default()
    };
    let reorg = Reorganizer::new(Arc::clone(&sc.db), cfg.clone());
    reorg.pass1_compact().unwrap();
    // Crash inside a pass-2 unit (the first BEGIN of pass 2).
    let reorg = Reorganizer::new(Arc::clone(&sc.db), cfg.clone())
        .with_fail_point(FailPoint::new(FailSite::BeforeEnd, 0));
    match reorg.pass2_swap_move() {
        Err(CoreError::InjectedCrash(_)) => {}
        Ok(()) => return, // no pass-2 work was needed; nothing to test
        other => panic!("unexpected {other:?}"),
    }
    let mut i = 0u64;
    let db2 = crash_and_recover(&sc, side, |_| {
        i += 1;
        i.is_multiple_of(2)
    });
    // Pass 2 completes after recovery.
    let reorg2 = Reorganizer::new(Arc::clone(&db2), cfg);
    reorg2.pass2_swap_move().unwrap();
    db2.tree().validate().unwrap();
    assert_eq!(db2.tree().collect_all().unwrap(), sc.expected);
}

#[test]
fn recovery_is_idempotent() {
    let side = SidePointerMode::TwoWay;
    let sc = setup(side);
    let cfg = ReorgConfig {
        swap_pass: false,
        shrink_pass: false,
        ..ReorgConfig::default()
    };
    let reorg = Reorganizer::new(Arc::clone(&sc.db), cfg)
        .with_fail_point(FailPoint::new(FailSite::BeforeModify, 1));
    let _ = reorg.pass1_compact().unwrap_err();
    sc.db.crash(|p| p.0 % 3 == 0).unwrap();
    let db2 = Database::reopen(
        Arc::clone(&sc.disk) as Arc<dyn DiskManager>,
        Arc::clone(sc.db.log()),
        8192,
        side,
    )
    .unwrap();
    let r1 = recover(&db2).unwrap();
    assert_eq!(r1.forward_units_completed, 1);
    assert_eq!(db2.tree().collect_all().unwrap(), sc.expected);
    // A second crash immediately after recovery (nothing new flushed)
    // must recover to the same state: redo + forward recovery are
    // idempotent.
    db2.log().flush_all().unwrap();
    db2.crash(|_| false).unwrap();
    let db3 = Database::reopen(
        Arc::clone(&sc.disk) as Arc<dyn DiskManager>,
        Arc::clone(db2.log()),
        8192,
        side,
    )
    .unwrap();
    let r2 = recover(&db3).unwrap();
    // The unit was already closed by the first recovery's END record.
    assert_eq!(r2.forward_units_completed, 0);
    db3.tree().validate().unwrap();
    assert_eq!(db3.tree().collect_all().unwrap(), sc.expected);
}

#[test]
fn reorg_under_one_way_side_pointers() {
    let side = SidePointerMode::OneWay;
    let disk = Arc::new(InMemoryDisk::new(8192));
    let db = Database::create(Arc::clone(&disk) as Arc<dyn DiskManager>, 8192, side).unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, val(k))).collect();
    db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
    let expected = db.tree().collect_all().unwrap();
    let reorg = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
    reorg.run().unwrap();
    db.tree().validate().unwrap();
    assert_eq!(db.tree().collect_all().unwrap(), expected);
    assert!(db.tree().stats().unwrap().avg_leaf_fill > 0.7);
}

#[test]
fn reorg_without_side_pointers() {
    let side = SidePointerMode::None;
    let disk = Arc::new(InMemoryDisk::new(8192));
    let db = Database::create(Arc::clone(&disk) as Arc<dyn DiskManager>, 8192, side).unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, val(k))).collect();
    db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
    let expected = db.tree().collect_all().unwrap();
    let reorg = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
    reorg.run().unwrap();
    db.tree().validate().unwrap();
    assert_eq!(db.tree().collect_all().unwrap(), expected);
}

#[test]
fn double_crash_within_one_unit() {
    // Crash, recover (forward-completes the unit), start reorganizing
    // again, crash again in a later unit, recover again.
    let side = SidePointerMode::TwoWay;
    let sc = setup(side);
    let cfg = ReorgConfig {
        swap_pass: false,
        shrink_pass: false,
        ..ReorgConfig::default()
    };
    let reorg = Reorganizer::new(Arc::clone(&sc.db), cfg.clone())
        .with_fail_point(FailPoint::new(FailSite::AfterFirstMove, 1));
    let _ = reorg.pass1_compact().unwrap_err();
    let db2 = crash_and_recover(&sc, side, |p| p.0 % 2 == 0);
    let reorg2 = Reorganizer::new(Arc::clone(&db2), cfg.clone())
        .with_fail_point(FailPoint::new(FailSite::BeforeEnd, 2));
    let _ = reorg2.pass1_compact().unwrap_err();
    db2.crash(|p| p.0 % 2 == 1).unwrap();
    let db3 = Database::reopen(
        Arc::clone(&sc.disk) as Arc<dyn DiskManager>,
        Arc::clone(db2.log()),
        8192,
        side,
    )
    .unwrap();
    recover(&db3).unwrap();
    db3.tree().validate().unwrap();
    assert_eq!(db3.tree().collect_all().unwrap(), sc.expected);
    Reorganizer::new(Arc::clone(&db3), cfg)
        .pass1_compact()
        .unwrap();
    assert_eq!(db3.tree().collect_all().unwrap(), sc.expected);
    assert!(db3.tree().stats().unwrap().avg_leaf_fill > 0.7);
}

#[test]
fn two_region_layout_packs_leaves_perfectly() {
    // §6: with leaves and internal pages in separate disk regions, pass 2
    // never meets an internal page in the leaf region and achieves perfect
    // physical key order.
    let disk = Arc::new(InMemoryDisk::new(8192));
    let db = Database::create_with_regions(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        8192,
        SidePointerMode::TwoWay,
        512,
    )
    .unwrap();
    // Churn: load, split-heavy inserts, random deletes.
    let records: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k * 2, val(k))).collect();
    db.tree().bulk_load(&records, 0.85, 0.9).unwrap();
    for k in 0..2000u64 {
        db.tree()
            .insert(
                obr_wal::TxnId(1),
                obr_storage::Lsn::ZERO,
                k * 2 + 1,
                &val(k),
            )
            .unwrap();
    }
    let mut rng = 0x2222u64;
    for k in 0..4000u64 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        if !rng.is_multiple_of(4) {
            let _ = db
                .tree()
                .delete(obr_wal::TxnId(1), obr_storage::Lsn::ZERO, k);
        }
    }
    let expected = db.tree().collect_all().unwrap();
    let reorg = Reorganizer::new(
        Arc::clone(&db),
        ReorgConfig {
            shrink_pass: false,
            ..ReorgConfig::default()
        },
    );
    reorg.pass1_compact().unwrap();
    reorg.pass2_swap_move().unwrap();
    db.tree().validate().unwrap();
    assert_eq!(db.tree().collect_all().unwrap(), expected);
    let stats = db.tree().stats().unwrap();
    assert_eq!(
        stats.leaf_discontinuities(),
        0,
        "regions + pass 2 must yield perfect contiguity: {:?}",
        stats.leaves_in_key_order
    );
    // Every leaf sits in the leaf region; every internal page below it.
    for l in &stats.leaves_in_key_order {
        assert!(l.0 >= 512, "leaf {l} in the internal region");
    }
    assert_eq!(reorg.stats().skipped_placements, 0);
}

#[test]
fn log_truncation_respects_the_low_water_mark() {
    use obr_txn_free::run_committed_ops;
    mod obr_txn_free {
        use super::*;
        pub fn run_committed_ops(db: &Arc<Database>, n: u64) {
            for k in 0..n {
                let txn = db.begin_txn();
                let lsn = db
                    .tree()
                    .insert(txn, obr_storage::Lsn::ZERO, 100_000 + k, &val(k))
                    .unwrap();
                db.note_txn_lsn(txn, lsn);
                db.log()
                    .append_force(&obr_wal::LogRecord::TxnCommit { txn })
                    .unwrap();
                db.end_txn(txn);
            }
        }
    }
    let sc = setup(SidePointerMode::TwoWay);
    run_committed_ops(&sc.db, 200);
    let before = sc.db.log().len();
    let dropped = sc.db.truncate_log().unwrap();
    assert!(dropped > 0, "quiescent truncation should drop the prefix");
    assert!(sc.db.log().len() < before);
    // Crash right after truncation: recovery still works from the
    // checkpoint the truncation wrote.
    sc.db.log().flush_all().unwrap();
    sc.db.crash(|_| false).unwrap();
    let db2 = Database::reopen(
        Arc::clone(&sc.disk) as Arc<dyn DiskManager>,
        Arc::clone(sc.db.log()),
        8192,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    recover(&db2).unwrap();
    db2.tree().validate().unwrap();
    let mut expected = sc.expected.clone();
    expected.extend((0..200u64).map(|k| (100_000 + k, val(k))));
    assert_eq!(db2.tree().collect_all().unwrap(), expected);
}

#[test]
fn active_transaction_pins_the_low_water_mark() {
    let sc = setup(SidePointerMode::TwoWay);
    let txn = sc.db.begin_txn();
    let first_lsn = sc
        .db
        .tree()
        .insert(txn, obr_storage::Lsn::ZERO, 999_999, &val(1))
        .unwrap();
    sc.db.note_txn_lsn(txn, first_lsn);
    // Lots of unrelated committed work + a checkpoint cannot advance the
    // mark past the open transaction's BEGIN.
    for k in 0..50u64 {
        let t2 = sc.db.begin_txn();
        let l = sc
            .db
            .tree()
            .insert(t2, obr_storage::Lsn::ZERO, 200_000 + k, &val(k))
            .unwrap();
        sc.db.note_txn_lsn(t2, l);
        sc.db
            .log()
            .append_force(&obr_wal::LogRecord::TxnCommit { txn: t2 })
            .unwrap();
        sc.db.end_txn(t2);
    }
    sc.db.checkpoint().unwrap();
    // The open transaction's BEGIN precedes its first insert; the mark may
    // never pass it while the transaction lives.
    let mark_while_open = sc.db.log_low_water_mark();
    assert!(
        mark_while_open < first_lsn,
        "{mark_while_open} vs {first_lsn}"
    );
    sc.db.end_txn(txn);
    sc.db.checkpoint().unwrap();
    assert!(sc.db.log_low_water_mark() > mark_while_open);
}

#[test]
fn trigger_skips_healthy_trees_and_fixes_sick_ones() {
    use obr_core::ReorgTrigger;
    // A healthy tree: nothing should run.
    let disk = Arc::new(InMemoryDisk::new(8192));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        8192,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    let records: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, val(k))).collect();
    db.tree().bulk_load(&records, 0.9, 0.9).unwrap();
    let r = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
    let d = r.run_if_needed(ReorgTrigger::default()).unwrap();
    assert!(!d.compacted && !d.swapped && !d.shrunk, "{d:?}");
    // A sparse tree: compaction (at least) must run.
    let sc = setup(SidePointerMode::TwoWay);
    let r2 = Reorganizer::new(Arc::clone(&sc.db), ReorgConfig::default());
    let d2 = r2.run_if_needed(ReorgTrigger::default()).unwrap();
    assert!(d2.compacted, "{d2:?}");
    sc.db.tree().validate().unwrap();
    assert_eq!(sc.db.tree().collect_all().unwrap(), sc.expected);
    assert!(sc.db.tree().stats().unwrap().avg_leaf_fill > 0.7);
}
