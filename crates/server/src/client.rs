//! A blocking protocol client, plus [`NetReplica`]: a read replica that
//! bootstraps and catches up entirely over the wire.

use std::fmt;
use std::net::TcpStream;
use std::time::Duration;

use obr_btree::SidePointerMode;
use obr_core::Replica;
use obr_storage::Lsn;

use crate::proto::{
    read_frame, write_frame, ErrorCode, ProtoError, Request, Response, ShippedSegment, VERSION,
};

/// Client-side failures: protocol-level, server-reported, or (for
/// [`NetReplica`]) replica-apply errors.
#[derive(Debug)]
pub enum ClientError {
    /// Framing/codec/socket failure.
    Proto(ProtoError),
    /// The server answered `ERR`.
    Server {
        /// The typed code (retry semantics in PROTOCOL.md §6).
        code: ErrorCode,
        /// Operator-facing detail.
        message: String,
    },
    /// The server answered with a response the request cannot produce.
    Unexpected(&'static str),
    /// The local replica failed to apply shipped segments.
    Replica(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, message } => write!(f, "server: {code}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response to {what}"),
            ClientError::Replica(e) => write!(f, "replica apply: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl ClientError {
    /// True when the server shed this call with `BUSY` (retry with
    /// backoff).
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Busy,
                ..
            }
        )
    }

    /// The server-reported code, if this is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// Database shape and log position, from `DB_INFO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbInfo {
    /// Page count of the primary's disk.
    pub pages: u32,
    /// Side-pointer mode the primary's tree was created with.
    pub side_mode: SidePointerMode,
    /// Oldest LSN still available in the primary's log.
    pub first_lsn: Lsn,
    /// Primary's durable LSN at answer time.
    pub durable_lsn: Lsn,
}

/// One `SHIP` answer, decomposed.
#[derive(Debug, Clone)]
pub struct ShipBatch {
    /// More segments exist past this batch.
    pub more: bool,
    /// Primary's durable LSN (cap for applying unsealed bytes).
    pub durable_lsn: Lsn,
    /// Oldest LSN the primary can still ship.
    pub first_available_lsn: Lsn,
    /// The shipped segments, oldest first.
    pub segments: Vec<ShippedSegment>,
}

/// A [`Client::scan`] result: the rows, plus whether the row cap (not
/// the range end) cut the scan short.
pub type ScanRows = (Vec<(u64, Vec<u8>)>, bool);

/// A blocking connection to an obr server. One request in flight at a
/// time, mirroring the server's session model.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and run the `HELLO` handshake.
    pub fn connect(addr: &str) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr).map_err(ProtoError::Io)?;
        let _ = stream.set_nodelay(true);
        let mut c = Client { stream };
        match c.call(&Request::Hello { version: VERSION }, "HELLO")? {
            Response::HelloOk { .. } => Ok(c),
            _ => Err(ClientError::Unexpected("HELLO")),
        }
    }

    /// Bound every read with `timeout` so a hung server cannot hang the
    /// client forever.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> ClientResult<()> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(ProtoError::Io)?;
        Ok(())
    }

    fn call(&mut self, req: &Request, what: &'static str) -> ClientResult<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        let resp = Response::decode(&payload)?;
        if let Response::Err { code, message } = resp {
            return Err(ClientError::Server { code, message });
        }
        let _ = what;
        Ok(resp)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping, "PING")? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("PING")),
        }
    }

    /// Point read.
    pub fn get(&mut self, key: u64) -> ClientResult<Option<Vec<u8>>> {
        match self.call(&Request::Get { key }, "GET")? {
            Response::Value(v) => Ok(v),
            _ => Err(ClientError::Unexpected("GET")),
        }
    }

    /// Upsert outside a transaction; strict insert inside one.
    pub fn put(&mut self, key: u64, value: &[u8]) -> ClientResult<()> {
        let req = Request::Put {
            key,
            value: value.to_vec(),
        };
        match self.call(&req, "PUT")? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("PUT")),
        }
    }

    /// Delete; answers the old value.
    pub fn delete(&mut self, key: u64) -> ClientResult<Vec<u8>> {
        match self.call(&Request::Delete { key }, "DELETE")? {
            Response::Value(Some(v)) => Ok(v),
            _ => Err(ClientError::Unexpected("DELETE")),
        }
    }

    /// Inclusive range scan; `(rows, truncated)`.
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u32) -> ClientResult<ScanRows> {
        match self.call(&Request::Scan { lo, hi, limit }, "SCAN")? {
            Response::Rows { rows, truncated } => Ok((rows, truncated)),
            _ => Err(ClientError::Unexpected("SCAN")),
        }
    }

    /// Open this session's transaction.
    pub fn begin(&mut self) -> ClientResult<()> {
        match self.call(&Request::Begin, "BEGIN")? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("BEGIN")),
        }
    }

    /// Commit this session's transaction.
    pub fn commit(&mut self) -> ClientResult<()> {
        match self.call(&Request::Commit, "COMMIT")? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("COMMIT")),
        }
    }

    /// Abort this session's transaction.
    pub fn abort(&mut self) -> ClientResult<()> {
        match self.call(&Request::Abort, "ABORT")? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("ABORT")),
        }
    }

    /// Metrics snapshot as JSON.
    pub fn stats(&mut self) -> ClientResult<String> {
        match self.call(&Request::Stats, "STATS")? {
            Response::Json(s) => Ok(s),
            _ => Err(ClientError::Unexpected("STATS")),
        }
    }

    /// Force a sharp checkpoint.
    pub fn checkpoint(&mut self) -> ClientResult<()> {
        match self.call(&Request::Checkpoint, "CHECKPOINT")? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("CHECKPOINT")),
        }
    }

    /// Run the reorganizer; `(compacted, swapped, shrunk)`.
    pub fn reorg(&mut self, force: bool) -> ClientResult<(bool, bool, bool)> {
        match self.call(&Request::Reorg { force }, "REORG")? {
            Response::ReorgDone {
                compacted,
                swapped,
                shrunk,
            } => Ok((compacted, swapped, shrunk)),
            _ => Err(ClientError::Unexpected("REORG")),
        }
    }

    /// Database shape and log position.
    pub fn db_info(&mut self) -> ClientResult<DbInfo> {
        match self.call(&Request::DbInfo, "DB_INFO")? {
            Response::Info {
                pages,
                side_mode,
                first_lsn,
                durable_lsn,
            } => Ok(DbInfo {
                pages,
                side_mode,
                first_lsn,
                durable_lsn,
            }),
            _ => Err(ClientError::Unexpected("DB_INFO")),
        }
    }

    /// One round of segment shipping.
    pub fn ship(&mut self, from_lsn: Lsn, max_segments: u32) -> ClientResult<ShipBatch> {
        let req = Request::Ship {
            from_lsn,
            max_segments,
        };
        match self.call(&req, "SHIP")? {
            Response::Segments {
                more,
                durable_lsn,
                first_available_lsn,
                segments,
            } => Ok(ShipBatch {
                more,
                durable_lsn,
                first_available_lsn,
                segments,
            }),
            _ => Err(ClientError::Unexpected("SHIP")),
        }
    }

    /// Orderly goodbye; consumes the client.
    pub fn bye(mut self) -> ClientResult<()> {
        match self.call(&Request::Bye, "BYE")? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("BYE")),
        }
    }
}

/// A [`Replica`] fed over the wire: `DB_INFO` sizes it to match the
/// primary's page layout, then repeated `SHIP` rounds stream WAL segments
/// into the page-LSN-gated apply path (PROTOCOL.md §7).
pub struct NetReplica {
    replica: Replica,
}

impl NetReplica {
    /// Bootstrap a fresh replica shaped like the primary behind `client`.
    pub fn bootstrap(client: &mut Client, pool_frames: usize) -> ClientResult<NetReplica> {
        let info = client.db_info()?;
        let replica = Replica::new(info.pages, pool_frames, info.side_mode)
            .map_err(|e| ClientError::Replica(e.to_string()))?;
        Ok(NetReplica { replica })
    }

    /// The underlying replica (reads, applied LSN, metrics).
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Catch up: ship-and-apply until the primary reports no more
    /// segments. Returns records applied. Unsealed (active-segment) bytes
    /// are applied only up to the primary's shipped durable LSN.
    pub fn sync(&self, client: &mut Client) -> ClientResult<u64> {
        let mut total = 0u64;
        loop {
            let batch = client.ship(self.replica.applied_lsn(), 0)?;
            let applied = self.replica.applied_lsn();
            if applied != obr_storage::Lsn::ZERO && Lsn(applied.0 + 1) < batch.first_available_lsn {
                return Err(ClientError::Replica(format!(
                    "fell behind: need LSN {} but the primary's log now starts \
                     at {}; re-seed from a snapshot",
                    applied.0 + 1,
                    batch.first_available_lsn
                )));
            }
            for seg in &batch.segments {
                total += self
                    .replica
                    .ingest_segment_bytes(
                        seg.first_lsn,
                        &seg.bytes,
                        seg.sealed,
                        Some(batch.durable_lsn),
                    )
                    .map_err(|e| ClientError::Replica(e.to_string()))?;
            }
            if !batch.more {
                return Ok(total);
            }
        }
    }
}
