//! The scripted scenario suite: end-to-end stories driven through the
//! network frontend, each phase emitting a metrics snapshot (via the
//! `STATS` opcode, so observability itself is exercised over the wire)
//! and every scenario ending with a full on-disk integrity check.
//!
//! Five scenarios (see [`SCENARIOS`]):
//!
//! * `bulk-load` — concurrent clients load disjoint key ranges, then
//!   verify by scanning.
//! * `steady-churn` — a mixed put/get/delete workload at steady state.
//! * `delete-epoch` — an epoch of deletes sparsifies the tree, then one
//!   `REORG` call heals it; the phase snapshots show the fill recover.
//! * `reorg-under-load` — the background [`ReorgDaemon`] runs while
//!   clients churn: the paper's headline claim, over the wire.
//! * `crash-restart` — clients commit acknowledged work, the process
//!   "crashes" (buffer pool and in-flight log lost), the database is
//!   reopened and recovered, the server restarts, and every acknowledged
//!   key is verified present.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use obr_btree::SidePointerMode;
use obr_core::{
    recover, DaemonOptions, Database, EngineConfig, ReorgConfig, ReorgDaemon, ReorgTrigger,
};

use crate::client::{Client, ClientError, ClientResult};
use crate::proto::ErrorCode;
use crate::server::{Server, ServerConfig};

/// Every scenario name [`run_scenario`] accepts, in suite order.
pub const SCENARIOS: &[&str] = &[
    "bulk-load",
    "steady-churn",
    "delete-epoch",
    "reorg-under-load",
    "crash-restart",
];

/// Scenario knobs. [`Default`] is the smoke-sized suite CI runs; raise
/// `scale` for a longer soak.
#[derive(Clone, Debug)]
pub struct ScenarioOptions {
    /// Working directory for the durable database (one subdirectory per
    /// scenario is created inside it).
    pub dir: PathBuf,
    /// Concurrent client connections driving the workload phases.
    pub clients: usize,
    /// Workload multiplier: operations per client per phase is
    /// `250 * scale` (minimum 50).
    pub scale: f64,
    /// Pages for each scenario's database.
    pub pages: u32,
    /// When set, each phase's metrics snapshot is also written to
    /// `<dir>/<scenario>.<phase>.json`.
    pub snapshots_dir: Option<PathBuf>,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions {
            dir: std::env::temp_dir().join("obr-scenarios"),
            clients: 4,
            scale: 1.0,
            pages: 4096,
            snapshots_dir: None,
        }
    }
}

impl ScenarioOptions {
    fn ops_per_client(&self) -> u64 {
        ((250.0 * self.scale) as u64).max(50)
    }
}

/// One phase's outcome.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (stable identifier, e.g. `churn`).
    pub name: String,
    /// Successful client operations in the phase.
    pub ops: u64,
    /// Operations that ultimately failed (after retries).
    pub errors: u64,
    /// Metrics snapshot (JSON) taken through `STATS` at phase end.
    pub snapshot_json: String,
}

/// A full scenario's outcome.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Phases, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Post-run `check_database` verdict.
    pub check_clean: bool,
    /// Human-readable check summary.
    pub check_summary: String,
}

impl ScenarioReport {
    /// Total successful operations across phases.
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// Hand-rolled JSON (no serde in this workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"scenario\": \"{}\",\n", self.scenario));
        out.push_str(&format!("  \"check_clean\": {},\n", self.check_clean));
        out.push_str(&format!(
            "  \"check_summary\": \"{}\",\n",
            self.check_summary.replace('"', "'")
        ));
        out.push_str(&format!("  \"total_ops\": {},\n", self.total_ops()));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ops\": {}, \"errors\": {}, \"metrics\": {}}}{}\n",
                p.name,
                p.ops,
                p.errors,
                p.snapshot_json,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Run one scenario by name. Returns `Err` for an unknown name or an
/// infrastructure failure; workload-level failures (a check that comes
/// back dirty, a missing key after recovery) are reported the same way so
/// callers can treat any `Err` as a failed scenario.
pub fn run_scenario(name: &str, opts: &ScenarioOptions) -> Result<ScenarioReport, String> {
    let dir = opts.dir.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    match name {
        "bulk-load" => bulk_load(&dir, opts),
        "steady-churn" => steady_churn(&dir, opts),
        "delete-epoch" => delete_epoch(&dir, opts),
        "reorg-under-load" => reorg_under_load(&dir, opts),
        "crash-restart" => crash_restart(&dir, opts),
        other => Err(format!(
            "unknown scenario {other:?}; known: {}",
            SCENARIOS.join(", ")
        )),
    }
}

// --- shared machinery ------------------------------------------------------

struct Rig {
    db: Arc<Database>,
    server: Server,
    addr: String,
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        // Small segments so every scenario exercises sealing + shipping.
        wal_segment_bytes: 64 << 10,
        ..EngineConfig::default()
    }
}

fn start_rig(dir: &std::path::Path, opts: &ScenarioOptions) -> Result<Rig, String> {
    let cfg = engine_config();
    let db = Database::create_durable_with_config(
        dir,
        opts.pages,
        opts.pages as usize,
        SidePointerMode::TwoWay,
        cfg.clone(),
    )
    .map_err(|e| format!("create database: {e}"))?;
    start_server(db, &cfg)
}

fn start_server(db: Arc<Database>, cfg: &EngineConfig) -> Result<Rig, String> {
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::from_engine("127.0.0.1:0", cfg),
    )
    .map_err(|e| format!("start server: {e}"))?;
    let addr = server.local_addr().to_string();
    Ok(Rig { db, server, addr })
}

/// Retry transient outcomes (BUSY shed, deadlock victim, lock timeout)
/// with a short backoff; anything else is final.
fn with_retry<T>(mut f: impl FnMut() -> ClientResult<T>) -> ClientResult<T> {
    let mut attempts = 0u32;
    loop {
        match f() {
            Err(e)
                if attempts < 1000
                    && matches!(
                        e.code(),
                        Some(ErrorCode::Busy | ErrorCode::Deadlock | ErrorCode::Timeout)
                    ) =>
            {
                attempts += 1;
                std::thread::sleep(Duration::from_micros(200 * u64::from(attempts.min(10))));
            }
            r => return r,
        }
    }
}

fn snapshot(addr: &str) -> Result<String, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("stats client: {e}"))?;
    let json = with_retry(|| c.stats()).map_err(|e| format!("stats: {e}"))?;
    let _ = c.bye();
    Ok(json)
}

fn finish_phase(
    report: &mut ScenarioReport,
    opts: &ScenarioOptions,
    addr: &str,
    name: &str,
    ops: u64,
    errors: u64,
) -> Result<(), String> {
    let snap = snapshot(addr)?;
    if let Some(d) = &opts.snapshots_dir {
        std::fs::create_dir_all(d).map_err(|e| format!("create {}: {e}", d.display()))?;
        let path = d.join(format!("{}.{}.json", report.scenario, name));
        std::fs::write(&path, &snap).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    report.phases.push(PhaseReport {
        name: name.to_string(),
        ops,
        errors,
        snapshot_json: snap,
    });
    Ok(())
}

/// Fan `per_client` iterations of `work(client_index, iteration, client)`
/// across `opts.clients` connections; returns `(ok, errors)`.
fn fan_out(
    addr: &str,
    opts: &ScenarioOptions,
    per_client: u64,
    work: impl Fn(usize, u64, &mut Client) -> ClientResult<()> + Sync,
) -> Result<(u64, u64), String> {
    let results = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..opts.clients {
            let work = &work;
            handles.push(s.spawn(move || -> Result<(u64, u64), String> {
                let mut client =
                    Client::connect(addr).map_err(|e| format!("client {c} connect: {e}"))?;
                let mut ok = 0u64;
                let mut errors = 0u64;
                for i in 0..per_client {
                    match with_retry(|| work(c, i, &mut client)) {
                        Ok(()) => ok += 1,
                        Err(_) => errors += 1,
                    }
                }
                let _ = client.bye();
                Ok((ok, errors))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Vec<_>>()
    });
    let mut ok = 0u64;
    let mut errors = 0u64;
    for r in results {
        let (o, e) = r?;
        ok += o;
        errors += e;
    }
    Ok((ok, errors))
}

fn run_check(db: &Arc<Database>, report: &mut ScenarioReport) -> Result<(), String> {
    let check = obr_check::check_database(db);
    report.check_clean = check.is_clean();
    report.check_summary = if check.is_clean() {
        "clean".into()
    } else {
        check.to_string().replace('\n', "; ")
    };
    if !report.check_clean {
        return Err(format!(
            "post-run integrity check failed for {}: {}",
            report.scenario, report.check_summary
        ));
    }
    Ok(())
}

fn shutdown_and_check(rig: Rig, report: &mut ScenarioReport) -> Result<(), String> {
    rig.server
        .shutdown()
        .map_err(|e| format!("server shutdown: {e}"))?;
    run_check(&rig.db, report)
}

fn key_for(client: usize, i: u64) -> u64 {
    client as u64 * 1_000_000 + i
}

// --- scenarios -------------------------------------------------------------

fn bulk_load(dir: &std::path::Path, opts: &ScenarioOptions) -> Result<ScenarioReport, String> {
    let rig = start_rig(dir, opts)?;
    let mut report = ScenarioReport {
        scenario: "bulk-load".into(),
        phases: Vec::new(),
        check_clean: false,
        check_summary: String::new(),
    };
    let n = opts.ops_per_client();
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        client.put(key_for(c, i), format!("bulk-{c}-{i}").as_bytes())
    })?;
    finish_phase(&mut report, opts, &rig.addr, "load", ops, errors)?;

    // Verify by scanning each client's range over the wire.
    let (vops, verrors) = fan_out(&rig.addr, opts, 1, |c, _i, client| {
        let lo = key_for(c, 0);
        let hi = key_for(c, n - 1);
        let (rows, _) = client.scan(lo, hi, n as u32 + 1)?;
        if rows.len() as u64 != n {
            return Err(ClientError::Replica(format!(
                "client {c}: expected {n} rows, scanned {}",
                rows.len()
            )));
        }
        Ok(())
    })?;
    finish_phase(&mut report, opts, &rig.addr, "verify", vops, verrors)?;
    if verrors > 0 {
        return Err("bulk-load verification failed".into());
    }
    shutdown_and_check(rig, &mut report)?;
    Ok(report)
}

fn steady_churn(dir: &std::path::Path, opts: &ScenarioOptions) -> Result<ScenarioReport, String> {
    let rig = start_rig(dir, opts)?;
    let mut report = ScenarioReport {
        scenario: "steady-churn".into(),
        phases: Vec::new(),
        check_clean: false,
        check_summary: String::new(),
    };
    let n = opts.ops_per_client();
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        client.put(key_for(c, i), b"seed")
    })?;
    finish_phase(&mut report, opts, &rig.addr, "seed", ops, errors)?;

    // Mixed workload over the seeded keys: 50% reads, 30% overwrites,
    // 20% delete+reinsert.
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        let k = key_for(c, i % n);
        match i % 10 {
            0..=4 => client.get(k).map(|_| ()),
            5..=7 => client.put(k, format!("churn-{i}").as_bytes()),
            _ => {
                match client.delete(k) {
                    Ok(_) => {}
                    Err(e) if e.code() == Some(ErrorCode::KeyNotFound) => {}
                    Err(e) => return Err(e),
                }
                client.put(k, b"back")
            }
        }
    })?;
    finish_phase(&mut report, opts, &rig.addr, "churn", ops, errors)?;
    shutdown_and_check(rig, &mut report)?;
    Ok(report)
}

fn delete_epoch(dir: &std::path::Path, opts: &ScenarioOptions) -> Result<ScenarioReport, String> {
    let rig = start_rig(dir, opts)?;
    let mut report = ScenarioReport {
        scenario: "delete-epoch".into(),
        phases: Vec::new(),
        check_clean: false,
        check_summary: String::new(),
    };
    // Dense load with chunky values so the tree grows real leaves.
    let n = opts.ops_per_client().max(200);
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        client.put(key_for(c, i), &[0x5a; 120])
    })?;
    finish_phase(&mut report, opts, &rig.addr, "load", ops, errors)?;

    // The delete epoch: drop 3 of every 4 keys, sparsifying every leaf —
    // the population profile the paper's reorganizer exists for.
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        if i % 4 == 0 {
            return Ok(());
        }
        client.delete(key_for(c, i)).map(|_| ())
    })?;
    finish_phase(&mut report, opts, &rig.addr, "delete-epoch", ops, errors)?;

    // Heal over the wire and prove the admin opcode drives real passes.
    let mut admin = Client::connect(&rig.addr).map_err(|e| format!("admin: {e}"))?;
    let (compacted, _sw, _sh) =
        with_retry(|| admin.reorg(false)).map_err(|e| format!("reorg: {e}"))?;
    let _ = admin.bye();
    if !compacted {
        return Err("delete-epoch: the sparse tree did not trigger compaction".into());
    }
    finish_phase(&mut report, opts, &rig.addr, "reorg", 1, 0)?;

    // Survivors must still be readable.
    let (vops, verrors) = fan_out(&rig.addr, opts, n.div_ceil(4), |c, i, client| {
        let k = key_for(c, i * 4);
        match client.get(k)? {
            Some(_) => Ok(()),
            None => Err(ClientError::Replica(format!("survivor {k} missing"))),
        }
    })?;
    finish_phase(&mut report, opts, &rig.addr, "verify", vops, verrors)?;
    if verrors > 0 {
        return Err("delete-epoch: survivors missing after reorganization".into());
    }
    shutdown_and_check(rig, &mut report)?;
    Ok(report)
}

fn reorg_under_load(
    dir: &std::path::Path,
    opts: &ScenarioOptions,
) -> Result<ScenarioReport, String> {
    let rig = start_rig(dir, opts)?;
    let mut report = ScenarioReport {
        scenario: "reorg-under-load".into(),
        phases: Vec::new(),
        check_clean: false,
        check_summary: String::new(),
    };
    let n = opts.ops_per_client().max(200);
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        client.put(key_for(c, i), &[0x33; 120])
    })?;
    finish_phase(&mut report, opts, &rig.addr, "load", ops, errors)?;

    // Sparsify so the daemon has work the moment it starts.
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        if i % 4 == 0 {
            return Ok(());
        }
        client.delete(key_for(c, i)).map(|_| ())
    })?;
    finish_phase(&mut report, opts, &rig.addr, "sparsify", ops, errors)?;

    // Clients churn while the background reorganizer heals the tree: the
    // paper's on-line claim, with admission control and the §4.1.2/§4.1.3
    // protocols all in the path.
    let daemon = ReorgDaemon::spawn_with_options(
        Arc::clone(&rig.db),
        ReorgConfig::default(),
        ReorgTrigger::default(),
        Duration::from_millis(25),
        DaemonOptions {
            wal_budget_bytes: None,
        },
    );
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        let k = key_for(c, i % n);
        match i % 3 {
            0 => client.get(k).map(|_| ()),
            1 => client.put(k, b"under-reorg"),
            _ => client.scan(k, k + 16, 32).map(|_| ()),
        }
    })?;
    let decisions = daemon.stop().map_err(|e| format!("daemon: {e}"))?;
    if decisions.is_empty() {
        return Err("reorg-under-load: the daemon never found work on a sparsified tree".into());
    }
    finish_phase(
        &mut report,
        opts,
        &rig.addr,
        "churn-under-reorg",
        ops,
        errors,
    )?;
    shutdown_and_check(rig, &mut report)?;
    Ok(report)
}

fn crash_restart(dir: &std::path::Path, opts: &ScenarioOptions) -> Result<ScenarioReport, String> {
    let cfg = engine_config();
    let rig = start_rig(dir, opts)?;
    let mut report = ScenarioReport {
        scenario: "crash-restart".into(),
        phases: Vec::new(),
        check_clean: false,
        check_summary: String::new(),
    };
    // Every acknowledged PUT rides a forced commit record, so acknowledged
    // means durable: collect exactly what the crash must preserve.
    let n = opts.ops_per_client();
    let (ops, errors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        client.put(key_for(c, i), format!("durable-{c}-{i}").as_bytes())
    })?;
    finish_phase(&mut report, opts, &rig.addr, "churn", ops, errors)?;
    if errors > 0 {
        return Err("crash-restart: seeding failed".into());
    }

    // Crash mid-scenario: stop the frontend abruptly (no final
    // checkpoint), lose every cached page and all non-durable log bytes.
    let Rig { db, server, .. } = rig;
    server.stop_abrupt();
    db.crash(|_| false).map_err(|e| format!("crash: {e}"))?;
    drop(db);

    // Restart: reopen, recover (redo from the last checkpoint, undo
    // losers), and bring the frontend back on a fresh port.
    let db = Database::open_durable(dir, opts.pages as usize, SidePointerMode::TwoWay)
        .map_err(|e| format!("reopen: {e}"))?;
    recover(&db).map_err(|e| format!("recover: {e}"))?;
    let rig = start_server(db, &cfg)?;

    // Every acknowledged key must still be there, with the right value.
    let (vops, verrors) = fan_out(&rig.addr, opts, n, |c, i, client| {
        let k = key_for(c, i);
        match client.get(k)? {
            Some(v) if v == format!("durable-{c}-{i}").as_bytes() => Ok(()),
            Some(_) => Err(ClientError::Replica(format!("key {k}: wrong value"))),
            None => Err(ClientError::Replica(format!(
                "key {k}: acknowledged commit lost by crash"
            ))),
        }
    })?;
    finish_phase(
        &mut report,
        opts,
        &rig.addr,
        "verify-after-recovery",
        vops,
        verrors,
    )?;
    if verrors > 0 {
        return Err("crash-restart: acknowledged commits lost".into());
    }
    shutdown_and_check(rig, &mut report)?;
    Ok(report)
}
