//! The network frontend: a TCP listener, thread-per-connection sessions,
//! admission control, and graceful drain.
//!
//! # Threading model
//!
//! One **accept thread** owns the listener. Each admitted connection gets
//! its own **session thread** running [`obr_txn::Session`] operations
//! synchronously — one request in flight per connection, so a session's
//! transaction state needs no internal locking and lock-manager ownership
//! is exactly the thread's open [`obr_txn::Txn`]. Engine-side concurrency
//! is therefore bounded by the in-flight request permits of the
//! [`AdmissionGate`], not by connection count.
//!
//! # Shutdown drain ordering
//!
//! [`Server::shutdown`] (1) sets the stop flag, (2) pokes the listener
//! with a loopback connect so `accept` returns, and joins the accept
//! thread — no new sessions after this point; (3) joins every session
//! thread: each notices the flag at its next read-timeout tick (≤50 ms),
//! finishes the request it is executing, answers any already-received
//! frame (`COMMIT`/`ABORT`/`BYE` run normally so clients can finish;
//! everything else gets `SHUTTING_DOWN`), and closes — a transaction
//! still open when the session closes is aborted and its locks released;
//! (4) takes a final sharp checkpoint so a subsequent `open_durable`
//! restarts from a clean horizon.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use obr_core::{
    AdmissionGate, CoreResult, Database, EngineConfig, ReorgConfig, ReorgTrigger, Reorganizer,
};
use obr_obs::TraceKind;
use obr_sync::atomic::{AtomicBool, Ordering};
use obr_sync::Mutex;
use obr_txn::{Session, Txn, TxnError};

use crate::proto::{
    write_frame, ErrorCode, ProtoError, ProtoResult, Request, Response, ShippedSegment, MAX_FRAME,
    VERSION,
};

/// How often a blocked session read wakes up to check the stop flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// Budget for one `SEGMENTS` response's segment bytes, leaving headroom
/// under [`MAX_FRAME`] for the envelope.
const SHIP_BYTE_BUDGET: usize = MAX_FRAME - (64 << 10);

/// Frontend knobs. [`ServerConfig::from_engine`] lifts the admission
/// limits out of an [`EngineConfig`] so the two stay in one place.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:4140` (port 0 picks a free port).
    pub addr: String,
    /// Concurrent session ceiling (see [`EngineConfig::max_sessions`]).
    pub max_sessions: usize,
    /// In-flight request ceiling (see [`EngineConfig::admission_queue`]).
    pub admission_queue: usize,
    /// Default segments per `SHIP` response when the request says 0.
    pub ship_batch: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::from_engine("127.0.0.1:0", &EngineConfig::default())
    }
}

impl ServerConfig {
    /// A config bound to `addr` with admission limits from `cfg`.
    pub fn from_engine(addr: &str, cfg: &EngineConfig) -> ServerConfig {
        ServerConfig {
            addr: addr.to_string(),
            max_sessions: cfg.max_sessions,
            admission_queue: cfg.admission_queue,
            ship_batch: 4,
        }
    }
}

struct Shared {
    db: Arc<Database>,
    gate: AdmissionGate,
    stop: AtomicBool,
    addr: SocketAddr,
    ship_batch: u32,
}

/// A running frontend. Dropping it without [`Server::shutdown`] stops the
/// threads but skips the final checkpoint.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind and start serving `db` per `cfg`.
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let gate = AdmissionGate::new(cfg.max_sessions, cfg.admission_queue);
        gate.register_metrics(db.metrics());
        let shared = Arc::new(Shared {
            db,
            gate,
            stop: AtomicBool::new(false),
            addr,
            ship_batch: cfg.ship_batch.max(1),
        });
        let sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::named(Vec::new(), "server.conns"));
        let accept = {
            let shared = Arc::clone(&shared);
            let sessions = Arc::clone(&sessions);
            std::thread::Builder::new()
                .name("obr-server-accept".into())
                .spawn(move || accept_loop(listener, shared, sessions))
                .expect("spawn accept thread")
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            sessions,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live sessions right now.
    pub fn sessions(&self) -> usize {
        self.shared.gate.sessions()
    }

    /// Graceful shutdown: drain sessions, then checkpoint. See the module
    /// docs for the exact ordering.
    pub fn shutdown(mut self) -> CoreResult<()> {
        self.stop_threads();
        self.shared.db.checkpoint()?;
        Ok(())
    }

    /// Abrupt stop for crash simulation: threads are stopped but **no**
    /// final checkpoint is taken, leaving the on-disk state exactly as the
    /// workload left it (pair with [`Database::crash`]).
    pub fn stop_abrupt(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        // relaxed: the flag is a pure go/no-go signal polled by every
        // thread; no data is published through it.
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.db.tracer().emit(
            TraceKind::ServerDrain,
            0,
            0,
            0,
            self.shared.gate.sessions() as u64,
            0,
        );
        // Unblock accept(): it re-checks the flag per connection.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.sessions.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_threads();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                // relaxed: go/no-go flag (see stop_threads).
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        // relaxed: go/no-go flag.
        if shared.stop.load(Ordering::Relaxed) {
            return; // the shutdown poke, or a late client — either way, done
        }
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("obr-server-conn".into())
            .spawn(move || serve_connection(shared2, stream))
            .expect("spawn session thread");
        let mut g = sessions.lock();
        // Reap finished threads so a long-lived server's handle list stays
        // proportional to live connections, not historical ones.
        let mut i = 0;
        while i < g.len() {
            if g[i].is_finished() {
                let _ = g.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        g.push(handle);
    }
}

/// Read one frame, waking every [`READ_TICK`] to check the stop flag.
/// `Ok(None)` means the stop flag was set while **no** frame was in
/// progress (idle drain); a frame whose bytes have started arriving is
/// read to completion even during drain.
fn read_frame_draining(stream: &mut TcpStream, stop: &AtomicBool) -> ProtoResult<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Err(ProtoError::Closed),
            Ok(0) => return Err(ProtoError::Truncated("frame length")),
            Ok(n) => got += n,
            Err(e) if is_timeout(&e) => {
                // relaxed: go/no-go flag.
                if got == 0 && stop.load(Ordering::Relaxed) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let n = u32::from_be_bytes(len) as usize;
    if n == 0 {
        return Err(ProtoError::EmptyFrame);
    }
    if n > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(n));
    }
    let mut payload = vec![0u8; n];
    let mut got = 0usize;
    while got < n {
        match stream.read(&mut payload[got..]) {
            Ok(0) => return Err(ProtoError::Truncated("frame payload")),
            Ok(k) => got += k,
            Err(e) if is_timeout(&e) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(Some(payload))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn send(stream: &mut TcpStream, resp: &Response) -> ProtoResult<()> {
    write_frame(stream, &resp.encode())
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Err {
        code,
        message: message.into(),
    }
}

/// Per-connection state: the session handle and the (at most one) open
/// transaction it owns.
struct Conn {
    session: Session,
    txn: Option<Txn>,
    served: u64,
}

fn serve_connection(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);

    // Handshake: the first frame must be a version-compatible HELLO, and
    // admission happens here so a shed connection never costs more than
    // one frame exchange.
    let payload = match read_frame_draining(&mut stream, &shared.stop) {
        Ok(Some(p)) => p,
        Ok(None) | Err(ProtoError::Closed) | Err(ProtoError::Io(_)) => return,
        Err(e) => {
            // Malformed framing before the handshake still deserves a
            // typed answer so a confused client can diagnose itself.
            let _ = send(&mut stream, &err(ErrorCode::BadRequest, e.to_string()));
            return;
        }
    };
    match Request::decode(&payload) {
        Ok(Request::Hello { version }) if version == VERSION => {}
        Ok(Request::Hello { version }) => {
            let _ = send(
                &mut stream,
                &err(
                    ErrorCode::Version,
                    format!("server speaks version {VERSION}, client sent {version}"),
                ),
            );
            return;
        }
        Ok(_) => {
            let _ = send(
                &mut stream,
                &err(ErrorCode::BadRequest, "first frame must be HELLO"),
            );
            return;
        }
        Err(e) => {
            let _ = send(&mut stream, &err(ErrorCode::BadRequest, e.to_string()));
            return;
        }
    }
    // relaxed: go/no-go flag.
    if shared.stop.load(Ordering::Relaxed) {
        let _ = send(
            &mut stream,
            &err(ErrorCode::ShuttingDown, "server is draining"),
        );
        return;
    }
    let permit = match shared.gate.admit_session() {
        Ok(p) => p,
        Err(busy) => {
            shared
                .db
                .tracer()
                .emit(TraceKind::ServerShed, 0, 0, 0, 0, 0);
            let _ = send(&mut stream, &err(ErrorCode::Busy, busy.to_string()));
            return;
        }
    };
    shared.db.tracer().emit(
        TraceKind::SessionOpen,
        0,
        0,
        0,
        shared.gate.sessions() as u64,
        0,
    );
    if send(&mut stream, &Response::HelloOk { version: VERSION }).is_err() {
        drop(permit);
        return;
    }

    let mut conn = Conn {
        session: Session::new(Arc::clone(&shared.db)),
        txn: None,
        served: 0,
    };
    loop {
        let payload = match read_frame_draining(&mut stream, &shared.stop) {
            Ok(Some(p)) => p,
            Ok(None) => break, // idle drain
            Err(ProtoError::Closed) => break,
            Err(ProtoError::Io(_)) => break,
            Err(e) => {
                // Malformed framing: after a bad frame the stream position
                // is unknowable, so answer and close.
                let _ = send(&mut stream, &err(ErrorCode::BadRequest, e.to_string()));
                break;
            }
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let _ = send(&mut stream, &err(ErrorCode::BadRequest, e.to_string()));
                break;
            }
        };
        // relaxed: go/no-go flag.
        let draining = shared.stop.load(Ordering::Relaxed);
        if draining && !matches!(req, Request::Commit | Request::Abort | Request::Bye) {
            let _ = send(
                &mut stream,
                &err(ErrorCode::ShuttingDown, "server is draining"),
            );
            break;
        }
        if matches!(req, Request::Bye) {
            let _ = send(&mut stream, &Response::Ok);
            break;
        }
        let resp = match req {
            Request::Ping => Response::Pong, // control plane: no permit
            Request::Hello { .. } => err(ErrorCode::BadRequest, "HELLO after handshake"),
            _ => match shared.gate.start_request() {
                Err(busy) => {
                    shared
                        .db
                        .tracer()
                        .emit(TraceKind::ServerShed, 0, 0, 0, 1, 0);
                    err(ErrorCode::Busy, busy.to_string())
                }
                Ok(_permit) => {
                    conn.served += 1;
                    handle_request(&shared, &mut conn, req)
                }
            },
        };
        if send(&mut stream, &resp).is_err() {
            break;
        }
        if draining {
            break; // one drain-time answer, then close
        }
    }
    // A transaction still open at session end is aborted (locks released).
    if let Some(txn) = conn.txn.take() {
        let _ = txn.abort();
    }
    let served = conn.served;
    drop(permit);
    shared.db.tracer().emit(
        TraceKind::SessionClose,
        0,
        0,
        0,
        shared.gate.sessions() as u64,
        served,
    );
}

fn handle_request(shared: &Shared, conn: &mut Conn, req: Request) -> Response {
    match req {
        Request::Get { key } => {
            let r = match conn.txn.as_mut() {
                Some(t) => t.get(key),
                None => conn.session.read(key),
            };
            match r {
                Ok(v) => Response::Value(v),
                Err(e) => txn_error(conn, e),
            }
        }
        Request::Put { key, value } => {
            let r = match conn.txn.as_mut() {
                // Transactional PUT is a strict insert: upsert semantics
                // would need the read-your-deletes bookkeeping the engine
                // reserves for explicit update(), so duplicates are typed.
                Some(t) => t.insert(key, &value),
                None => upsert(&conn.session, key, &value),
            };
            match r {
                Ok(()) => Response::Ok,
                Err(e) => txn_error(conn, e),
            }
        }
        Request::Delete { key } => {
            let r = match conn.txn.as_mut() {
                Some(t) => t.delete(key),
                None => conn.session.delete(key),
            };
            match r {
                Ok(old) => Response::Value(Some(old)),
                Err(e) => txn_error(conn, e),
            }
        }
        Request::Scan { lo, hi, limit } => {
            let cap = if limit == 0 {
                crate::proto::DEFAULT_SCAN_LIMIT
            } else {
                limit
            } as usize;
            let r = match conn.txn.as_mut() {
                Some(t) => t.scan(lo, hi),
                None => conn.session.scan(lo, hi),
            };
            match r {
                Ok(mut rows) => {
                    let truncated = rows.len() > cap;
                    rows.truncate(cap);
                    Response::Rows { rows, truncated }
                }
                Err(e) => txn_error(conn, e),
            }
        }
        Request::Begin => {
            if conn.txn.is_some() {
                err(ErrorCode::TxnState, "a transaction is already open")
            } else {
                conn.txn = Some(conn.session.begin());
                Response::Ok
            }
        }
        Request::Commit => match conn.txn.take() {
            None => err(ErrorCode::TxnState, "no open transaction"),
            Some(t) => match t.commit() {
                Ok(()) => Response::Ok,
                Err(e) => txn_error(conn, e),
            },
        },
        Request::Abort => match conn.txn.take() {
            None => err(ErrorCode::TxnState, "no open transaction"),
            Some(t) => match t.abort() {
                Ok(()) => Response::Ok,
                Err(e) => txn_error(conn, e),
            },
        },
        Request::Stats => match shared.db.metrics_snapshot() {
            Ok(s) => Response::Json(s.to_json()),
            Err(e) => err(ErrorCode::Internal, e.to_string()),
        },
        Request::Checkpoint => match shared.db.checkpoint() {
            Ok(_) => Response::Ok,
            Err(e) => err(ErrorCode::Internal, e.to_string()),
        },
        Request::Reorg { force } => {
            let trigger = if force {
                // Thresholds every real tree fails, so every pass runs.
                ReorgTrigger {
                    min_fill: 1.0,
                    max_disorder: 0.0,
                    min_leaves_for_swap: 0,
                    shrink: true,
                }
            } else {
                ReorgTrigger::default()
            };
            let reorg = Reorganizer::new(Arc::clone(&shared.db), ReorgConfig::default());
            match reorg.run_if_needed(trigger) {
                Ok(d) => Response::ReorgDone {
                    compacted: d.compacted,
                    swapped: d.swapped,
                    shrunk: d.shrunk,
                },
                Err(e) => err(ErrorCode::Internal, e.to_string()),
            }
        }
        Request::DbInfo => Response::Info {
            pages: shared.db.disk().num_pages(),
            side_mode: shared.db.tree().side_mode(),
            first_lsn: shared.db.log().first_lsn(),
            durable_lsn: shared.db.log().durable_lsn(),
        },
        Request::Ship {
            from_lsn,
            max_segments,
        } => handle_ship(shared, from_lsn, max_segments),
        // Handled by the caller before the permit was taken.
        Request::Hello { .. } | Request::Bye | Request::Ping => {
            err(ErrorCode::BadRequest, "unreachable control frame")
        }
    }
}

/// Outside-transaction PUT: insert, and on a duplicate fall back to
/// update, all inside one auto-commit transaction.
fn upsert(session: &Session, key: u64, value: &[u8]) -> Result<(), TxnError> {
    let mut t = session.begin();
    match t.insert(key, value) {
        Ok(()) => {}
        Err(TxnError::KeyExists(_)) => {
            t.update(key, value)?;
        }
        Err(e) => {
            let _ = t.abort();
            return Err(e);
        }
    }
    t.commit()
}

/// Map an engine error to its wire code. Deadlock and timeout abort the
/// connection's open transaction (the victim must restart anyway; holding
/// its locks while the client decides would extend the cycle).
fn txn_error(conn: &mut Conn, e: TxnError) -> Response {
    let code = match &e {
        TxnError::Deadlock => ErrorCode::Deadlock,
        TxnError::Timeout => ErrorCode::Timeout,
        TxnError::KeyExists(_) => ErrorCode::KeyExists,
        TxnError::KeyNotFound(_) => ErrorCode::KeyNotFound,
        TxnError::Engine(_) => ErrorCode::Internal,
    };
    if matches!(code, ErrorCode::Deadlock | ErrorCode::Timeout) {
        if let Some(t) = conn.txn.take() {
            let _ = t.abort();
        }
    }
    err(code, e.to_string())
}

fn handle_ship(shared: &Shared, from_lsn: obr_storage::Lsn, max_segments: u32) -> Response {
    let log = shared.db.log();
    if !log.is_segmented() {
        return err(
            ErrorCode::NotDurable,
            "this database has no segmented WAL to ship",
        );
    }
    let durable_lsn = log.durable_lsn();
    let first_available_lsn = log.first_lsn();
    let catalog = log.segment_catalog();
    let relevant: Vec<_> = catalog
        .into_iter()
        .filter(|s| s.end_lsn > from_lsn)
        .collect();
    let cap = if max_segments == 0 {
        shared.ship_batch as usize
    } else {
        max_segments as usize
    };
    let mut segments = Vec::new();
    let mut bytes_used = 0usize;
    let mut more = false;
    for meta in &relevant {
        if segments.len() >= cap {
            more = true;
            break;
        }
        let bytes = match std::fs::read(&meta.path) {
            Ok(b) => b,
            // A sealed segment can vanish mid-batch when checkpoint
            // truncation recycles it; ship what we have and let the
            // replica's gap/floor logic decide whether a re-seed is due.
            Err(_) => {
                more = true;
                break;
            }
        };
        if bytes_used + bytes.len() > SHIP_BYTE_BUDGET && !segments.is_empty() {
            more = true;
            break;
        }
        bytes_used += bytes.len();
        segments.push(ShippedSegment {
            first_lsn: meta.first_lsn,
            sealed: meta.sealed,
            bytes,
        });
    }
    Response::Segments {
        more,
        durable_lsn,
        first_available_lsn,
        segments,
    }
}
