//! Network frontend for the obr engine.
//!
//! The paper's experiments drive the reorganizer from in-process
//! workloads; a deployed system serves *clients*. This crate puts the
//! assembled [`obr_core::Database`] behind a TCP listener speaking the
//! length-prefixed binary protocol specified in `PROTOCOL.md`:
//!
//! * [`proto`] — the wire codec: framing, opcodes, typed error codes.
//! * [`server`] — the frontend: thread-per-connection sessions over
//!   [`obr_txn::Session`], admission control via
//!   [`obr_core::AdmissionGate`] (bounded sessions + bounded in-flight
//!   requests, shedding with `BUSY`), graceful drain, and WAL segment
//!   shipping so a [`obr_core::Replica`] can follow over the wire.
//! * [`client`] — a blocking client plus [`client::NetReplica`], a
//!   replica that bootstraps and catches up entirely over the protocol.
//! * [`scenario`] — the scripted scenario suite: bulk load, steady
//!   churn, delete-epoch sparsification, reorganization under load, and
//!   crash–restart, each phase emitting a metrics snapshot and ending
//!   with an integrity check.

pub mod client;
pub mod proto;
pub mod scenario;
pub mod server;

pub use client::{Client, ClientError, DbInfo, NetReplica};
pub use proto::{ErrorCode, ProtoError, Request, Response};
pub use scenario::{run_scenario, ScenarioOptions, ScenarioReport, SCENARIOS};
pub use server::{Server, ServerConfig};
