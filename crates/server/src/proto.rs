//! The obr wire protocol: framing, opcodes, and the codec.
//!
//! This module is the *implementation* of the normative spec in
//! `PROTOCOL.md` at the repository root; the two are kept in lockstep and
//! the spec wins on any divergence. Summary:
//!
//! * Every message is one **frame**: a 4-byte big-endian length `N`
//!   followed by `N` payload bytes. `N` counts the payload only, must be
//!   at least 1 (the opcode byte) and at most [`MAX_FRAME`].
//! * The payload is a 1-byte **opcode** followed by an opcode-specific
//!   body. All integers are big-endian; byte strings are a `u32` length
//!   followed by the raw bytes.
//! * Decoding is strict: a body that is short **or leaves trailing
//!   bytes** is a protocol error — there are no optional fields, so any
//!   length mismatch means the peer is confused and the connection state
//!   is unknowable.
//!
//! The codec never panics on hostile input: every malformed encoding maps
//! to a typed [`ProtoError`] (the fuzz-ish tests at the bottom drive
//! truncations and bit flips through both decoders).

use std::fmt;
use std::io::{Read, Write};

use obr_btree::SidePointerMode;
use obr_storage::Lsn;

/// Protocol magic carried in `HELLO` (`b"OBR1"`).
pub const MAGIC: [u8; 4] = *b"OBR1";

/// Current protocol version. A server answers a `HELLO` whose major
/// version differs with `ERR(VERSION)` and closes.
pub const VERSION: u16 = 1;

/// Hard ceiling on one frame's payload (8 MiB): fits one default-sized
/// (4 MiB) WAL segment per `SEGMENTS` frame with headroom, and bounds a
/// hostile length prefix's allocation.
pub const MAX_FRAME: usize = 8 << 20;

/// Ceiling on one record value (256 KiB), enforced on encode and decode.
pub const MAX_VALUE: usize = 256 << 10;

/// Default `SCAN` row cap when the request's limit field is zero.
pub const DEFAULT_SCAN_LIMIT: u32 = 4_096;

/// Typed error codes carried by `ERR` responses. The numeric value is
/// the wire encoding and is frozen by PROTOCOL.md §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Admission control shed the session or request; retry with backoff.
    Busy = 1,
    /// The transaction was chosen as a deadlock victim; restart it.
    Deadlock = 2,
    /// A lock wait timed out; restart the transaction.
    Timeout = 3,
    /// Insert of a key that already exists (transactional `PUT` only).
    KeyExists = 4,
    /// Delete of a key that does not exist.
    KeyNotFound = 5,
    /// Malformed or inapplicable request; the connection closes after.
    BadRequest = 6,
    /// The server is draining; finish up and disconnect.
    ShuttingDown = 7,
    /// Transaction-state violation (`BEGIN` inside a transaction,
    /// `COMMIT`/`ABORT` outside one).
    TxnState = 8,
    /// `HELLO` version or magic mismatch; the connection closes after.
    Version = 9,
    /// Engine-side failure; details in the message.
    Internal = 10,
    /// Segment shipping requested from a memory-only (non-durable) log.
    NotDurable = 11,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Busy,
            2 => ErrorCode::Deadlock,
            3 => ErrorCode::Timeout,
            4 => ErrorCode::KeyExists,
            5 => ErrorCode::KeyNotFound,
            6 => ErrorCode::BadRequest,
            7 => ErrorCode::ShuttingDown,
            8 => ErrorCode::TxnState,
            9 => ErrorCode::Version,
            10 => ErrorCode::Internal,
            11 => ErrorCode::NotDurable,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Busy => "BUSY",
            ErrorCode::Deadlock => "DEADLOCK",
            ErrorCode::Timeout => "TIMEOUT",
            ErrorCode::KeyExists => "KEY_EXISTS",
            ErrorCode::KeyNotFound => "KEY_NOT_FOUND",
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::TxnState => "TXN_STATE",
            ErrorCode::Version => "VERSION",
            ErrorCode::Internal => "INTERNAL",
            ErrorCode::NotDurable => "NOT_DURABLE",
        };
        f.write_str(s)
    }
}

/// Everything that can go wrong between bytes and messages.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// A frame's length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// A frame with a zero-length payload (no opcode).
    EmptyFrame,
    /// An opcode byte neither side of this version emits.
    UnknownOpcode(u8),
    /// The body ended before a field was complete.
    Truncated(&'static str),
    /// The body was longer than its opcode's fields.
    Trailing(usize),
    /// `HELLO` carried the wrong magic.
    BadMagic([u8; 4]),
    /// A value or message exceeded [`MAX_VALUE`].
    ValueTooLarge(usize),
    /// A field carried an invalid enum discriminant.
    BadField(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::FrameTooLarge(n) => {
                write!(f, "frame payload of {n} bytes exceeds {MAX_FRAME}")
            }
            ProtoError::EmptyFrame => write!(f, "zero-length frame (no opcode)"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::Truncated(what) => write!(f, "frame truncated inside {what}"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after message body"),
            ProtoError::BadMagic(m) => write!(f, "bad HELLO magic {m:02x?}"),
            ProtoError::ValueTooLarge(n) => {
                write!(f, "value of {n} bytes exceeds {MAX_VALUE}")
            }
            ProtoError::BadField(what) => write!(f, "invalid field value for {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Result alias for codec operations.
pub type ProtoResult<T> = Result<T, ProtoError>;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake; must be the first frame on a connection.
    Hello {
        /// Client protocol version (see [`VERSION`]).
        version: u16,
    },
    /// Orderly goodbye; the server closes after acknowledging.
    Bye,
    /// Liveness probe.
    Ping,
    /// Point read.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Upsert outside a transaction; strict insert inside one (a
    /// duplicate key answers `ERR(KEY_EXISTS)` transactionally).
    Put {
        /// Key to write.
        key: u64,
        /// Value bytes (at most [`MAX_VALUE`]).
        value: Vec<u8>,
    },
    /// Delete; answers the old value.
    Delete {
        /// Key to delete.
        key: u64,
    },
    /// Inclusive range scan, capped at `limit` rows (0 means
    /// [`DEFAULT_SCAN_LIMIT`]); paginate by re-issuing from
    /// `last_key + 1`.
    Scan {
        /// Lowest key of the range.
        lo: u64,
        /// Highest key of the range (inclusive).
        hi: u64,
        /// Row cap; 0 selects the server default.
        limit: u32,
    },
    /// Open the session's transaction (at most one per session).
    Begin,
    /// Commit the session's transaction (forces the commit record).
    Commit,
    /// Abort the session's transaction (undo via CLRs).
    Abort,
    /// Full metrics-registry snapshot as JSON.
    Stats,
    /// Admin: force a sharp checkpoint.
    Checkpoint,
    /// Admin: evaluate the reorganization trigger and run whichever
    /// passes are needed (`force` runs all three unconditionally).
    Reorg {
        /// True to run every pass regardless of the trigger.
        force: bool,
    },
    /// Shape and log position of the database, for replica bootstrap.
    DbInfo,
    /// Ship WAL segments holding records past `from_lsn` (exclusive),
    /// at most `max_segments` per response (0 means server default).
    Ship {
        /// Ship records with LSN strictly greater than this.
        from_lsn: Lsn,
        /// Segment cap per response; 0 selects the server default.
        max_segments: u32,
    },
}

/// One shipped WAL segment within [`Response::Segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedSegment {
    /// LSN of the segment's first record.
    pub first_lsn: Lsn,
    /// True for an immutable sealed segment; false for the active
    /// segment's intact prefix (may grow on the next ship).
    pub sealed: bool,
    /// Raw segment bytes, exactly as on the primary's disk.
    pub bytes: Vec<u8>,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// Server protocol version.
        version: u16,
    },
    /// Success with nothing else to say (`PUT`, `BEGIN`, `COMMIT`, …).
    Ok,
    /// Liveness answer.
    Pong,
    /// Point-read or delete answer; `None` when the key was absent.
    Value(Option<Vec<u8>>),
    /// Scan answer. `truncated` is set when the row cap cut the range
    /// short (paginate from `last_key + 1`).
    Rows {
        /// The rows, in ascending key order.
        rows: Vec<(u64, Vec<u8>)>,
        /// True when the cap, not the range end, ended the scan.
        truncated: bool,
    },
    /// UTF-8 JSON payload (`STATS`).
    Json(String),
    /// Database shape and log position (`DB_INFO`).
    Info {
        /// Page count of the primary's disk.
        pages: u32,
        /// Side-pointer mode the tree was created with.
        side_mode: SidePointerMode,
        /// Oldest LSN still available in the primary's log.
        first_lsn: Lsn,
        /// Primary's durable LSN at answer time.
        durable_lsn: Lsn,
    },
    /// Shipped segments (`SHIP`).
    Segments {
        /// True when more segments exist past this batch — re-issue
        /// `SHIP` from the new applied LSN.
        more: bool,
        /// Primary's durable LSN: cap application of unsealed bytes here.
        durable_lsn: Lsn,
        /// Oldest LSN the primary can still ship; a replica needing
        /// older records must re-seed from a snapshot.
        first_available_lsn: Lsn,
        /// The segments, oldest first.
        segments: Vec<ShippedSegment>,
    },
    /// Reorganization outcome (`REORG`).
    ReorgDone {
        /// Pass 1 ran.
        compacted: bool,
        /// Pass 2 ran.
        swapped: bool,
        /// Pass 3 ran.
        shrunk: bool,
    },
    /// Typed failure; see [`ErrorCode`] for retry semantics.
    Err {
        /// The typed code.
        code: ErrorCode,
        /// Human-readable detail (UTF-8, for operators; never parse it).
        message: String,
    },
}

// --- body reader -----------------------------------------------------------

struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn new(buf: &'a [u8]) -> Body<'a> {
        Body { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> ProtoResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> ProtoResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> ProtoResult<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> ProtoResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> ProtoResult<u64> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn bytes(&mut self, what: &'static str) -> ProtoResult<Vec<u8>> {
        let len = self.u32(what)? as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::ValueTooLarge(len));
        }
        Ok(self.take(len, what)?.to_vec())
    }

    fn finish(self) -> ProtoResult<()> {
        let extra = self.buf.len() - self.pos;
        if extra != 0 {
            return Err(ProtoError::Trailing(extra));
        }
        Ok(())
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

fn side_mode_to_u8(m: SidePointerMode) -> u8 {
    match m {
        SidePointerMode::None => 0,
        SidePointerMode::OneWay => 1,
        SidePointerMode::TwoWay => 2,
    }
}

fn side_mode_from_u8(v: u8) -> ProtoResult<SidePointerMode> {
    Ok(match v {
        0 => SidePointerMode::None,
        1 => SidePointerMode::OneWay,
        2 => SidePointerMode::TwoWay,
        _ => return Err(ProtoError::BadField("side_mode")),
    })
}

// --- request codec ---------------------------------------------------------

impl Request {
    /// Encode into a frame payload (opcode + body; no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { version } => {
                out.push(0x01);
                out.extend_from_slice(&MAGIC);
                out.extend_from_slice(&version.to_be_bytes());
            }
            Request::Bye => out.push(0x02),
            Request::Ping => out.push(0x03),
            Request::Get { key } => {
                out.push(0x10);
                out.extend_from_slice(&key.to_be_bytes());
            }
            Request::Put { key, value } => {
                out.push(0x11);
                out.extend_from_slice(&key.to_be_bytes());
                put_bytes(&mut out, value);
            }
            Request::Delete { key } => {
                out.push(0x12);
                out.extend_from_slice(&key.to_be_bytes());
            }
            Request::Scan { lo, hi, limit } => {
                out.push(0x13);
                out.extend_from_slice(&lo.to_be_bytes());
                out.extend_from_slice(&hi.to_be_bytes());
                out.extend_from_slice(&limit.to_be_bytes());
            }
            Request::Begin => out.push(0x20),
            Request::Commit => out.push(0x21),
            Request::Abort => out.push(0x22),
            Request::Stats => out.push(0x30),
            Request::Checkpoint => out.push(0x31),
            Request::Reorg { force } => {
                out.push(0x32);
                out.push(u8::from(*force));
            }
            Request::DbInfo => out.push(0x33),
            Request::Ship {
                from_lsn,
                max_segments,
            } => {
                out.push(0x40);
                out.extend_from_slice(&from_lsn.0.to_be_bytes());
                out.extend_from_slice(&max_segments.to_be_bytes());
            }
        }
        out
    }

    /// Decode a frame payload. Strict: short bodies, trailing bytes, and
    /// unknown opcodes are all errors.
    pub fn decode(payload: &[u8]) -> ProtoResult<Request> {
        let Some((&op, body)) = payload.split_first() else {
            return Err(ProtoError::EmptyFrame);
        };
        let mut b = Body::new(body);
        let req = match op {
            0x01 => {
                let magic = b.take(4, "hello.magic")?;
                if magic != MAGIC {
                    let mut m = [0u8; 4];
                    m.copy_from_slice(magic);
                    return Err(ProtoError::BadMagic(m));
                }
                Request::Hello {
                    version: b.u16("hello.version")?,
                }
            }
            0x02 => Request::Bye,
            0x03 => Request::Ping,
            0x10 => Request::Get {
                key: b.u64("get.key")?,
            },
            0x11 => {
                let key = b.u64("put.key")?;
                let value = b.bytes("put.value")?;
                if value.len() > MAX_VALUE {
                    return Err(ProtoError::ValueTooLarge(value.len()));
                }
                Request::Put { key, value }
            }
            0x12 => Request::Delete {
                key: b.u64("delete.key")?,
            },
            0x13 => Request::Scan {
                lo: b.u64("scan.lo")?,
                hi: b.u64("scan.hi")?,
                limit: b.u32("scan.limit")?,
            },
            0x20 => Request::Begin,
            0x21 => Request::Commit,
            0x22 => Request::Abort,
            0x30 => Request::Stats,
            0x31 => Request::Checkpoint,
            0x32 => Request::Reorg {
                force: b.u8("reorg.force")? != 0,
            },
            0x33 => Request::DbInfo,
            0x40 => Request::Ship {
                from_lsn: Lsn(b.u64("ship.from_lsn")?),
                max_segments: b.u32("ship.max_segments")?,
            },
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        b.finish()?;
        Ok(req)
    }
}

// --- response codec --------------------------------------------------------

impl Response {
    /// Encode into a frame payload (opcode + body; no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::HelloOk { version } => {
                out.push(0x81);
                out.extend_from_slice(&version.to_be_bytes());
            }
            Response::Ok => out.push(0x80),
            Response::Pong => out.push(0x88),
            Response::Value(v) => {
                out.push(0x82);
                match v {
                    Some(v) => {
                        out.push(1);
                        put_bytes(&mut out, v);
                    }
                    None => out.push(0),
                }
            }
            Response::Rows { rows, truncated } => {
                out.push(0x83);
                out.push(u8::from(*truncated));
                out.extend_from_slice(&(rows.len() as u32).to_be_bytes());
                for (k, v) in rows {
                    out.extend_from_slice(&k.to_be_bytes());
                    put_bytes(&mut out, v);
                }
            }
            Response::Json(s) => {
                out.push(0x84);
                put_bytes(&mut out, s.as_bytes());
            }
            Response::Info {
                pages,
                side_mode,
                first_lsn,
                durable_lsn,
            } => {
                out.push(0x85);
                out.extend_from_slice(&pages.to_be_bytes());
                out.push(side_mode_to_u8(*side_mode));
                out.extend_from_slice(&first_lsn.0.to_be_bytes());
                out.extend_from_slice(&durable_lsn.0.to_be_bytes());
            }
            Response::Segments {
                more,
                durable_lsn,
                first_available_lsn,
                segments,
            } => {
                out.push(0x86);
                out.push(u8::from(*more));
                out.extend_from_slice(&durable_lsn.0.to_be_bytes());
                out.extend_from_slice(&first_available_lsn.0.to_be_bytes());
                out.extend_from_slice(&(segments.len() as u32).to_be_bytes());
                for s in segments {
                    out.extend_from_slice(&s.first_lsn.0.to_be_bytes());
                    out.push(u8::from(s.sealed));
                    put_bytes(&mut out, &s.bytes);
                }
            }
            Response::ReorgDone {
                compacted,
                swapped,
                shrunk,
            } => {
                out.push(0x87);
                out.push(
                    u8::from(*compacted) | (u8::from(*swapped) << 1) | (u8::from(*shrunk) << 2),
                );
            }
            Response::Err { code, message } => {
                out.push(0xEE);
                out.push(*code as u8);
                put_bytes(&mut out, message.as_bytes());
            }
        }
        out
    }

    /// Decode a frame payload, mirroring [`Request::decode`]'s strictness.
    pub fn decode(payload: &[u8]) -> ProtoResult<Response> {
        let Some((&op, body)) = payload.split_first() else {
            return Err(ProtoError::EmptyFrame);
        };
        let mut b = Body::new(body);
        let resp = match op {
            0x80 => Response::Ok,
            0x88 => Response::Pong,
            0x81 => Response::HelloOk {
                version: b.u16("hello_ok.version")?,
            },
            0x82 => {
                let present = b.u8("value.present")?;
                match present {
                    0 => Response::Value(None),
                    1 => Response::Value(Some(b.bytes("value.bytes")?)),
                    _ => return Err(ProtoError::BadField("value.present")),
                }
            }
            0x83 => {
                let truncated = b.u8("rows.truncated")? != 0;
                let count = b.u32("rows.count")? as usize;
                // Cap the pre-allocation: a hostile count cannot ask for
                // more rows than the remaining body could possibly hold.
                let mut rows = Vec::with_capacity(count.min(MAX_FRAME / 12));
                for _ in 0..count {
                    let k = b.u64("rows.key")?;
                    let v = b.bytes("rows.value")?;
                    rows.push((k, v));
                }
                Response::Rows { rows, truncated }
            }
            0x84 => {
                let bytes = b.bytes("json.body")?;
                let s = String::from_utf8(bytes).map_err(|_| ProtoError::BadField("json.utf8"))?;
                Response::Json(s)
            }
            0x85 => Response::Info {
                pages: b.u32("info.pages")?,
                side_mode: side_mode_from_u8(b.u8("info.side_mode")?)?,
                first_lsn: Lsn(b.u64("info.first_lsn")?),
                durable_lsn: Lsn(b.u64("info.durable_lsn")?),
            },
            0x86 => {
                let more = b.u8("segments.more")? != 0;
                let durable_lsn = Lsn(b.u64("segments.durable_lsn")?);
                let first_available_lsn = Lsn(b.u64("segments.first_available_lsn")?);
                let count = b.u32("segments.count")? as usize;
                let mut segments = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    let first_lsn = Lsn(b.u64("segments.first_lsn")?);
                    let sealed = b.u8("segments.sealed")? != 0;
                    let bytes = b.bytes("segments.bytes")?;
                    segments.push(ShippedSegment {
                        first_lsn,
                        sealed,
                        bytes,
                    });
                }
                Response::Segments {
                    more,
                    durable_lsn,
                    first_available_lsn,
                    segments,
                }
            }
            0x87 => {
                let bits = b.u8("reorg_done.bits")?;
                if bits > 0b111 {
                    return Err(ProtoError::BadField("reorg_done.bits"));
                }
                Response::ReorgDone {
                    compacted: bits & 1 != 0,
                    swapped: bits & 2 != 0,
                    shrunk: bits & 4 != 0,
                }
            }
            0xEE => {
                let code = b.u8("err.code")?;
                let code = ErrorCode::from_u8(code).ok_or(ProtoError::BadField("err.code"))?;
                let msg = b.bytes("err.message")?;
                let message =
                    String::from_utf8(msg).map_err(|_| ProtoError::BadField("err.utf8"))?;
                Response::Err { code, message }
            }
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        b.finish()?;
        Ok(resp)
    }
}

// --- frame i/o -------------------------------------------------------------

/// Write one frame: 4-byte big-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> ProtoResult<()> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. [`ProtoError::Closed`] means the peer hung
/// up cleanly *between* frames; EOF inside a frame is
/// [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> ProtoResult<Vec<u8>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Err(ProtoError::Closed),
            0 => return Err(ProtoError::Truncated("frame length")),
            n => got += n,
        }
    }
    let n = u32::from_be_bytes(len) as usize;
    if n == 0 {
        return Err(ProtoError::EmptyFrame);
    }
    if n > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(n));
    }
    let mut payload = vec![0u8; n];
    let mut got = 0;
    while got < n {
        match r.read(&mut payload[got..])? {
            0 => return Err(ProtoError::Truncated("frame payload")),
            k => got += k,
        }
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello { version: VERSION },
            Request::Bye,
            Request::Ping,
            Request::Get { key: 42 },
            Request::Put {
                key: u64::MAX,
                value: b"value bytes".to_vec(),
            },
            Request::Put {
                key: 0,
                value: Vec::new(),
            },
            Request::Delete { key: 7 },
            Request::Scan {
                lo: 10,
                hi: 99,
                limit: 128,
            },
            Request::Begin,
            Request::Commit,
            Request::Abort,
            Request::Stats,
            Request::Checkpoint,
            Request::Reorg { force: true },
            Request::Reorg { force: false },
            Request::DbInfo,
            Request::Ship {
                from_lsn: Lsn(123),
                max_segments: 4,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk { version: VERSION },
            Response::Ok,
            Response::Pong,
            Response::Value(None),
            Response::Value(Some(b"v".to_vec())),
            Response::Rows {
                rows: vec![(1, b"a".to_vec()), (2, Vec::new())],
                truncated: true,
            },
            Response::Rows {
                rows: Vec::new(),
                truncated: false,
            },
            Response::Json("{\"x\":1}".into()),
            Response::Info {
                pages: 4096,
                side_mode: SidePointerMode::TwoWay,
                first_lsn: Lsn(5),
                durable_lsn: Lsn(99),
            },
            Response::Segments {
                more: true,
                durable_lsn: Lsn(50),
                first_available_lsn: Lsn(1),
                segments: vec![ShippedSegment {
                    first_lsn: Lsn(1),
                    sealed: true,
                    bytes: vec![1, 2, 3],
                }],
            },
            Response::ReorgDone {
                compacted: true,
                swapped: false,
                shrunk: true,
            },
            Response::Err {
                code: ErrorCode::Busy,
                message: "admission queue full".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).unwrap(), resp, "{resp:?}");
        }
    }

    /// Every strict prefix of a valid encoding must decode to an error —
    /// never a wrong message, never a panic. This is the short-read case
    /// a TCP segmentation boundary would produce if framing were broken.
    #[test]
    fn every_truncation_is_a_clean_error() {
        for req in sample_requests() {
            let enc = req.encode();
            for cut in 0..enc.len() {
                assert!(
                    Request::decode(&enc[..cut]).is_err(),
                    "{req:?} truncated at {cut} must not decode"
                );
            }
        }
        for resp in sample_responses() {
            let enc = resp.encode();
            for cut in 0..enc.len() {
                assert!(
                    Response::decode(&enc[..cut]).is_err(),
                    "{resp:?} truncated at {cut} must not decode"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for req in sample_requests() {
            let mut enc = req.encode();
            enc.push(0xAA);
            assert!(
                matches!(Request::decode(&enc), Err(ProtoError::Trailing(1))),
                "{req:?} with a trailing byte must be rejected"
            );
        }
    }

    /// Single-byte corruptions must never panic; they may decode to a
    /// different valid message (flipping a key bit is undetectable by
    /// design), but the decoder itself must stay total.
    #[test]
    fn bit_flips_never_panic() {
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for req in sample_requests() {
            let enc = req.encode();
            for _ in 0..200 {
                let mut m = enc.clone();
                let i = (next() as usize) % m.len();
                m[i] ^= 1 << ((next() % 8) as u8);
                let _ = Request::decode(&m);
            }
        }
        for resp in sample_responses() {
            let enc = resp.encode();
            for _ in 0..200 {
                let mut m = enc.clone();
                let i = (next() as usize) % m.len();
                m[i] ^= 1 << ((next() % 8) as u8);
                let _ = Response::decode(&m);
            }
        }
    }

    #[test]
    fn hostile_lengths_are_bounded() {
        // A bytes field claiming more than MAX_FRAME must be refused
        // before any allocation of that size.
        let mut enc = vec![0x11]; // PUT
        enc.extend_from_slice(&1u64.to_be_bytes());
        enc.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(
            Request::decode(&enc),
            Err(ProtoError::ValueTooLarge(_))
        ));
        // An oversized value under the frame cap is still refused.
        let big = vec![0u8; MAX_VALUE + 1];
        let mut enc = vec![0x11];
        enc.extend_from_slice(&1u64.to_be_bytes());
        enc.extend_from_slice(&(big.len() as u32).to_be_bytes());
        enc.extend_from_slice(&big);
        assert!(matches!(
            Request::decode(&enc),
            Err(ProtoError::ValueTooLarge(_))
        ));
    }

    #[test]
    fn unknown_opcode_and_empty_frame() {
        assert!(matches!(
            Request::decode(&[0x7F]),
            Err(ProtoError::UnknownOpcode(0x7F))
        ));
        assert!(matches!(Request::decode(&[]), Err(ProtoError::EmptyFrame)));
        assert!(matches!(
            Response::decode(&[0x01]),
            Err(ProtoError::UnknownOpcode(0x01))
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut enc = vec![0x01];
        enc.extend_from_slice(b"NOPE");
        enc.extend_from_slice(&VERSION.to_be_bytes());
        assert!(matches!(
            Request::decode(&enc),
            Err(ProtoError::BadMagic(_))
        ));
    }

    #[test]
    fn frame_io_round_trips_and_detects_torn_frames() {
        let payload = Request::Get { key: 9 }.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), payload);
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Closed)));
        // Torn inside the payload.
        let mut r = &buf[..buf.len() - 1];
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtoError::Truncated("frame payload"))
        ));
        // Torn inside the length prefix.
        let mut r = &buf[..2];
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtoError::Truncated("frame length"))
        ));
        // Hostile length prefix.
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtoError::FrameTooLarge(_))
        ));
    }
}
