//! Loopback integration tests: a real TCP server over a real durable
//! database, driven by real clients — the full PROTOCOL.md surface.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use obr_btree::SidePointerMode;
use obr_core::{Database, EngineConfig, ReorgConfig, ReorgDaemon, ReorgTrigger};
use obr_server::client::{Client, NetReplica};
use obr_server::proto::{read_frame, write_frame, ErrorCode, Request, Response, VERSION};
use obr_server::server::{Server, ServerConfig};
use obr_storage::Lsn;

struct Rig {
    _tmp: tempdir::TempDir,
    db: Arc<Database>,
    server: Option<Server>,
    addr: String,
}

/// Tiny vendored tempdir (no external deps in this workspace).
mod tempdir {
    use obr_sync::atomic::{AtomicU64, Ordering};
    use std::path::{Path, PathBuf};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            // relaxed: a unique-name counter; no ordering needed.
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("obr-loopback-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn rig_with(tag: &str, cfg: EngineConfig) -> Rig {
    let tmp = tempdir::TempDir::new(tag);
    let db = Database::create_durable_with_config(
        tmp.path(),
        2048,
        2048,
        SidePointerMode::TwoWay,
        cfg.clone(),
    )
    .unwrap();
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::from_engine("127.0.0.1:0", &cfg),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    Rig {
        _tmp: tmp,
        db,
        server: Some(server),
        addr,
    }
}

fn rig(tag: &str) -> Rig {
    rig_with(
        tag,
        EngineConfig {
            wal_segment_bytes: 16 << 10, // frequent seals → shipping exercised
            ..EngineConfig::default()
        },
    )
}

#[test]
fn point_ops_round_trip_over_the_wire() {
    let mut r = rig("point");
    let mut c = Client::connect(&r.addr).unwrap();
    c.ping().unwrap();
    assert_eq!(c.get(1).unwrap(), None);
    c.put(1, b"one").unwrap();
    assert_eq!(c.get(1).unwrap().as_deref(), Some(b"one".as_slice()));
    c.put(1, b"one-v2").unwrap(); // upsert outside a transaction
    assert_eq!(c.get(1).unwrap().as_deref(), Some(b"one-v2".as_slice()));
    assert_eq!(c.delete(1).unwrap(), b"one-v2");
    let err = c.delete(1).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::KeyNotFound));
    for k in 0..50u64 {
        c.put(k * 2, &k.to_le_bytes()).unwrap();
    }
    let (rows, truncated) = c.scan(10, 30, 100).unwrap();
    assert_eq!(
        rows.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        (5..=15).map(|k| k * 2).collect::<Vec<_>>()
    );
    assert!(!truncated);
    let (rows, truncated) = c.scan(0, 98, 5).unwrap();
    assert_eq!(rows.len(), 5);
    assert!(truncated, "the row cap must be reported");
    c.bye().unwrap();
    r.server.take().unwrap().shutdown().unwrap();
    assert!(obr_check::check_database(&r.db).is_clean());
}

#[test]
fn transaction_lifecycle_and_state_errors() {
    let mut r = rig("txn");
    let mut c = Client::connect(&r.addr).unwrap();
    // State errors are typed.
    assert_eq!(c.commit().unwrap_err().code(), Some(ErrorCode::TxnState));
    assert_eq!(c.abort().unwrap_err().code(), Some(ErrorCode::TxnState));
    c.begin().unwrap();
    assert_eq!(c.begin().unwrap_err().code(), Some(ErrorCode::TxnState));
    // Transactional writes are invisible to other sessions until commit.
    c.put(7, b"staged").unwrap();
    let mut other = Client::connect(&r.addr).unwrap();
    // (A read of any key on the staged leaf would block on the writer's
    // IX page lock — strict 2PL — so probe liveness with PING instead.)
    other.ping().unwrap();
    c.commit().unwrap();
    assert_eq!(other.get(7).unwrap().as_deref(), Some(b"staged".as_slice()));
    // Abort rolls back.
    c.begin().unwrap();
    c.put(9, b"doomed").unwrap();
    c.abort().unwrap();
    assert_eq!(c.get(9).unwrap(), None);
    // Transactional PUT is a strict insert.
    c.begin().unwrap();
    let err = c.put(7, b"dup").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::KeyExists));
    c.abort().unwrap();
    // A dropped connection aborts its open transaction (locks released).
    c.begin().unwrap();
    c.put(11, b"leaked").unwrap();
    drop(c);
    // The other session can now write the key the dropped txn held.
    let mut tries = 0;
    loop {
        match other.put(11, b"winner") {
            Ok(()) => break,
            Err(e) if tries < 100 && e.code() == Some(ErrorCode::Timeout) => tries += 1,
            Err(e) => panic!("{e}"),
        }
    }
    assert_eq!(
        other.get(11).unwrap().as_deref(),
        Some(b"winner".as_slice())
    );
    other.bye().unwrap();
    r.server.take().unwrap().shutdown().unwrap();
    assert!(obr_check::check_database(&r.db).is_clean());
}

#[test]
fn concurrent_clients_under_live_reorg_daemon_stay_consistent() {
    let mut r = rig("reorg");
    // Seed a tree, sparsify it, and let the daemon heal it while clients
    // keep hammering the frontend.
    {
        let mut c = Client::connect(&r.addr).unwrap();
        for k in 0..600u64 {
            c.put(k, &[0x42; 100]).unwrap();
        }
        for k in 0..600u64 {
            if k % 4 != 0 {
                c.delete(k).unwrap();
            }
        }
        c.bye().unwrap();
    }
    let daemon = ReorgDaemon::spawn(
        Arc::clone(&r.db),
        ReorgConfig::default(),
        ReorgTrigger::default(),
        Duration::from_millis(20),
    );
    let addr = r.addr.clone();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let addr = addr.clone();
            s.spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                for i in 0..150u64 {
                    let k = 10_000 + t * 1000 + i;
                    retry_busy(|| c.put(k, b"live"));
                    retry_busy(|| c.get(k).map(|_| ()));
                    retry_busy(|| c.scan(0, 600, 64).map(|_| ()));
                }
                c.bye().unwrap();
            });
        }
    });
    let decisions = daemon.stop().unwrap();
    assert!(
        !decisions.is_empty(),
        "the sparsified tree must have triggered the daemon"
    );
    // Every live key written during the reorganization is present.
    let mut c = Client::connect(&r.addr).unwrap();
    for t in 0..4u64 {
        for i in 0..150u64 {
            let k = 10_000 + t * 1000 + i;
            assert!(c.get(k).unwrap().is_some(), "key {k} lost under reorg");
        }
    }
    c.bye().unwrap();
    r.server.take().unwrap().shutdown().unwrap();
    assert!(
        obr_check::check_database(&r.db).is_clean(),
        "post-run fsck must be clean"
    );
}

fn retry_busy<T>(mut f: impl FnMut() -> Result<T, obr_server::client::ClientError>) {
    for attempt in 0..1000 {
        match f() {
            Ok(_) => return,
            Err(e)
                if matches!(
                    e.code(),
                    Some(ErrorCode::Busy | ErrorCode::Deadlock | ErrorCode::Timeout)
                ) =>
            {
                std::thread::sleep(Duration::from_micros(100 * (attempt + 1)));
            }
            Err(e) => panic!("{e}"),
        }
    }
    panic!("still busy after 1000 attempts");
}

#[test]
fn admission_shed_answers_busy_not_hang() {
    // One session slot, zero request slots: deterministic shedding.
    let mut r = rig_with(
        "shed",
        EngineConfig {
            wal_segment_bytes: 16 << 10,
            max_sessions: 1,
            admission_queue: 0,
            ..EngineConfig::default()
        },
    );
    let mut first = Client::connect(&r.addr).unwrap();
    // Session slot exhausted: the second HELLO is answered BUSY, fast.
    let second = Client::connect(&r.addr);
    let err = second.err().expect("second session must be shed");
    assert!(err.is_busy(), "got {err}");
    // Zero request slots: every data request is shed with BUSY — but the
    // connection survives and control frames still work.
    let err = first.get(1).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Busy));
    first.ping().unwrap();
    let err = first.put(1, b"x").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Busy));
    // Metrics observed the sheds.
    let snap = r.db.metrics_snapshot().unwrap();
    assert!(snap.counter("server_sessions_shed") >= 1);
    assert!(snap.counter("server_requests_shed") >= 2);
    first.bye().unwrap();
    // The freed slot admits a new session (the permit is released just
    // after the BYE answer, so allow a brief race window).
    let mut attempt = 0;
    let third = loop {
        match Client::connect(&r.addr) {
            Ok(c) => break c,
            Err(e) if e.is_busy() && attempt < 200 => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("{e}"),
        }
    };
    third.bye().unwrap();
    r.server.take().unwrap().shutdown().unwrap();
}

#[test]
fn malformed_frames_get_typed_errors_not_hangs() {
    let mut r = rig("malformed");

    // An oversize length prefix is rejected at the framing layer.
    let mut s = TcpStream::connect(&r.addr).unwrap();
    s.write_all(&(u32::MAX).to_be_bytes()).unwrap();
    s.flush().unwrap();
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(matches!(
        resp,
        Response::Err {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    // ...and the connection is closed after.
    let mut buf = [0u8; 1];
    assert_eq!(s.read(&mut buf).unwrap_or(0), 0);

    // A zero-length frame is malformed.
    let mut s = TcpStream::connect(&r.addr).unwrap();
    s.write_all(&0u32.to_be_bytes()).unwrap();
    s.flush().unwrap();
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(matches!(
        resp,
        Response::Err {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    // An unknown opcode as the first frame is rejected (must be HELLO).
    let mut s = TcpStream::connect(&r.addr).unwrap();
    write_frame(&mut s, &[0x7f, 1, 2, 3]).unwrap();
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(matches!(
        resp,
        Response::Err {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    // Wrong HELLO version gets the typed VERSION error.
    let mut s = TcpStream::connect(&r.addr).unwrap();
    write_frame(&mut s, &Request::Hello { version: 0xFFFF }.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(matches!(
        resp,
        Response::Err {
            code: ErrorCode::Version,
            ..
        }
    ));

    // A truncated body (GET with a short key) after a good handshake.
    let mut s = TcpStream::connect(&r.addr).unwrap();
    write_frame(&mut s, &Request::Hello { version: VERSION }.encode()).unwrap();
    let hello = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(matches!(hello, Response::HelloOk { .. }));
    write_frame(&mut s, &[0x10, 0, 0, 0]).unwrap(); // GET needs 8 key bytes
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(matches!(
        resp,
        Response::Err {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    // Trailing bytes after a valid body are rejected too.
    let mut s = TcpStream::connect(&r.addr).unwrap();
    write_frame(&mut s, &Request::Hello { version: VERSION }.encode()).unwrap();
    let _ = read_frame(&mut s).unwrap();
    let mut payload = Request::Get { key: 3 }.encode();
    payload.push(0xAA);
    write_frame(&mut s, &payload).unwrap();
    let resp = Response::decode(&read_frame(&mut s).unwrap()).unwrap();
    assert!(matches!(
        resp,
        Response::Err {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    // The server survived all of that abuse.
    let mut c = Client::connect(&r.addr).unwrap();
    c.put(1, b"still alive").unwrap();
    c.bye().unwrap();
    r.server.take().unwrap().shutdown().unwrap();
    assert!(obr_check::check_database(&r.db).is_clean());
}

#[test]
fn segment_shipping_feeds_a_network_replica() {
    let mut r = rig("ship");
    let mut c = Client::connect(&r.addr).unwrap();
    for k in 0..400u64 {
        c.put(k, format!("v{k}").as_bytes()).unwrap();
    }
    // Bootstrap a replica purely over the wire and catch up.
    let replica = NetReplica::bootstrap(&mut c, 2048).unwrap();
    let applied = replica.sync(&mut c).unwrap();
    assert!(applied > 0, "must apply shipped records");
    assert!(replica.replica().applied_lsn() >= Lsn(400));
    for k in (0..400u64).step_by(37) {
        assert_eq!(
            replica.replica().get(k).unwrap().as_deref(),
            Some(format!("v{k}").as_bytes()),
            "replica diverges at key {k}"
        );
    }
    // New primary writes flow through on the next sync round.
    c.put(9_999, b"late").unwrap();
    replica.sync(&mut c).unwrap();
    assert_eq!(
        replica.replica().get(9_999).unwrap().as_deref(),
        Some(b"late".as_slice())
    );
    // Caught up: another sync applies nothing and terminates.
    assert_eq!(replica.sync(&mut c).unwrap(), 0);
    c.bye().unwrap();
    r.server.take().unwrap().shutdown().unwrap();
    assert!(obr_check::check_database(&r.db).is_clean());
}

#[test]
fn graceful_shutdown_drains_and_checkpoints() {
    let mut r = rig("drain");
    let mut c = Client::connect(&r.addr).unwrap();
    c.put(1, b"before").unwrap();
    let server = r.server.take().unwrap();
    let handle = std::thread::spawn(move || server.shutdown());
    // The draining server answers in-flight/new requests with
    // SHUTTING_DOWN (or the connection just closes once drained).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match c.get(1) {
            Err(e) if e.code() == Some(ErrorCode::ShuttingDown) => break,
            Err(_) => break, // closed — also a valid drain outcome
            Ok(_) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never started draining"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    handle.join().unwrap().unwrap();
    // New connections are refused outright (listener is gone).
    assert!(Client::connect(&r.addr).is_err());
    // The final checkpoint means a clean reopen needs no redo of our key.
    assert!(obr_check::check_database(&r.db).is_clean());
}

#[test]
fn stats_checkpoint_and_admin_opcodes_work() {
    let mut r = rig("admin");
    let mut c = Client::connect(&r.addr).unwrap();
    for k in 0..100u64 {
        c.put(k, &[7u8; 64]).unwrap();
    }
    let stats = c.stats().unwrap();
    assert!(stats.contains("server_sessions"), "stats: {stats}");
    c.checkpoint().unwrap();
    let info = c.db_info().unwrap();
    assert_eq!(info.pages, 2048);
    assert!(info.durable_lsn >= Lsn(100));
    // Forced reorganization runs the passes even on a healthy tree.
    let (_c1, _c2, _c3) = c.reorg(true).unwrap();
    assert_eq!(
        c.get(50).unwrap().as_deref(),
        Some([7u8; 64].as_slice()),
        "data survives a forced reorg"
    );
    c.bye().unwrap();
    r.server.take().unwrap().shutdown().unwrap();
    assert!(obr_check::check_database(&r.db).is_clean());
}
