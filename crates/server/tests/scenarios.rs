//! The full scenario suite at smoke scale: every scenario must pass with
//! a clean post-run integrity check.

use obr_server::scenario::{run_scenario, ScenarioOptions, SCENARIOS};

#[test]
fn every_scenario_passes_at_smoke_scale() {
    let dir = std::env::temp_dir().join(format!("obr-scenario-suite-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ScenarioOptions {
        dir: dir.clone(),
        clients: 2,
        scale: 0.3,
        pages: 2048,
        snapshots_dir: None,
    };
    for name in SCENARIOS {
        let report = run_scenario(name, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.check_clean, "{name}: dirty check");
        assert!(report.total_ops() > 0, "{name}: no work done");
        assert!(
            report.phases.len() >= 2,
            "{name}: every scenario has at least two phases"
        );
        for p in &report.phases {
            assert!(
                p.snapshot_json.contains("server_sessions"),
                "{name}/{}: snapshot missing server metrics",
                p.name
            );
        }
        // The report serializes (consumed by the CLI and CI artifacts).
        let json = report.to_json();
        assert!(json.contains(&format!("\"scenario\": \"{name}\"")));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
