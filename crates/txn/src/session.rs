//! Transactional sessions: the §4.1.2 reader protocol and the §4.1.3
//! updater protocol over the assembled database.

use std::fmt;
use std::sync::Arc;

use obr_btree::BTreeError;
use obr_core::{CoreError, Database};
use obr_lock::{LockError, LockMode, OwnerId, ResourceId};
use obr_storage::Lsn;
use obr_wal::{LogRecord, TxnId};

/// Errors surfaced to transaction code.
#[derive(Debug)]
pub enum TxnError {
    /// The transaction was chosen as a deadlock victim and must restart.
    Deadlock,
    /// A lock wait timed out.
    Timeout,
    /// Key already exists (insert).
    KeyExists(u64),
    /// Key not found (delete/update).
    KeyNotFound(u64),
    /// Engine-level failure.
    Engine(CoreError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Deadlock => write!(f, "deadlock victim; restart the transaction"),
            TxnError::Timeout => write!(f, "lock wait timeout"),
            TxnError::KeyExists(k) => write!(f, "key {k} already exists"),
            TxnError::KeyNotFound(k) => write!(f, "key {k} not found"),
            TxnError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<CoreError> for TxnError {
    fn from(e: CoreError) -> Self {
        TxnError::Engine(e)
    }
}

impl From<BTreeError> for TxnError {
    fn from(e: BTreeError) -> Self {
        match e {
            BTreeError::KeyExists(k) => TxnError::KeyExists(k),
            BTreeError::KeyNotFound(k) => TxnError::KeyNotFound(k),
            other => TxnError::Engine(CoreError::Tree(other)),
        }
    }
}

impl From<obr_storage::StorageError> for TxnError {
    fn from(e: obr_storage::StorageError) -> Self {
        TxnError::Engine(CoreError::Storage(e))
    }
}

/// Result alias for transaction operations.
pub type TxnResult<T> = Result<T, TxnError>;

/// A session: a cheap per-thread handle for starting transactions and
/// running single-operation reads.
#[derive(Clone)]
pub struct Session {
    db: Arc<Database>,
}

/// Counters for protocol events (E4 reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Times a leaf lock was forgone against RX and the RS fallback ran.
    pub rs_fallbacks: u64,
}

impl Session {
    /// Create a session over `db`.
    pub fn new(db: Arc<Database>) -> Session {
        Session { db }
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Txn {
        let id = self.db.begin_txn();
        let owner = OwnerId(id.0);
        Txn {
            db: Arc::clone(&self.db),
            id,
            owner,
            prev_lsn: Lsn::ZERO,
            finished: false,
            rs_fallbacks: 0,
        }
    }

    /// One-shot read (an auto-commit read-only transaction).
    pub fn read(&self, key: u64) -> TxnResult<Option<Vec<u8>>> {
        let mut txn = self.begin();
        let v = txn.get(key)?;
        txn.commit()?;
        Ok(v)
    }

    /// One-shot range scan.
    pub fn scan(&self, lo: u64, hi: u64) -> TxnResult<Vec<(u64, Vec<u8>)>> {
        let mut txn = self.begin();
        let v = txn.scan(lo, hi)?;
        txn.commit()?;
        Ok(v)
    }

    /// One-shot insert.
    pub fn insert(&self, key: u64, value: &[u8]) -> TxnResult<()> {
        let mut txn = self.begin();
        txn.insert(key, value)?;
        txn.commit()
    }

    /// One-shot delete.
    pub fn delete(&self, key: u64) -> TxnResult<Vec<u8>> {
        let mut txn = self.begin();
        let v = txn.delete(key)?;
        txn.commit()?;
        Ok(v)
    }
}

/// An open transaction. Locks are held to commit/abort (strict two-phase);
/// record-level locking uses IS/IX on leaf pages plus S/X on keys, exactly
/// the granularity Table 1 assumes.
pub struct Txn {
    db: Arc<Database>,
    id: TxnId,
    owner: OwnerId,
    prev_lsn: Lsn,
    finished: bool,
    rs_fallbacks: u64,
}

impl Txn {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Times this transaction fell back to an instant RS wait (§4.1.2).
    pub fn rs_fallbacks(&self) -> u64 {
        self.rs_fallbacks
    }

    fn note(&mut self, lsn: Lsn) {
        self.prev_lsn = lsn;
        self.db.note_txn_lsn(self.id, lsn);
    }

    /// Acquire the tree lock in the given intention mode, re-reading the
    /// generation (the tree's lock *name*, which changes at a switch §7.4).
    fn lock_tree(&self, mode: LockMode) -> TxnResult<u32> {
        let gen = self.db.tree().generation().map_err(CoreError::Tree)?;
        self.lockmap(
            self.db
                .locks()
                .lock(self.owner, ResourceId::Tree(gen), mode),
        )?;
        Ok(gen)
    }

    fn lockmap(&self, r: Result<(), LockError>) -> TxnResult<()> {
        match r {
            Ok(()) => Ok(()),
            Err(LockError::Deadlock) => Err(TxnError::Deadlock),
            Err(LockError::Timeout) => Err(TxnError::Timeout),
            Err(e) => Err(TxnError::Engine(CoreError::Lock(e))),
        }
    }

    /// The §4.1.2 descent: S lock-couple to the leaf; on an RX conflict,
    /// release the base-page lock, wait via an unconditional instant RS on
    /// the base page, and retry. Returns `(base, leaf)` with `mode` held on
    /// the leaf and the base-page S lock *released* (coupled past).
    fn couple_to_leaf(&mut self, key: u64, leaf_mode: LockMode) -> TxnResult<obr_storage::PageId> {
        let locks = Arc::clone(self.db.locks());
        let tree = Arc::clone(self.db.tree());
        loop {
            let path = tree.path_for(key).map_err(CoreError::Tree)?;
            let leaf = *path.last().expect("path never empty");
            let base = if path.len() >= 2 {
                Some(path[path.len() - 2])
            } else {
                None
            };
            if let Some(b) = base {
                self.lockmap(locks.lock(self.owner, ResourceId::Page(b.0), LockMode::S))?;
            }
            match locks.lock(self.owner, ResourceId::Page(leaf.0), leaf_mode) {
                Ok(()) => {
                    // Lock-couple: the base-page S lock is released once the
                    // child lock is held.
                    if let Some(b) = base {
                        locks.unlock(self.owner, ResourceId::Page(b.0));
                    }
                    return Ok(leaf);
                }
                Err(LockError::ConflictsWithReorg) => {
                    // §4.1.2: forgo, release the base lock, and block on an
                    // unconditional instant-duration RS request until the
                    // reorganizer finishes.
                    self.rs_fallbacks += 1;
                    if let Some(b) = base {
                        locks.unlock(self.owner, ResourceId::Page(b.0));
                        self.lockmap(locks.lock_instant(
                            self.owner,
                            ResourceId::Page(b.0),
                            LockMode::RS,
                        ))?;
                        // "After the success status is returned ... the
                        // reader will request a S lock on the base page and
                        // proceed" — we proceed by re-descending, since the
                        // reorganization may have changed the path.
                    } else {
                        std::thread::yield_now();
                    }
                }
                Err(LockError::Deadlock) => {
                    if let Some(b) = base {
                        locks.unlock(self.owner, ResourceId::Page(b.0));
                    }
                    return Err(TxnError::Deadlock);
                }
                Err(LockError::Timeout) => {
                    if let Some(b) = base {
                        locks.unlock(self.owner, ResourceId::Page(b.0));
                    }
                    return Err(TxnError::Timeout);
                }
                Err(e) => return Err(TxnError::Engine(CoreError::Lock(e))),
            }
        }
    }

    /// Read one record (reader protocol).
    pub fn get(&mut self, key: u64) -> TxnResult<Option<Vec<u8>>> {
        self.lock_tree(LockMode::IS)?;
        let leaf = self.couple_to_leaf(key, LockMode::S)?;
        let v = self.db.tree().search(key).map_err(CoreError::Tree)?;
        // "the S lock on the page is downgraded to IS while an S lock on the
        // read record is held to the end of transaction."
        self.lockmap(
            self.db
                .locks()
                .lock(self.owner, ResourceId::Key(key), LockMode::S),
        )?;
        self.db
            .locks()
            .downgrade(self.owner, ResourceId::Page(leaf.0), LockMode::IS);
        Ok(v)
    }

    /// Range scan (reader protocol, leaf by leaf over the side chain).
    pub fn scan(&mut self, lo: u64, hi: u64) -> TxnResult<Vec<(u64, Vec<u8>)>> {
        self.lock_tree(LockMode::IS)?;
        // Lock the first leaf; the tree-level scan follows side pointers.
        let leaf = self.couple_to_leaf(lo, LockMode::S)?;
        let out = self.db.tree().range_scan(lo, hi).map_err(CoreError::Tree)?;
        self.db
            .locks()
            .downgrade(self.owner, ResourceId::Page(leaf.0), LockMode::IS);
        Ok(out)
    }

    /// Insert a record (updater protocol).
    pub fn insert(&mut self, key: u64, value: &[u8]) -> TxnResult<()> {
        self.lock_tree(LockMode::IX)?;
        let leaf = self.couple_to_leaf(key, LockMode::IX)?;
        self.lockmap(
            self.db
                .locks()
                .lock(self.owner, ResourceId::Key(key), LockMode::X),
        )?;
        let _ = leaf;
        match self.db.tree().insert(self.id, self.prev_lsn, key, value) {
            Ok(lsn) => {
                self.note(lsn);
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Delete a record (updater protocol; free-at-empty happens inside the
    /// tree).
    pub fn delete(&mut self, key: u64) -> TxnResult<Vec<u8>> {
        self.lock_tree(LockMode::IX)?;
        let leaf = self.couple_to_leaf(key, LockMode::IX)?;
        self.lockmap(
            self.db
                .locks()
                .lock(self.owner, ResourceId::Key(key), LockMode::X),
        )?;
        let _ = leaf;
        match self.db.tree().delete(self.id, self.prev_lsn, key) {
            Ok((lsn, old)) => {
                self.note(lsn);
                Ok(old)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Update a record in place.
    pub fn update(&mut self, key: u64, value: &[u8]) -> TxnResult<Vec<u8>> {
        let old = self.delete(key)?;
        self.insert(key, value)?;
        Ok(old)
    }

    /// Commit: force the commit record, then release all locks.
    ///
    /// The append is a short in-memory critical section; the durability wait
    /// rides the WAL group committer, so concurrent committers share one
    /// write+fsync instead of serializing on the log file.
    pub fn commit(mut self) -> TxnResult<()> {
        let commit_lsn = self.db.log().append(&LogRecord::TxnCommit { txn: self.id });
        if let Err(e) = self.db.log().flush_to(commit_lsn) {
            // The force failed, but the commit record already sits in the
            // in-memory log: any later successful batch (another
            // committer's group commit, a checkpoint) would make it durable
            // and silently commit a transaction we are about to report as
            // failed. Roll back while the locks are still held — the CLRs
            // and TxnAbort land after the commit record, so whatever
            // durability the log eventually reaches, this transaction ends
            // aborted.
            let _ = self.rollback();
            return Err(TxnError::Engine(CoreError::Storage(e)));
        }
        self.db.end_txn(self.id);
        self.db.locks().release_all(self.owner);
        self.finished = true;
        Ok(())
    }

    /// Abort: roll back via the prev-LSN chain with compensation records.
    pub fn abort(mut self) -> TxnResult<()> {
        self.rollback()
    }

    /// Undo every change via the prev-LSN chain (writing CLRs), append
    /// `TxnAbort`, then release locks. Shared by [`Self::abort`] and the
    /// commit path when the commit-record force fails.
    fn rollback(&mut self) -> TxnResult<()> {
        let mut cur = self.prev_lsn;
        while cur != Lsn::ZERO {
            let Some(rec) = self.db.log().read(cur).map_err(CoreError::Storage)? else {
                break;
            };
            cur = match rec {
                LogRecord::TxnInsert {
                    txn, key, prev_lsn, ..
                } if txn == self.id => {
                    self.db
                        .tree()
                        .undo_insert(self.id, key, prev_lsn)
                        .map_err(CoreError::Tree)?;
                    prev_lsn
                }
                LogRecord::TxnDelete {
                    txn,
                    key,
                    old_value,
                    prev_lsn,
                    ..
                } if txn == self.id => {
                    self.db
                        .tree()
                        .undo_delete(self.id, key, &old_value, prev_lsn)
                        .map_err(CoreError::Tree)?;
                    prev_lsn
                }
                LogRecord::TxnUpdate {
                    txn,
                    key,
                    old_value,
                    prev_lsn,
                    ..
                } if txn == self.id => {
                    self.db
                        .tree()
                        .undo_update(self.id, key, &old_value, prev_lsn)
                        .map_err(CoreError::Tree)?;
                    prev_lsn
                }
                LogRecord::Clr { txn, undo_next, .. } if txn == self.id => undo_next,
                _ => break,
            };
        }
        self.db.log().append(&LogRecord::TxnAbort { txn: self.id });
        self.db.end_txn(self.id);
        self.db.locks().release_all(self.owner);
        self.finished = true;
        Ok(())
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            // Leaked transaction: release its locks so nothing hangs; its
            // log records will be rolled back by recovery (it never
            // committed).
            self.db.end_txn(self.id);
            self.db.locks().release_all(self.owner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_btree::SidePointerMode;
    use obr_storage::{DiskManager, InMemoryDisk};

    fn session() -> Session {
        let disk = Arc::new(InMemoryDisk::new(1024));
        let db =
            Database::create(disk as Arc<dyn DiskManager>, 1024, SidePointerMode::TwoWay).unwrap();
        Session::new(db)
    }

    #[test]
    fn failed_commit_force_rolls_the_transaction_back() {
        let s = session();
        s.insert(1, b"base").unwrap();
        let db = Arc::clone(s.db());
        let mut t = s.begin();
        t.insert(2, b"doomed").unwrap();
        t.delete(1).unwrap();
        // Poison the log so the commit-record force fails: the commit must
        // come back Err AND the transaction's effects must be gone — a
        // lingering in-memory commit record would otherwise be made durable
        // by the next successful batch.
        db.log().poison();
        assert!(t.commit().is_err());
        assert_eq!(db.tree().search(2).unwrap(), None, "insert undone");
        assert_eq!(
            db.tree().search(1).unwrap().as_deref(),
            Some(b"base".as_slice()),
            "delete undone"
        );
        // Locks were released by the rollback: another writer proceeds
        // (its commit cannot force the poisoned log, but its X lock grant
        // is what proves release).
        let mut t2 = s.begin();
        t2.insert(3, b"unblocked").unwrap();
        assert!(t2.commit().is_err());
    }

    #[test]
    fn insert_read_delete_round_trip() {
        let s = session();
        s.insert(5, b"five").unwrap();
        assert_eq!(s.read(5).unwrap().unwrap(), b"five");
        assert_eq!(s.delete(5).unwrap(), b"five");
        assert_eq!(s.read(5).unwrap(), None);
    }

    #[test]
    fn duplicate_insert_is_reported() {
        let s = session();
        s.insert(1, b"a").unwrap();
        assert!(matches!(s.insert(1, b"b"), Err(TxnError::KeyExists(1))));
    }

    #[test]
    fn abort_rolls_back_with_clrs() {
        let s = session();
        s.insert(1, b"keep").unwrap();
        let mut t = s.begin();
        t.insert(2, b"gone").unwrap();
        t.delete(1).unwrap();
        t.abort().unwrap();
        assert_eq!(s.read(1).unwrap().unwrap(), b"keep");
        assert_eq!(s.read(2).unwrap(), None);
    }

    #[test]
    fn update_replaces_value() {
        let s = session();
        s.insert(7, b"old").unwrap();
        let mut t = s.begin();
        assert_eq!(t.update(7, b"new").unwrap(), b"old");
        t.commit().unwrap();
        assert_eq!(s.read(7).unwrap().unwrap(), b"new");
    }

    #[test]
    fn scan_sees_committed_data() {
        let s = session();
        for k in 0..50u64 {
            s.insert(k * 2, &k.to_le_bytes()).unwrap();
        }
        let r = s.scan(10, 20).unwrap();
        assert_eq!(
            r.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 12, 14, 16, 18, 20]
        );
    }

    #[test]
    fn record_locks_serialize_writers_on_same_key() {
        let s = session();
        s.insert(9, b"v0").unwrap();
        let mut t1 = s.begin();
        t1.update(9, b"v1").unwrap();
        // A second writer on the same key must block until t1 finishes.
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            let mut t2 = s2.begin();
            t2.update(9, b"v2").unwrap();
            t2.commit().unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!h.is_finished());
        t1.commit().unwrap();
        h.join().unwrap();
        assert_eq!(s.read(9).unwrap().unwrap(), b"v2");
    }

    #[test]
    fn dropped_txn_releases_locks() {
        let s = session();
        s.insert(3, b"x").unwrap();
        {
            let mut t = s.begin();
            let _ = t.get(3).unwrap();
            // dropped without commit
        }
        // A writer can proceed.
        s.delete(3).unwrap();
    }

    #[test]
    fn concurrent_sessions_stress() {
        let s = session();
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = s.clone();
                sc.spawn(move || {
                    for i in 0..100u64 {
                        let k = t * 1000 + i;
                        s.insert(k, &k.to_le_bytes()).unwrap();
                        if i % 2 == 0 {
                            s.delete(k).unwrap();
                        }
                    }
                });
            }
        });
        let total = s.db().tree().validate().unwrap();
        assert_eq!(total, 4 * 50);
    }
}
