//! Workload generation for the experiments: key distributions, a
//! degradation driver (E8: how free-at-empty trees become sparse), and a
//! multi-threaded open-loop driver measuring throughput and blocked time
//! while reorganization runs (E4).

use obr_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use obr_core::Database;

use crate::session::{Session, TxnError};

/// Key distribution for generated operations.
#[derive(Clone, Copy, Debug)]
pub enum KeyDist {
    /// Uniform over the key space.
    Uniform,
    /// Zipf-like skew with the given exponent (approximated by inversion).
    Zipf(f64),
}

impl KeyDist {
    fn sample(&self, rng: &mut StdRng, space: u64) -> u64 {
        match self {
            KeyDist::Uniform => rng.gen_range(0..space),
            KeyDist::Zipf(theta) => {
                // Bounded Pareto inversion: cheap, reproducible skew.
                let u: f64 = rng.gen_range(0.0f64..1.0);
                let n = space as f64;
                let x = n * (1.0 - u).powf(*theta);
                (n - 1.0 - x.min(n - 1.0)) as u64
            }
        }
    }
}

/// Latency histogram over power-of-two nanosecond buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_nanos: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64],
            count: 0,
            total_nanos: 0,
            max_nanos: 0,
        }
    }
}

impl LatencyHistogram {
    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        let n = d.as_nanos() as u64;
        let b = (64 - n.max(1).leading_zeros() as usize).min(63);
        self.buckets[b] += 1;
        self.count += 1;
        self.total_nanos += n;
        self.max_nanos = self.max_nanos.max(n);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        match self.total_nanos.checked_div(self.count) {
            Some(m) => Duration::from_nanos(m),
            None => Duration::ZERO,
        }
    }

    /// Approximate percentile (upper bucket bound).
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let want = ((self.count as f64) * p).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= want {
                // Upper bucket bound, clamped to the true maximum.
                return Duration::from_nanos((1u64 << i).min(self.max_nanos));
            }
        }
        Duration::from_nanos(self.max_nanos)
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }
}

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Reader threads (point reads + occasional scans).
    pub readers: usize,
    /// Updater threads (insert/delete mix).
    pub updaters: usize,
    /// Keys are drawn from `[0, key_space)`.
    pub key_space: u64,
    /// Value size for inserts.
    pub value_len: usize,
    /// Key distribution.
    pub dist: KeyDist,
    /// Run until this duration elapses.
    pub duration: Duration,
    /// RNG seed (each thread derives its own).
    pub seed: u64,
    /// Fraction of reader ops that are range scans (of ~100 keys).
    pub scan_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            readers: 4,
            updaters: 2,
            key_space: 100_000,
            value_len: 64,
            dist: KeyDist::Uniform,
            duration: Duration::from_millis(500),
            seed: 7,
            scan_fraction: 0.05,
        }
    }
}

/// Aggregated results of a workload run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadReport {
    /// Point reads completed.
    pub reads: u64,
    /// Range scans completed.
    pub scans: u64,
    /// Inserts committed.
    pub inserts: u64,
    /// Deletes committed.
    pub deletes: u64,
    /// Transactions restarted after deadlock/timeout.
    pub restarts: u64,
    /// §4.1.2 RS fallbacks taken (blocked by the reorganizer).
    pub rs_fallbacks: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Latency of read operations.
    pub read_latency: LatencyHistogram,
    /// Latency of update operations.
    pub update_latency: LatencyHistogram,
}

impl WorkloadReport {
    /// Total committed operations.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.scans + self.inserts + self.deletes
    }

    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Run a mixed workload against `db` until `cfg.duration` elapses (or
/// `stop` is raised early). Returns aggregated counters and latencies.
pub fn run_workload(db: &Arc<Database>, cfg: &WorkloadConfig, stop: &AtomicBool) -> WorkloadReport {
    let start = Instant::now();
    let deadline = start + cfg.duration;
    let rs_fallbacks = AtomicU64::new(0);
    let mut report = WorkloadReport::default();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..cfg.readers {
            let db = Arc::clone(db);
            let cfg = cfg.clone();
            let rs = &rs_fallbacks;
            handles.push(s.spawn(move || {
                reader_thread(db, &cfg, cfg.seed ^ (t as u64) << 8, deadline, stop, rs)
            }));
        }
        for t in 0..cfg.updaters {
            let db = Arc::clone(db);
            let cfg = cfg.clone();
            let rs = &rs_fallbacks;
            handles.push(s.spawn(move || {
                updater_thread(
                    db,
                    &cfg,
                    cfg.seed ^ 0xDEAD ^ ((t as u64) << 8),
                    deadline,
                    stop,
                    rs,
                )
            }));
        }
        for h in handles {
            let partial = h.join().expect("workload thread panicked");
            report.reads += partial.reads;
            report.scans += partial.scans;
            report.inserts += partial.inserts;
            report.deletes += partial.deletes;
            report.restarts += partial.restarts;
            report.read_latency.merge(&partial.read_latency);
            report.update_latency.merge(&partial.update_latency);
        }
    });
    report.rs_fallbacks = rs_fallbacks.load(Ordering::Relaxed);
    report.elapsed = start.elapsed();
    report
}

fn reader_thread(
    db: Arc<Database>,
    cfg: &WorkloadConfig,
    seed: u64,
    deadline: Instant,
    stop: &AtomicBool,
    rs_fallbacks: &AtomicU64,
) -> WorkloadReport {
    let session = Session::new(db);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rep = WorkloadReport::default();
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        let key = cfg.dist.sample(&mut rng, cfg.key_space);
        let t0 = Instant::now();
        let mut txn = session.begin();
        let outcome = if rng.gen_bool(cfg.scan_fraction) {
            txn.scan(key, key + 100).map(|_| true)
        } else {
            txn.get(key).map(|_| false)
        };
        match outcome {
            Ok(was_scan) => {
                rs_fallbacks.fetch_add(txn.rs_fallbacks(), Ordering::Relaxed);
                let _ = txn.commit();
                rep.read_latency.record(t0.elapsed());
                if was_scan {
                    rep.scans += 1;
                } else {
                    rep.reads += 1;
                }
            }
            Err(TxnError::Deadlock) | Err(TxnError::Timeout) => {
                rs_fallbacks.fetch_add(txn.rs_fallbacks(), Ordering::Relaxed);
                let _ = txn.abort();
                rep.restarts += 1;
            }
            Err(e) => panic!("reader failed: {e}"),
        }
    }
    rep
}

fn updater_thread(
    db: Arc<Database>,
    cfg: &WorkloadConfig,
    seed: u64,
    deadline: Instant,
    stop: &AtomicBool,
    rs_fallbacks: &AtomicU64,
) -> WorkloadReport {
    let session = Session::new(db);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rep = WorkloadReport::default();
    let value = vec![0xA5u8; cfg.value_len];
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        let key = cfg.dist.sample(&mut rng, cfg.key_space);
        let insert = rng.gen_bool(0.5);
        let t0 = Instant::now();
        let mut txn = session.begin();
        let outcome = if insert {
            match txn.insert(key, &value) {
                Ok(()) => Ok(true),
                Err(TxnError::KeyExists(_)) => Ok(true), // busy key: fine
                Err(e) => Err(e),
            }
        } else {
            match txn.delete(key) {
                Ok(_) => Ok(false),
                Err(TxnError::KeyNotFound(_)) => Ok(false),
                Err(e) => Err(e),
            }
        };
        match outcome {
            Ok(was_insert) => {
                rs_fallbacks.fetch_add(txn.rs_fallbacks(), Ordering::Relaxed);
                let _ = txn.commit();
                rep.update_latency.record(t0.elapsed());
                if was_insert {
                    rep.inserts += 1;
                } else {
                    rep.deletes += 1;
                }
            }
            Err(TxnError::Deadlock) | Err(TxnError::Timeout) => {
                rs_fallbacks.fetch_add(txn.rs_fallbacks(), Ordering::Relaxed);
                let _ = txn.abort();
                rep.restarts += 1;
            }
            Err(e) => panic!("updater failed: {e}"),
        }
    }
    rep
}

/// E8 degradation driver: load `n` sequential records at full pages, then
/// randomly delete `delete_fraction` of them — the free-at-empty policy
/// leaves the surviving records scattered over sparse pages.
pub fn degrade(db: &Arc<Database>, n: u64, value_len: usize, delete_fraction: f64, seed: u64) {
    let session = Session::new(Arc::clone(db));
    let records: Vec<(u64, Vec<u8>)> = (0..n)
        .map(|k| {
            let mut v = k.to_le_bytes().to_vec();
            v.resize(value_len, 0x33);
            (k, v)
        })
        .collect();
    db.tree()
        .bulk_load(&records, 0.95, 0.95)
        .expect("bulk load");
    let mut rng = StdRng::seed_from_u64(seed);
    for k in 0..n {
        if rng.gen_bool(delete_fraction) {
            let _ = session.delete(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_btree::SidePointerMode;
    use obr_storage::{DiskManager, InMemoryDisk};

    fn db(pages: u32) -> Arc<Database> {
        let disk = Arc::new(InMemoryDisk::new(pages));
        Database::create(
            disk as Arc<dyn DiskManager>,
            pages as usize,
            SidePointerMode::TwoWay,
        )
        .unwrap()
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::default();
        for i in 1..=1000u64 {
            h.record(Duration::from_nanos(i * 100));
        }
        assert_eq!(h.count(), 1000);
        assert!(h.percentile(0.5) <= h.percentile(0.99));
        assert!(h.percentile(0.99) <= h.max());
        assert!(h.mean() > Duration::ZERO);
    }

    #[test]
    fn key_dists_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [KeyDist::Uniform, KeyDist::Zipf(1.5)] {
            for _ in 0..1000 {
                assert!(dist.sample(&mut rng, 500) < 500);
            }
        }
    }

    #[test]
    fn zipf_is_skewed_toward_high_keys() {
        // The bounded-Pareto inversion puts 0.1^(1/theta) of the mass in the
        // top decile: ~31.6% for theta = 2, vs 10% for uniform.
        let mut rng = StdRng::seed_from_u64(2);
        let dist = KeyDist::Zipf(2.0);
        let top_zipf: usize = (0..5000)
            .filter(|_| dist.sample(&mut rng, 1000) >= 900)
            .count();
        let uni = KeyDist::Uniform;
        let top_uni: usize = (0..5000)
            .filter(|_| uni.sample(&mut rng, 1000) >= 900)
            .count();
        assert!(
            top_zipf > top_uni * 2,
            "zipf(2.0) should concentrate: {top_zipf} vs uniform {top_uni} in top decile"
        );
    }

    #[test]
    fn degrade_produces_sparse_tree() {
        let d = db(4096);
        degrade(&d, 3000, 64, 0.7, 11);
        let stats = d.tree().stats().unwrap();
        assert!(
            stats.avg_leaf_fill < 0.5,
            "fill {} should be sparse",
            stats.avg_leaf_fill
        );
        d.tree().validate().unwrap();
    }

    #[test]
    fn workload_runs_and_counts() {
        let d = db(8192);
        degrade(&d, 2000, 64, 0.3, 3);
        let cfg = WorkloadConfig {
            readers: 2,
            updaters: 2,
            key_space: 3000,
            duration: Duration::from_millis(200),
            ..WorkloadConfig::default()
        };
        let stop = AtomicBool::new(false);
        let rep = run_workload(&d, &cfg, &stop);
        assert!(rep.total_ops() > 0);
        assert!(rep.throughput() > 0.0);
        d.tree().validate().unwrap();
    }
}
