//! User transactions and workloads: the reader and updater protocols of
//! §4.1.2–§4.1.3, and the workload generators the experiments drive.
//!
//! The key protocol behaviour under reorganization: a reader (or updater)
//! whose leaf-page lock request conflicts with a held RX lock *forgoes* the
//! request, releases its base-page S lock, and issues an unconditional
//! instant-duration RS request on the base page — which blocks exactly until
//! the reorganizer finishes the unit and releases its base-page locks — then
//! re-descends and retries. That is what keeps readers flowing against every
//! part of the tree except the handful of leaves inside the active unit,
//! the paper's headline concurrency win over whole-file locking \[Smi90\].

pub mod session;
pub mod workload;

pub use session::{Session, Txn, TxnError, TxnResult};
pub use workload::{
    degrade, run_workload, KeyDist, LatencyHistogram, WorkloadConfig, WorkloadReport,
};
