//! Lock-free metric primitives and the registry that names them.
//!
//! Three shapes cover everything the engine reports:
//!
//! * [`Counter`] — monotonic `AtomicU64`; grants, appends, evictions.
//! * [`Gauge`] — instantaneous level plus a high-watermark `peak` (the
//!   side-file depth drains back to zero after pass-3 catch-up, so the
//!   peak is what a post-run snapshot can still show).
//! * [`Histogram`] — fixed power-of-two buckets; no allocation on the
//!   record path, good enough for "how long did lock waits take".
//!
//! All handles are cheap clones of an `Arc`; recording is a relaxed
//! atomic RMW.  The [`Registry`] is only a *directory*: registration takes
//! a short mutex (cold path), while [`Registry::snapshot`] reads the live
//! atomics without blocking any writer.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets. Bucket `i > 0` counts values
/// whose bit length is `i`, i.e. `v` in `[2^(i-1), 2^i)`; bucket 0 counts
/// zeros. 64 buckets cover the whole `u64` range.
const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying atomic, so a subsystem can keep one copy
/// on its hot path while the registry holds another for snapshots.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Create an unregistered counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if cfg!(feature = "noop") {
            return;
        }
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous level with a high-watermark.
///
/// `set`/`inc`/`dec` update the level; every raise also folds into `peak`
/// via `fetch_max`, so the largest level ever held survives after the
/// level itself drains back down (e.g. the side-file depth after pass-3
/// catch-up).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<GaugeInner>);

#[derive(Debug, Default)]
struct GaugeInner {
    value: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// Create an unregistered gauge at level zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the level to `v` (and raise the peak if `v` exceeds it).
    #[inline]
    pub fn set(&self, v: u64) {
        if cfg!(feature = "noop") {
            return;
        }
        self.0.value.store(v, Relaxed);
        self.0.peak.fetch_max(v, Relaxed);
    }

    /// Raise the level by one and fold the new level into the peak.
    #[inline]
    pub fn inc(&self) {
        if cfg!(feature = "noop") {
            return;
        }
        let now = self.0.value.fetch_add(1, Relaxed) + 1;
        self.0.peak.fetch_max(now, Relaxed);
    }

    /// Lower the level by one (saturating at zero).
    #[inline]
    pub fn dec(&self) {
        if cfg!(feature = "noop") {
            return;
        }
        let _ = self
            .0
            .value
            .fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.value.load(Relaxed)
    }

    /// Highest level ever held.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.0.peak.load(Relaxed)
    }
}

/// A fixed-bucket power-of-two histogram.
///
/// Recording classifies the value by bit length into one of 64 buckets —
/// one relaxed `fetch_add` each for the bucket, the total count and the
/// running sum; no allocation, no lock.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistInner>);

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistInner {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Create an unregistered, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        if cfg!(feature = "noop") {
            return;
        }
        let idx = (64 - v.leading_zeros()) as usize; // 0 for v == 0
        self.0.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Relaxed);
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(v, Relaxed);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Relaxed)
    }

    /// The non-empty buckets as `(bit_length, count)` pairs; bucket `i`
    /// holds values in `[2^(i-1), 2^i)` (bucket 0 holds zeros).
    pub fn nonzero_buckets(&self) -> Vec<(u8, u64)> {
        (0..HIST_BUCKETS)
            .filter_map(|i| {
                let n = self.0.buckets[i].load(Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect()
    }
}

/// A registered metric: one of the three handle shapes.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named directory of metric handles.
///
/// Registration (get-or-create, or adopting a subsystem's existing handle
/// under a canonical name) takes a short mutex; recording never touches
/// the registry at all — callers hold their own handle clones.  One
/// registry belongs to one `Database`; nothing here is process-global.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Publish an existing counter handle under `name` (last wins). This is
    /// how a subsystem keeps its hot-path handle as the single source of
    /// truth while the registry snapshots the same atomic.
    pub fn register_counter(&self, name: &str, c: &Counter) {
        self.lock()
            .insert(name.to_string(), Metric::Counter(c.clone()));
    }

    /// Publish an existing gauge handle under `name` (last wins).
    pub fn register_gauge(&self, name: &str, g: &Gauge) {
        self.lock()
            .insert(name.to_string(), Metric::Gauge(g.clone()));
    }

    /// Publish an existing histogram handle under `name` (last wins).
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        self.lock()
            .insert(name.to_string(), Metric::Histogram(h.clone()));
    }

    /// Read every registered metric into an owned [`Snapshot`].
    ///
    /// Holds the directory mutex only to walk the name map; each value is a
    /// relaxed atomic load, so writers are never blocked and an individual
    /// metric never tears (the snapshot as a whole is *not* a consistent
    /// cut across metrics — it does not need to be).
    pub fn snapshot(&self) -> Snapshot {
        let m = self.lock();
        let values = m
            .iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge {
                        value: g.get(),
                        peak: g.peak(),
                    },
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.nonzero_buckets(),
                    },
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { values }
    }
}

/// The observed value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter's current value.
    Counter(u64),
    /// A gauge's current level and high-watermark.
    Gauge {
        /// Instantaneous level.
        value: u64,
        /// Highest level ever held.
        peak: u64,
    },
    /// A histogram's totals and non-empty buckets.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// `(bit_length, count)` pairs for non-empty buckets.
        buckets: Vec<(u8, u64)>,
    },
}

/// An owned, point-in-time reading of a [`Registry`].
///
/// Renders as an aligned human table via `Display` and as a single JSON
/// object via [`Snapshot::to_json`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    values: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// Counter value by name, `0` if absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge level by name, `0` if absent or not a gauge.
    pub fn gauge(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge { value, .. }) => *value,
            _ => 0,
        }
    }

    /// Gauge high-watermark by name, `0` if absent or not a gauge.
    pub fn gauge_peak(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge { peak, .. }) => *peak,
            _ => 0,
        }
    }

    /// Iterate `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Render as one JSON object. Counters are plain numbers; gauges are
    /// `{"value":v,"peak":p}`; histograms are
    /// `{"count":c,"sum":s,"buckets":[[bit,count],...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":"));
            match v {
                MetricValue::Counter(n) => out.push_str(&n.to_string()),
                MetricValue::Gauge { value, peak } => {
                    out.push_str(&format!("{{\"value\":{value},\"peak\":{peak}}}"));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let b: Vec<String> = buckets
                        .iter()
                        .map(|(bit, n)| format!("[{bit},{n}]"))
                        .collect();
                    out.push_str(&format!(
                        "{{\"count\":{count},\"sum\":{sum},\"buckets\":[{}]}}",
                        b.join(",")
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.values.keys().map(String::len).max().unwrap_or(0);
        for (name, v) in &self.values {
            match v {
                MetricValue::Counter(n) => writeln!(f, "{name:width$}  {n}")?,
                MetricValue::Gauge { value, peak } => {
                    writeln!(f, "{name:width$}  {value} (peak {peak})")?;
                }
                MetricValue::Histogram { count, sum, .. } => {
                    let mean = if *count > 0 { sum / count } else { 0 };
                    writeln!(f, "{name:width$}  n={count} sum={sum} mean={mean}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_peak_through_drain() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        g.dec();
        g.dec();
        g.dec(); // saturates
        assert_eq!(g.get(), 0);
        assert_eq!(g.peak(), 3);
        g.set(2);
        assert_eq!(g.peak(), 3);
        g.set(9);
        assert_eq!(g.peak(), 9);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn registry_get_or_create_returns_same_atomic() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x"), 2);
    }

    #[test]
    fn register_adopts_existing_handle() {
        let reg = Registry::new();
        let c = Counter::new();
        c.add(7);
        reg.register_counter("adopted", &c);
        c.inc();
        assert_eq!(reg.snapshot().counter("adopted"), 8);
    }

    /// Satellite requirement: concurrent increments sum exactly.
    #[test]
    fn concurrent_increments_sum_exactly() {
        let reg = Registry::new();
        let c = reg.counter("n");
        const THREADS: usize = 8;
        const PER: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..PER {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("n"), THREADS as u64 * PER);
    }

    /// Satellite requirement: a snapshot taken during updates never tears —
    /// a counter that only ever holds even values (adds of 2) must never be
    /// observed odd, and snapshots must be monotone.
    #[test]
    fn snapshot_during_update_never_tears() {
        let reg = std::sync::Arc::new(Registry::new());
        let c = reg.counter("even");
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                while !stop.load(Relaxed) {
                    c.add(2);
                }
            });
            let mut last = 0u64;
            for _ in 0..20_000 {
                let v = reg.snapshot().counter("even");
                assert_eq!(v % 2, 0, "torn read: {v}");
                assert!(v >= last, "snapshot went backwards: {last} -> {v}");
                last = v;
            }
            stop.store(true, Relaxed);
        });
    }

    #[test]
    fn json_and_display_render_all_shapes() {
        let reg = Registry::new();
        reg.counter("c").add(3);
        reg.gauge("g").set(5);
        reg.histogram("h").record(2);
        let snap = reg.snapshot();
        assert_eq!(
            snap.to_json(),
            "{\"c\":3,\"g\":{\"value\":5,\"peak\":5},\
             \"h\":{\"count\":1,\"sum\":2,\"buckets\":[[2,1]]}}"
        );
        let text = snap.to_string();
        assert!(text.contains("c  3"), "{text}");
        assert!(text.contains("5 (peak 5)"), "{text}");
    }
}
