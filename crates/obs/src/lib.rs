//! Observability for the obr engine: a lock-free metrics registry and a
//! structured trace-event sink.
//!
//! The paper's subject is *on-line* reorganization — pass 1/2/3 run
//! concurrently with user transactions, forgoing conflicting RX lock
//! requests (Table 1) and catching up through the side file (§7.2).  None
//! of that is visible from the outside without instrumentation, so this
//! crate provides the two primitives every subsystem hangs its numbers on:
//!
//! * [`Registry`] — a named directory of [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s.  Handles are `Arc`-backed atomics: recording is a
//!   single relaxed RMW with no lock, and [`Registry::snapshot`] reads the
//!   same atomics without stopping writers.  Registries are per-`Database`
//!   (never process-global) so parallel tests and multi-database processes
//!   do not share counts.
//! * [`Tracer`] — a bounded ring buffer of [`TraceEvent`]s with an
//!   optional JSONL writer.  Events are span-style enter/exit markers
//!   carrying the reorg unit id, pass number and base-page id, which is
//!   exactly the vocabulary of the paper's Figure 1 (pass structure) and
//!   Figure 2 (a compaction unit).
//!
//! Subsystems own their handles (the handle *is* the source of truth — the
//! legacy `Stats` structs are views over the same atomics) and publish
//! them into the database's registry under the canonical names listed in
//! DESIGN.md's "Observability" chapter.
//!
//! The `noop` cargo feature compiles every record/emit call to a no-op so
//! the cost of the default (instrumented) build can be measured; see
//! EXPERIMENTS.md.
//!
//! ```
//! use obr_obs::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("pool_hits");
//! hits.add(3);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("pool_hits"), 3);
//! ```

mod metrics;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricValue, Registry, Snapshot};
pub use trace::{TraceEvent, TraceKind, Tracer};

/// True when this build was compiled with the `noop` feature, i.e. every
/// counter/gauge/histogram/trace operation is a stub. Checkers that assert
/// on *metric values* (rather than behaviour) should skip under no-op.
#[must_use]
pub const fn is_noop() -> bool {
    cfg!(feature = "noop")
}
