//! Structured trace events for watching a reorganization happen.
//!
//! A [`Tracer`] collects [`TraceEvent`]s into a bounded ring buffer and,
//! when attached, streams them as JSON Lines to a writer.  Events are
//! span-style: `pass_enter`/`pass_exit` bracket each of the paper's three
//! passes, `unit_begin`..`unit_end` bracket one reorganization unit
//! (Figure 2), and point events mark the interesting moments in between —
//! record moves, pass-2 swaps, pass-3 stable points, side-file traffic and
//! the final tree switch.
//!
//! Every event carries the same fixed field set (`unit`, `pass`, `page`,
//! `a`, `b`); fields an event does not use are zero.  The per-kind meaning
//! of `a`/`b` is documented on [`TraceKind`] and in DESIGN.md's
//! "Observability" chapter, which also walks a full three-pass example.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring-buffer capacity (events), chosen to hold a full scripted
/// reorganization with room to spare.
const DEFAULT_RING_CAP: usize = 4096;

/// What happened. The wire name (JSONL `"event"` field) is the snake_case
/// form returned by [`TraceKind::as_str`].
///
/// Unless noted, `unit` is the reorganization unit id (0 when not inside a
/// unit), `pass` is the paper's pass number 1–3 (0 when not pass-scoped)
/// and `page` is the base page the event concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A reorganization pass starts. `pass` = 1, 2 or 3.
    PassEnter,
    /// A reorganization pass finished. `a` = units/steps completed in it.
    PassExit,
    /// A unit begins. `page` = base page, `a` = destination page
    /// (0 for in-place compaction), `b` = number of source leaves.
    UnitBegin,
    /// Records moved within a unit. `page` = source leaf, `a` =
    /// destination leaf, `b` = records moved.
    UnitMove,
    /// In-place modification of a leaf within a unit (`page`).
    UnitModify,
    /// A unit committed (its END record is on the log). `a` = largest key
    /// handled, i.e. the restart frontier LK of §5.
    UnitEnd,
    /// A unit was rolled back (deadlock victim etc.).
    UnitUndo,
    /// Pass 2 swapped the contents of two leaves: `page` and `a`.
    Pass2Swap,
    /// Pass 2 moved a leaf's contents: `page` into free page `a`.
    Pass2Move,
    /// Pass 3 logged a stable point (§7.3). `a` = stable key.
    Pass3Stable,
    /// An entry entered the side file (§7.2). `page` = leaf concerned,
    /// `a` = key, `b` = side-file depth after the append.
    SideEnqueue,
    /// Pass-3 catch-up drained side-file entries. `a` = entries applied
    /// this drain round, `b` = side-file depth after the drain.
    SideDrain,
    /// Pass 3 switched the tree to the rebuilt upper levels. `page` = new
    /// root, `a` = new tree generation.
    TreeSwitch,
    /// Restart recovery began.
    RecoveryBegin,
    /// Restart recovery finished. `a` = redo records applied, `b` =
    /// interrupted units completed forward.
    RecoveryEnd,
    /// The reorg daemon woke up and evaluated its trigger.
    DaemonCycle,
    /// The daemon decided to run. `a` = bitmask of the decision:
    /// 1 = compacted, 2 = swapped, 4 = shrunk.
    DaemonRun,
    /// A daemon cycle failed and will be retried next interval (the
    /// thread survives). `a` = consecutive failures so far.
    DaemonError,
    /// The network frontend admitted a client session. `a` = live
    /// sessions after the admit.
    SessionOpen,
    /// A client session ended (disconnect, protocol error, or drain).
    /// `a` = live sessions after the close, `b` = requests it served.
    SessionClose,
    /// Admission control shed work with a `BUSY` answer. `a` = 0 for a
    /// refused session, 1 for a refused request.
    ServerShed,
    /// The server entered shutdown: the listener stopped accepting and
    /// live sessions are draining. `a` = sessions still live.
    ServerDrain,
}

impl TraceKind {
    /// The snake_case wire name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::PassEnter => "pass_enter",
            TraceKind::PassExit => "pass_exit",
            TraceKind::UnitBegin => "unit_begin",
            TraceKind::UnitMove => "unit_move",
            TraceKind::UnitModify => "unit_modify",
            TraceKind::UnitEnd => "unit_end",
            TraceKind::UnitUndo => "unit_undo",
            TraceKind::Pass2Swap => "pass2_swap",
            TraceKind::Pass2Move => "pass2_move",
            TraceKind::Pass3Stable => "pass3_stable",
            TraceKind::SideEnqueue => "side_enqueue",
            TraceKind::SideDrain => "side_drain",
            TraceKind::TreeSwitch => "tree_switch",
            TraceKind::RecoveryBegin => "recovery_begin",
            TraceKind::RecoveryEnd => "recovery_end",
            TraceKind::DaemonCycle => "daemon_cycle",
            TraceKind::DaemonRun => "daemon_run",
            TraceKind::DaemonError => "daemon_error",
            TraceKind::SessionOpen => "session_open",
            TraceKind::SessionClose => "session_close",
            TraceKind::ServerShed => "server_shed",
            TraceKind::ServerDrain => "server_drain",
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One trace event. The schema is fixed so JSONL consumers never need
/// per-kind parsing: `{"seq":N,"us":N,"event":"...","unit":N,"pass":N,
/// "page":N,"a":N,"b":N}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number, unique per tracer.
    pub seq: u64,
    /// Microseconds since the tracer was created. Timing-dependent; the
    /// golden test compares [`TraceEvent::to_json_stable`], which omits it.
    pub us: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Reorganization unit id, 0 outside a unit.
    pub unit: u64,
    /// Pass number 1–3, 0 when not pass-scoped.
    pub pass: u8,
    /// Base page id the event concerns, 0 when none.
    pub page: u64,
    /// Kind-specific operand; see [`TraceKind`].
    pub a: u64,
    /// Kind-specific operand; see [`TraceKind`].
    pub b: u64,
}

impl TraceEvent {
    /// Full JSONL rendering, including the `us` timestamp.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"us\":{},{}}}",
            self.seq,
            self.us,
            self.json_tail()
        )
    }

    /// Deterministic rendering: the full schema minus `seq` and `us`, the
    /// two fields that depend on run timing or on how many events preceded
    /// this one. The trace-schema golden test compares these.
    pub fn to_json_stable(&self) -> String {
        format!("{{{}}}", self.json_tail())
    }

    fn json_tail(&self) -> String {
        format!(
            "\"event\":\"{}\",\"unit\":{},\"pass\":{},\"page\":{},\"a\":{},\"b\":{}",
            self.kind.as_str(),
            self.unit,
            self.pass,
            self.page,
            self.a,
            self.b
        )
    }
}

struct TracerInner {
    ring: VecDeque<TraceEvent>,
    cap: usize,
    writer: Option<Box<dyn Write + Send>>,
}

/// Ring-buffered trace sink with an optional JSONL writer.
///
/// Emission takes one short mutex (the emitting paths — unit boundaries,
/// pass boundaries, side-file traffic — are orders of magnitude rarer than
/// metric updates). The ring keeps the most recent events for in-process
/// inspection; an attached writer additionally receives every event as one
/// JSON line.
pub struct Tracer {
    seq: AtomicU64,
    epoch: Instant,
    inner: Mutex<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAP)
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("seq", &self.seq.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// Create a tracer whose ring holds the default number of events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a tracer whose ring holds at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            inner: Mutex::new(TracerInner {
                ring: VecDeque::with_capacity(cap.min(DEFAULT_RING_CAP)),
                cap: cap.max(1),
                writer: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stream every future event as a JSON line to the file at `path`
    /// (truncating it). Replaces any previously attached writer.
    pub fn attach_file(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.lock().writer = Some(Box::new(std::io::BufWriter::new(file)));
        Ok(())
    }

    /// Stream every future event to an arbitrary writer (tests use an
    /// in-memory buffer). Replaces any previously attached writer.
    pub fn attach_writer(&self, w: Box<dyn Write + Send>) {
        self.lock().writer = Some(w);
    }

    /// Flush and drop the attached writer, if any.
    pub fn detach_writer(&self) {
        let mut inner = self.lock();
        if let Some(mut w) = inner.writer.take() {
            let _ = w.flush();
        }
    }

    /// Flush the attached writer without detaching it.
    pub fn flush(&self) {
        if let Some(w) = self.lock().writer.as_mut() {
            let _ = w.flush();
        }
    }

    /// Record one event. Fields an event kind does not use are passed as
    /// zero; see [`TraceKind`] for the per-kind meaning of `a` and `b`.
    pub fn emit(&self, kind: TraceKind, unit: u64, pass: u8, page: u64, a: u64, b: u64) {
        if cfg!(feature = "noop") {
            return;
        }
        let ev = TraceEvent {
            seq: self.seq.fetch_add(1, Relaxed),
            us: self.epoch.elapsed().as_micros() as u64,
            kind,
            unit,
            pass,
            page,
            a,
            b,
        };
        let mut inner = self.lock();
        if inner.ring.len() == inner.cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(ev);
        if let Some(w) = inner.writer.as_mut() {
            let _ = writeln!(w, "{}", ev.to_json());
        }
    }

    /// Total events emitted so far (including any that fell off the ring).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Relaxed)
    }

    /// Copy of the ring contents, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().ring.iter().copied().collect()
    }

    /// Drain the ring, returning its contents oldest first.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.lock().ring.drain(..).collect()
    }

    /// Empty the ring (the attached writer, if any, is unaffected).
    pub fn clear(&self) {
        self.lock().ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    #[test]
    fn ring_keeps_most_recent_events() {
        let t = Tracer::with_capacity(3);
        for i in 0..5 {
            t.emit(TraceKind::UnitBegin, i, 1, 10 + i, 0, 0);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].unit, 2);
        assert_eq!(evs[2].unit, 4);
        assert_eq!(t.emitted(), 5);
    }

    /// A shared Vec the test can read back after the tracer wrote to it.
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_writer_receives_schema_lines() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let t = Tracer::new();
        t.attach_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        t.emit(TraceKind::Pass3Stable, 7, 3, 42, 1000, 0);
        t.detach_writer();
        let out = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let line = out.lines().next().unwrap();
        assert!(line.starts_with("{\"seq\":0,\"us\":"), "{line}");
        assert!(
            line.ends_with(
                "\"event\":\"pass3_stable\",\"unit\":7,\"pass\":3,\"page\":42,\"a\":1000,\"b\":0}"
            ),
            "{line}"
        );
    }

    #[test]
    fn stable_json_omits_seq_and_us() {
        let t = Tracer::new();
        t.emit(TraceKind::TreeSwitch, 0, 3, 9, 2, 0);
        let ev = t.events()[0];
        assert_eq!(
            ev.to_json_stable(),
            "{\"event\":\"tree_switch\",\"unit\":0,\"pass\":3,\"page\":9,\"a\":2,\"b\":0}"
        );
    }
}
