//! The eight experiments E1–E8 (see DESIGN.md for the paper mapping).
//! Each function runs self-contained and returns a printable report.

use obr_sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use obr_baseline::{TandemConfig, TandemReorganizer};
use obr_btree::SidePointerMode;
use obr_core::{
    recover, Database, FailPoint, FailSite, LogStrategy, PlacementPolicy, ReorgConfig, Reorganizer,
};
use obr_lock::LockManager;
use obr_storage::{DiskManager, InMemoryDisk};
use obr_txn::{degrade, run_workload, KeyDist, Session, WorkloadConfig};

use crate::harness::{
    churned_database, churned_database_with_latency, cold_scan_cost, f, sparse_database, table,
    value_for, Row,
};

/// Scale knob: 1 = quick (seconds); larger values grow data sizes.
#[derive(Clone, Copy, Debug)]
pub struct Scale(pub u64);

impl Scale {
    fn n(&self, base: u64) -> u64 {
        base * self.0
    }
}

fn default_cfg() -> ReorgConfig {
    ReorgConfig::default()
}

// ---------------------------------------------------------------------
// E1 — Table 1: the lock compatibility matrix and the special behaviours.
// ---------------------------------------------------------------------

/// E1: print the realized lock matrix and verify the two special
/// behaviours (RX => forgo; RS => unconditional instant duration).
pub fn e1_lock_matrix(_scale: Scale) -> String {
    use obr_lock::{LockError, LockMode, OwnerId, ResourceId};
    let mut out = String::new();
    out.push_str("\n== E1: lock compatibility (paper Table 1) ==\n");
    out.push_str(&LockManager::compatibility_table());
    // Behaviour demos.
    let m = LockManager::new();
    let page = ResourceId::Page(1);
    let base = ResourceId::Page(2);
    m.lock(OwnerId(9), page, LockMode::RX).unwrap();
    let forgone = matches!(
        m.lock(OwnerId(1), page, LockMode::S),
        Err(LockError::ConflictsWithReorg)
    );
    m.lock(OwnerId(9), base, LockMode::R).unwrap();
    let m2 = Arc::new(m);
    let m3 = Arc::clone(&m2);
    let h = std::thread::spawn(move || m3.lock_instant(OwnerId(1), base, LockMode::RS));
    std::thread::sleep(Duration::from_millis(30));
    let rs_waited = !h.is_finished();
    m2.unlock(OwnerId(9), base);
    let rs_granted = h.join().unwrap().is_ok();
    let nothing_held = m2.held_mode(OwnerId(1), base).is_none();
    out.push_str(&format!(
        "\nRX conflict action is 'forgo' (no queueing) ............ {}\n\
         RS blocks while the reorganizer holds R ................. {}\n\
         RS returns success once grantable ....................... {}\n\
         RS is instant duration (nothing actually held) .......... {}\n",
        forgone, rs_waited, rs_granted, nothing_held
    ));
    out
}

// ---------------------------------------------------------------------
// E2 — Figures 1 & 2: the three passes, measured.
// ---------------------------------------------------------------------

/// E2: fill factor, page counts, height, and full-scan cost after each
/// pass, for several initial fill factors.
pub fn e2_three_passes(scale: Scale) -> String {
    let mut rows: Vec<Row> = Vec::new();
    for f1 in [0.2, 0.35, 0.5] {
        let n = scale.n(4000);
        let (disk, db) = churned_database(32_768, n, f1, 64, 0xBEEF ^ (f1 * 100.0) as u64);
        let snap = |label: &str| -> Row {
            let s = db.tree().stats().unwrap();
            // Cold full-range scan cost under the disk model. The seek
            // column is the leaf-chain seek distance (the quantity pass 2
            // minimizes), excluding the fixed descent into the leaf region.
            let (reads, _total_seek) = cold_scan_cost(&disk, &db);
            vec![
                format!("{f1:.2}"),
                label.to_string(),
                s.leaf_pages.to_string(),
                s.internal_pages.to_string(),
                s.height.to_string(),
                f(s.avg_leaf_fill),
                s.leaf_discontinuities().to_string(),
                s.scan_seek_distance().to_string(),
                reads.to_string(),
            ]
        };
        rows.push(snap("initial"));
        let reorg = Reorganizer::new(Arc::clone(&db), default_cfg());
        reorg.pass1_compact().unwrap();
        rows.push(snap("pass1"));
        reorg.pass2_swap_move().unwrap();
        rows.push(snap("pass2"));
        reorg.pass3_shrink().unwrap();
        rows.push(snap("pass3"));
        db.tree().validate().unwrap();
    }
    table(
        "E2: three passes (Figures 1-2), f2 = 0.90",
        &[
            "f1", "pass", "leaves", "internal", "height", "fill", "disorder", "seek", "scan_io",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------
// E3 — §6.1: the placement heuristic vs naive policies.
// ---------------------------------------------------------------------

/// E3: pass-2 swaps and moves under each placement policy, across
/// sparseness levels. The paper: "our algorithm can greatly reduce the
/// number of swaps needed at the second pass".
pub fn e3_placement(scale: Scale) -> String {
    let mut rows: Vec<Row> = Vec::new();
    for f1 in [0.15, 0.25, 0.4] {
        for (name, policy) in [
            ("heuristic", PlacementPolicy::Heuristic),
            ("first-free", PlacementPolicy::FirstFree),
            ("random", PlacementPolicy::Random(42)),
            ("in-place", PlacementPolicy::InPlaceOnly),
        ] {
            let n = scale.n(3000);
            let (_disk, db) = churned_database(32_768, n, f1, 64, 0xA11CE);
            let cfg = ReorgConfig {
                placement: policy,
                shrink_pass: false,
                ..default_cfg()
            };
            let reorg = Reorganizer::new(Arc::clone(&db), cfg);
            reorg.pass1_compact().unwrap();
            reorg.pass2_swap_move().unwrap();
            db.tree().validate().unwrap();
            let s = reorg.stats();
            let st = db.tree().stats().unwrap();
            rows.push(vec![
                format!("{f1:.2}"),
                name.to_string(),
                s.copy_switch_units.to_string(),
                s.inplace_units.to_string(),
                s.swaps.to_string(),
                s.moves.to_string(),
                st.leaf_discontinuities().to_string(),
            ]);
        }
    }
    table(
        "E3: Find-Free-Space policy vs pass-2 swaps (§6.1)",
        &[
            "f1",
            "policy",
            "copy-switch",
            "in-place",
            "swaps",
            "moves",
            "disorder",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------
// E4 — §8: concurrency vs the Tandem whole-file-lock baseline.
// ---------------------------------------------------------------------

/// E4: reader/updater throughput while reorganization runs — ours vs the
/// \[Smi90\] baseline vs a no-reorganization control.
pub fn e4_concurrency(scale: Scale) -> String {
    let mut rows: Vec<Row> = Vec::new();
    let n = scale.n(3000);
    for threads in [2usize, 4, 8] {
        for system in ["control", "salzberg-zou", "tandem"] {
            // Per-I/O latency gives lock hold times their realistic I/O
            // component; without it, in-memory speed hides the cost of the
            // baseline's whole-file lock.
            let (_disk, db) =
                churned_database_with_latency(65_536, n, 0.25, 64, 0xE4, Duration::from_micros(50));
            let wl = WorkloadConfig {
                readers: threads / 2,
                updaters: threads - threads / 2,
                // Wide keyspace: keep user-vs-user record conflicts rare so
                // the blocking measured is the reorganizer's.
                key_space: n * 8,
                duration: Duration::from_millis(600),
                dist: KeyDist::Uniform,
                scan_fraction: 0.02,
                ..WorkloadConfig::default()
            };
            let stop = AtomicBool::new(false);
            let lock_before = db.locks().stats();
            let (report, reorg_elapsed) = std::thread::scope(|s| {
                let dbr = Arc::clone(&db);
                let reorg_handle = match system {
                    "salzberg-zou" => Some(s.spawn(move || {
                        let t0 = Instant::now();
                        let cfg = ReorgConfig {
                            shrink_pass: false,
                            ..default_cfg()
                        };
                        let r = Reorganizer::new(dbr, cfg);
                        r.pass1_compact().unwrap();
                        r.pass2_swap_move().unwrap();
                        t0.elapsed()
                    })),
                    "tandem" => Some(s.spawn(move || {
                        let t0 = Instant::now();
                        let t = TandemReorganizer::new(dbr, TandemConfig::default());
                        t.run().unwrap();
                        t0.elapsed()
                    })),
                    _ => None,
                };
                let report = run_workload(&db, &wl, &stop);
                let reorg_elapsed = reorg_handle
                    .map(|h| h.join().expect("reorg thread"))
                    .unwrap_or_default();
                (report, reorg_elapsed)
            });
            db.tree().validate().unwrap();
            let lw = db.locks().stats().since(&lock_before);
            rows.push(vec![
                threads.to_string(),
                system.to_string(),
                format!("{:.0}", report.throughput()),
                format!("{:?}", report.read_latency.percentile(0.99)),
                format!("{:?}", report.update_latency.max()),
                report.rs_fallbacks.to_string(),
                lw.waited_grants.to_string(),
                format!("{:.1}ms", lw.wait_nanos as f64 / 1e6),
                if reorg_elapsed == Duration::default() {
                    "-".into()
                } else {
                    format!("{reorg_elapsed:.1?}")
                },
            ]);
        }
    }
    table(
        "E4: throughput under concurrent reorganization (§8 vs [Smi90])",
        &[
            "threads",
            "system",
            "ops/s",
            "p99_read",
            "max_upd",
            "rs_fallbacks",
            "lock_waits",
            "blocked",
            "reorg_time",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------
// E5 — §5.1: forward recovery vs rollback.
// ---------------------------------------------------------------------

/// E5: crash the reorganizer mid-unit `k` times; forward recovery keeps the
/// moved records and finishes the unit, then the run resumes from LK.
pub fn e5_forward_recovery(scale: Scale) -> String {
    let mut rows: Vec<Row> = Vec::new();
    let n = scale.n(2500);
    for crashes in [1u64, 2, 4] {
        // --- Ours: forward recovery. ---
        let t0 = Instant::now();
        let disk = Arc::new(InMemoryDisk::new(32_768));
        let mut db = Database::create(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            32_768,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let records: Vec<(u64, Vec<u8>)> = (0..n).map(|k| (k, value_for(k, 64))).collect();
        db.tree().bulk_load(&records, 0.25, 0.9).unwrap();
        let expected = db.tree().collect_all().unwrap();
        db.checkpoint().expect("checkpoint");
        let mut preserved = 0u64;
        let mut forward_units = 0usize;
        for c in 0..crashes {
            let cfg = ReorgConfig {
                swap_pass: false,
                shrink_pass: false,
                ..default_cfg()
            };
            let reorg = Reorganizer::new(Arc::clone(&db), cfg)
                .with_fail_point(FailPoint::new(FailSite::AfterFirstMove, 2 + c));
            match reorg.pass1_compact() {
                Err(_) => {
                    // Partial flush, then power failure.
                    let mut flip = c % 2 == 0;
                    db.crash(|_| {
                        flip = !flip;
                        flip
                    })
                    .unwrap();
                    let log = Arc::clone(db.log());
                    db = Database::reopen(
                        Arc::clone(&disk) as Arc<dyn DiskManager>,
                        log,
                        32_768,
                        SidePointerMode::TwoWay,
                    )
                    .unwrap();
                    let rep = recover(&db).unwrap();
                    preserved += rep.records_preserved;
                    forward_units += rep.forward_units_completed;
                }
                Ok(()) => break,
            }
        }
        // Finish the reorganization.
        let cfg = ReorgConfig {
            swap_pass: false,
            shrink_pass: false,
            ..default_cfg()
        };
        Reorganizer::new(Arc::clone(&db), cfg)
            .pass1_compact()
            .unwrap();
        assert_eq!(db.tree().collect_all().unwrap(), expected);
        db.tree().validate().unwrap();
        let ours = t0.elapsed();
        let fill_ours = db.tree().stats().unwrap().avg_leaf_fill;
        rows.push(vec![
            crashes.to_string(),
            "forward (ours)".into(),
            format!("{ours:.1?}"),
            forward_units.to_string(),
            preserved.to_string(),
            f(fill_ours),
        ]);
        // --- Baseline: rollback-style (in-flight work lost, restart scan). ---
        let t0 = Instant::now();
        let (_disk2, db2) = sparse_database(32_768, n, 0.25, 64);
        db2.checkpoint().expect("checkpoint");
        for c in 0..crashes {
            let t = TandemReorganizer::new(
                Arc::clone(&db2),
                TandemConfig {
                    ordering_phase: false,
                    ..TandemConfig::default()
                },
            );
            // Crash after some transactions: abandon mid-run; the in-flight
            // operation's work is rolled back (never logged).
            let db3 = Arc::clone(&db2);
            std::thread::scope(|s| {
                let stopper = s.spawn(|| {
                    std::thread::sleep(Duration::from_millis(5 + c * 3));
                    t.stop.store(true, obr_sync::atomic::Ordering::Relaxed);
                });
                t.run_merges().unwrap();
                stopper.join().unwrap();
            });
            let _ = db3;
        }
        let t = TandemReorganizer::new(
            Arc::clone(&db2),
            TandemConfig {
                ordering_phase: false,
                ..TandemConfig::default()
            },
        );
        t.run_merges().unwrap();
        db2.tree().validate().unwrap();
        let theirs = t0.elapsed();
        let fill_theirs = db2.tree().stats().unwrap().avg_leaf_fill;
        rows.push(vec![
            crashes.to_string(),
            "rollback [Smi90]".into(),
            format!("{theirs:.1?}"),
            "0".into(),
            "0".into(),
            f(fill_theirs),
        ]);
    }
    table(
        "E5: crashes during reorganization (§5.1 Forward Recovery)",
        &[
            "crashes",
            "recovery",
            "total_time",
            "fwd_units",
            "records_kept",
            "final_fill",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------
// E6 — §5: log volume under the three logging strategies.
// ---------------------------------------------------------------------

/// E6: reorganization log bytes — keys-only (careful writing) vs full
/// records vs \[Smi90\] page images; plus the pass-2 swap full-page cost.
pub fn e6_log_volume(scale: Scale) -> String {
    let mut rows: Vec<Row> = Vec::new();
    let n = scale.n(3000);
    for (name, strategy) in [
        ("keys-only", Some(LogStrategy::KeysOnly)),
        ("full-records", Some(LogStrategy::FullRecords)),
        ("page-image [Smi90]", None),
    ] {
        let (_disk, db) = sparse_database(32_768, n, 0.25, 64);
        let before = db.log().stats();
        let (moved, swaps) = match strategy {
            Some(ls) => {
                let cfg = ReorgConfig {
                    log_strategy: ls,
                    shrink_pass: false,
                    ..default_cfg()
                };
                let r = Reorganizer::new(Arc::clone(&db), cfg);
                r.pass1_compact().unwrap();
                r.pass2_swap_move().unwrap();
                (r.stats().records_moved, r.stats().swaps)
            }
            None => {
                let t = TandemReorganizer::new(Arc::clone(&db), TandemConfig::default());
                t.run().unwrap();
                (t.stats().records_moved, t.stats().swaps)
            }
        };
        let d = db.log().stats().since(&before);
        db.tree().validate().unwrap();
        let bytes = if strategy.is_some() {
            d.reorg_bytes
        } else {
            d.bytes // the baseline logs via plain Smo image records
        };
        rows.push(vec![
            name.to_string(),
            moved.to_string(),
            swaps.to_string(),
            bytes.to_string(),
            f(bytes as f64 / moved.max(1) as f64),
        ]);
    }
    table(
        "E6: reorganization log volume (§5 careful writing)",
        &[
            "strategy",
            "records_moved",
            "swaps",
            "log_bytes",
            "bytes/record",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------
// E7 — §7: availability during internal-page reorganization.
// ---------------------------------------------------------------------

/// E7: pass 3 under a live update workload: side-file traffic, stable
/// points, and updater throughput with/without the rebuild running.
pub fn e7_pass3_availability(scale: Scale) -> String {
    let mut rows: Vec<Row> = Vec::new();
    let n = scale.n(12_000);
    for with_reorg in [false, true] {
        let disk = Arc::new(InMemoryDisk::with_latency(
            65_536,
            Duration::from_micros(10),
        ));
        let db = Database::create(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            65_536,
            SidePointerMode::TwoWay,
        )
        .unwrap();
        let records: Vec<(u64, Vec<u8>)> = (0..n).map(|k| (k * 2, value_for(k, 64))).collect();
        // Full leaves so concurrent inserts split behind the read frontier
        // (feeding the side file); low node fill so pass 3 has real work.
        db.tree().bulk_load(&records, 0.9, 0.04).unwrap();
        let wl = WorkloadConfig {
            readers: 1,
            updaters: 4,
            key_space: n * 2,
            duration: Duration::from_millis(900),
            scan_fraction: 0.0,
            ..WorkloadConfig::default()
        };
        let stop = AtomicBool::new(false);
        let (report, p3) = std::thread::scope(|s| {
            let dbr = Arc::clone(&db);
            let handle = with_reorg.then(|| {
                s.spawn(move || {
                    // Let the workload warm up so pass 3 truly overlaps it.
                    std::thread::sleep(Duration::from_millis(250));
                    let cfg = ReorgConfig {
                        stable_interval: 3,
                        ..default_cfg()
                    };
                    let r = Reorganizer::new(dbr, cfg);
                    let t0 = Instant::now();
                    r.pass3_shrink().unwrap();
                    (r.stats(), t0.elapsed())
                })
            });
            let report = run_workload(&db, &wl, &stop);
            let p3 = handle.map(|h| h.join().expect("pass3 thread"));
            (report, p3)
        });
        db.tree().validate().unwrap();
        let (stats, elapsed) = match p3 {
            Some((s, e)) => (Some(s), Some(e)),
            None => (None, None),
        };
        rows.push(vec![
            if with_reorg {
                "pass3 running"
            } else {
                "control"
            }
            .into(),
            format!("{:.0}", report.throughput()),
            format!("{:?}", report.update_latency.percentile(0.99)),
            stats
                .map(|s| s.base_pages_read.to_string())
                .unwrap_or_else(|| "-".into()),
            stats
                .map(|s| s.stable_points.to_string())
                .unwrap_or_else(|| "-".into()),
            stats
                .map(|_| db.side_file().appended_total().to_string())
                .unwrap_or_else(|| "-".into()),
            stats
                .map(|s| s.side_entries_applied.to_string())
                .unwrap_or_else(|| "-".into()),
            elapsed
                .map(|e| format!("{e:.1?}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table(
        "E7: availability during pass 3 (§7): side file + switch",
        &[
            "run",
            "ops/s",
            "p99_upd",
            "bases_read",
            "stable_pts",
            "side_appended",
            "side_applied",
            "pass3_time",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------
// E8 — §2 motivation: free-at-empty degradation.
// ---------------------------------------------------------------------

/// E8: utilization decay under mixed insert/delete churn — why on-line
/// reorganization is needed at all.
pub fn e8_degradation(scale: Scale) -> String {
    let mut rows: Vec<Row> = Vec::new();
    let n = scale.n(3000);
    let disk = Arc::new(InMemoryDisk::new(65_536));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        65_536,
        SidePointerMode::TwoWay,
    )
    .unwrap();
    degrade(&db, n, 64, 0.0, 1); // initial full load
    let session = Session::new(Arc::clone(&db));
    let mut rng: u64 = 0x1234_5678;
    let mut next_key = n;
    for round in 0..=5u32 {
        let s = db.tree().stats().unwrap();
        let (reads, seek) = cold_scan_cost(&disk, &db);
        rows.push(vec![
            round.to_string(),
            s.records.to_string(),
            s.leaf_pages.to_string(),
            f(s.avg_leaf_fill),
            s.leaf_discontinuities().to_string(),
            f(reads as f64 * 1000.0 / s.records.max(1) as f64),
            seek.to_string(),
        ]);
        if round == 5 {
            break;
        }
        // One churn round: delete 40% of surviving keys, insert 25% new
        // (net shrink, like an aging table with free-at-empty).
        let keys: Vec<u64> = db
            .tree()
            .collect_all()
            .unwrap()
            .iter()
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            if rng % 100 < 40 {
                let _ = session.delete(k);
            }
        }
        for _ in 0..(n / 4) {
            let _ = session.insert(next_key, &value_for(next_key, 64));
            next_key += 1;
        }
    }
    db.tree().validate().unwrap();
    table(
        "E8: free-at-empty degradation under churn (§2, [JS93])",
        &[
            "round",
            "records",
            "leaves",
            "fill",
            "disorder",
            "reads/1k-recs",
            "seek",
        ],
        &rows,
    )
}

/// Run every experiment in order.
pub fn run_all(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&e1_lock_matrix(scale));
    out.push_str(&e2_three_passes(scale));
    out.push_str(&e3_placement(scale));
    out.push_str(&e4_concurrency(scale));
    out.push_str(&e5_forward_recovery(scale));
    out.push_str(&e6_log_volume(scale));
    out.push_str(&e7_pass3_availability(scale));
    out.push_str(&e8_degradation(scale));
    out
}
