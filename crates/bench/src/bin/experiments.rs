//! Experiment runner: regenerates every exhibit of the paper.
//!
//! ```text
//! experiments [--exp e1|e2|...|e8|all] [--scale N]
//! ```

use obr_bench::experiments::{self, Scale};

fn main() {
    let mut exp = "all".to_string();
    let mut scale = Scale(1);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--exp" => exp = args.next().unwrap_or_else(|| "all".into()),
            "--scale" => {
                scale = Scale(args.next().and_then(|s| s.parse().ok()).unwrap_or(1).max(1))
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--exp e1..e8|all] [--scale N]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let out = match exp.as_str() {
        "e1" => experiments::e1_lock_matrix(scale),
        "e2" => experiments::e2_three_passes(scale),
        "e3" => experiments::e3_placement(scale),
        "e4" => experiments::e4_concurrency(scale),
        "e5" => experiments::e5_forward_recovery(scale),
        "e6" => experiments::e6_log_volume(scale),
        "e7" => experiments::e7_pass3_availability(scale),
        "e8" => experiments::e8_degradation(scale),
        "all" => experiments::run_all(scale),
        other => {
            eprintln!("unknown experiment {other}; use e1..e8 or all");
            std::process::exit(2);
        }
    };
    println!("{out}");
}
