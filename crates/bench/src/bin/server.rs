//! Network-frontend throughput benchmark: sustained ops/s and tail
//! latency over the wire **while the reorganization daemon runs**.
//!
//! ```text
//! server [--smoke] [--out PATH]
//! ```
//!
//! A fresh durable database is sparse-loaded (so the daemon has real work
//! from the first cycle), the TCP frontend is started, and N client
//! connections run a mixed workload (50% point reads, 30% upserts, 20%
//! short scans) for a fixed window, timing every call end-to-end — codec,
//! socket, admission, engine, and fsync all in the measured path. BUSY
//! sheds are retried with backoff and counted, not timed. Results land in
//! `BENCH_server.json` (or `--out`) with p50/p95/p99 and the post-run
//! integrity verdict.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use obr_btree::SidePointerMode;
use obr_core::{Database, EngineConfig, ReorgConfig, ReorgDaemon, ReorgTrigger};
use obr_server::client::Client;
use obr_server::proto::ErrorCode;
use obr_server::server::{Server, ServerConfig};
use obr_sync::atomic::{AtomicBool, Ordering};
use obr_txn::workload::LatencyHistogram;

struct BenchResult {
    clients: usize,
    ops: u64,
    busy_retries: u64,
    elapsed: Duration,
    latency: LatencyHistogram,
    reorg_runs: usize,
    sessions_total: u64,
    requests_shed: u64,
    check_clean: bool,
    metrics_json: String,
}

impl BenchResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn run_one(
    clients: usize,
    preload: u64,
    pages: u32,
    frames: usize,
    window: Duration,
    dir: &std::path::Path,
) -> BenchResult {
    let _ = std::fs::remove_dir_all(dir);
    let cfg = EngineConfig::default();
    let db = Database::create_durable_with_config(
        dir,
        pages,
        frames,
        SidePointerMode::TwoWay,
        cfg.clone(),
    )
    .expect("create durable database");
    let records: Vec<(u64, Vec<u8>)> = (0..preload).map(|k| (k, vec![0xB7; 64])).collect();
    // Sparse load: the daemon reorganizes underneath the whole run.
    db.tree().bulk_load(&records, 0.45, 0.9).expect("bulk load");

    let daemon = ReorgDaemon::spawn(
        Arc::clone(&db),
        ReorgConfig::default(),
        ReorgTrigger::default(),
        Duration::from_millis(25),
    );
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::from_engine("127.0.0.1:0", &cfg),
    )
    .expect("start server");
    let addr = server.local_addr().to_string();

    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(clients + 1);
    let (started, worker_results) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let addr = addr.clone();
            let (stop, barrier) = (&stop, &barrier);
            handles.push(s.spawn(move || {
                let mut client = Client::connect(&addr).expect("client connect");
                let mut hist = LatencyHistogram::default();
                let mut busy = 0u64;
                let mut rng = 0xD1B5_4A32_D192_ED03u64 ^ ((c as u64 + 1) << 17);
                let write_base = 1u64 << 32;
                barrier.wait();
                let mut i = 0u64;
                // relaxed: go/no-go flag for the measurement window.
                while !stop.load(Ordering::Relaxed) {
                    let r = xorshift(&mut rng);
                    let key = r % preload;
                    let t0 = Instant::now();
                    let outcome = match r % 10 {
                        0..=4 => client.get(key).map(|_| ()),
                        5..=7 => client.put(write_base + (c as u64) * (1 << 24) + i, &[0x5A; 64]),
                        _ => client.scan(key, key + 30, 32).map(|_| ()),
                    };
                    match outcome {
                        Ok(()) => hist.record(t0.elapsed()),
                        Err(e)
                            if matches!(
                                e.code(),
                                Some(ErrorCode::Busy | ErrorCode::Deadlock | ErrorCode::Timeout)
                            ) =>
                        {
                            busy += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("client {c} failed: {e}"),
                    }
                    i += 1;
                }
                let _ = client.bye();
                (hist, busy)
            }));
        }
        barrier.wait();
        let started = Instant::now();
        std::thread::sleep(window);
        // relaxed: go/no-go flag.
        stop.store(true, Ordering::Relaxed);
        let results: Vec<(LatencyHistogram, u64)> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        (started, results)
    });
    let elapsed = started.elapsed();

    let reorg_runs = match daemon.stop() {
        Ok(d) => d.len(),
        Err(e) => {
            eprintln!("note: reorg daemon gave up at {clients} clients: {e}");
            0
        }
    };
    server.shutdown().expect("server shutdown");

    let mut latency = LatencyHistogram::default();
    let mut busy_retries = 0u64;
    for (h, b) in &worker_results {
        latency.merge(h);
        busy_retries += b;
    }
    let snap = db.metrics_snapshot().expect("metrics snapshot");
    let sessions_total = snap.counter("server_sessions_total");
    let requests_shed = snap.counter("server_requests_shed");
    let metrics_json = snap.to_json();
    let report = obr_check::check_database(&db);
    let check_clean = report.is_clean();
    if !check_clean {
        eprintln!("check findings at {clients} clients:\n{report}");
    }
    let result = BenchResult {
        clients,
        ops: latency.count(),
        busy_retries,
        elapsed,
        latency,
        reorg_runs,
        sessions_total,
        requests_shed,
        check_clean,
        metrics_json,
    };
    drop(db);
    let _ = std::fs::remove_dir_all(dir);
    result
}

fn effective_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parallelism_warning(max_clients: usize) -> Option<String> {
    let hw = effective_parallelism();
    // Each client costs two threads (client side + server session).
    let workers = 2 * max_clients;
    (hw < workers).then(|| {
        format!(
            "{workers} threads (N={max_clients} clients + their server sessions) \
             oversubscribe {hw} available hardware threads; \
             per-client-count rows are time-sliced, not parallel"
        )
    })
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn emit_json(results: &[BenchResult], smoke: bool, out: &std::path::Path) {
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"server\",\n");
    body.push_str(&format!("  \"smoke\": {smoke},\n"));
    body.push_str(&format!("  \"hw_threads\": {},\n", effective_parallelism()));
    let max_clients = results.iter().map(|r| r.clients).max().unwrap_or(0);
    match parallelism_warning(max_clients) {
        Some(w) => body.push_str(&format!("  \"parallelism_warning\": \"{w}\",\n")),
        None => body.push_str("  \"parallelism_warning\": null,\n"),
    }
    body.push_str(
        "  \"workload\": \"50% GET / 30% PUT / 20% SCAN over TCP while the reorg daemon runs\",\n",
    );
    body.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"clients\": {}, \"ops\": {}, \"ops_per_sec\": {:.1}, \
             \"elapsed_ms\": {:.1}, \"latency_us\": {{\"mean\": {:.1}, \"p50\": {:.1}, \
             \"p95\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}}, \"busy_retries\": {}, \
             \"requests_shed\": {}, \"sessions_total\": {}, \"reorg_runs\": {}, \
             \"check_clean\": {}, \"metrics\": {}}}{}\n",
            r.clients,
            r.ops,
            r.ops_per_sec(),
            r.elapsed.as_secs_f64() * 1e3,
            micros(r.latency.mean()),
            micros(r.latency.percentile(0.50)),
            micros(r.latency.percentile(0.95)),
            micros(r.latency.percentile(0.99)),
            micros(r.latency.max()),
            r.busy_retries,
            r.requests_shed,
            r.sessions_total,
            r.reorg_runs,
            r.check_clean,
            r.metrics_json,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    let all_clean = results.iter().all(|r| r.check_clean);
    let total_reorgs: usize = results.iter().map(|r| r.reorg_runs).sum();
    body.push_str(&format!("  \"total_reorg_runs\": {total_reorgs},\n"));
    body.push_str(&format!("  \"all_checks_clean\": {all_clean}\n"));
    body.push_str("}\n");
    std::fs::write(out, &body).expect("write BENCH_server.json");
    println!("wrote {}", out.display());
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_server.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--help" | "-h" => {
                eprintln!("usage: server [--smoke] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let (client_counts, preload, pages, frames, window): (&[usize], u64, u32, usize, Duration) =
        if smoke {
            (&[1, 4], 800, 8_192, 512, Duration::from_millis(200))
        } else {
            (
                &[1, 2, 4, 8],
                4_000,
                32_768,
                1_024,
                Duration::from_millis(800),
            )
        };

    let max_clients = client_counts.iter().copied().max().unwrap_or(0);
    println!(
        "effective parallelism: {} hardware threads, {} worker threads at the widest point",
        effective_parallelism(),
        2 * max_clients,
    );
    if let Some(w) = parallelism_warning(max_clients) {
        println!("WARNING: {w}");
    }

    let tmp = std::env::temp_dir().join(format!("obr-bench-server-{}", std::process::id()));
    let mut results = Vec::new();
    for &clients in client_counts {
        let r = run_one(
            clients,
            preload,
            pages,
            frames,
            window,
            &tmp.join(format!("c{clients}")),
        );
        println!(
            "{:>2} clients: {:>8.0} ops/s | p50 {:>7.1}us p95 {:>7.1}us p99 {:>7.1}us | \
             {} busy retries, {} shed, {} reorg runs, check {}",
            r.clients,
            r.ops_per_sec(),
            micros(r.latency.percentile(0.50)),
            micros(r.latency.percentile(0.95)),
            micros(r.latency.percentile(0.99)),
            r.busy_retries,
            r.requests_shed,
            r.reorg_runs,
            if r.check_clean { "clean" } else { "DIRTY" },
        );
        results.push(r);
    }
    let _ = std::fs::remove_dir_all(&tmp);
    emit_json(&results, smoke, &out);
    if results.iter().any(|r| !r.check_clean) {
        eprintln!("FAILED: post-run check reported findings");
        std::process::exit(1);
    }
}
