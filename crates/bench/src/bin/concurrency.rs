//! Multi-threaded throughput benchmark: sharded buffer pool + group-commit
//! WAL against the seed's single-mutex pool + lock-held-across-fsync WAL.
//!
//! ```text
//! concurrency [--smoke] [--out PATH]
//! ```
//!
//! For each engine config and each thread count, a fresh *durable* database
//! (file-backed pages + WAL, so commits pay a real fsync) is bulk-loaded
//! sparse, the reorganization daemon is started, and then N writer threads
//! (durable commits on disjoint key ranges) race N reader threads (point
//! reads + occasional scans over the preloaded keys) for a fixed window.
//! After each run the live pool is checked with `obr-check`. Results go to
//! `BENCH_concurrency.json` (or `--out`) as hand-rolled JSON plus a table on
//! stdout.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use obr_btree::SidePointerMode;
use obr_core::{Database, EngineConfig, ReorgConfig, ReorgDaemon, ReorgTrigger};
use obr_txn::{Session, TxnError};

/// Each writer owns `[WRITER_BASE + w * WRITER_STRIDE, ..)` — disjoint from
/// every other writer and from the preloaded `[0, n)` read range, so the
/// contention measured is the engine's, not the workload's.
const WRITER_BASE: u64 = 1 << 32;
const WRITER_STRIDE: u64 = 1 << 24;

struct RunResult {
    config: &'static str,
    threads: usize,
    commits: u64,
    reads: u64,
    restarts: u64,
    elapsed: Duration,
    fsyncs: u64,
    wal_batches: u64,
    flush_calls: u64,
    pool_shards: usize,
    reorg_runs: usize,
    check_clean: bool,
    /// Full metrics-registry snapshot (`Database::metrics_snapshot`) taken
    /// at the end of the run, already rendered as a JSON object.
    metrics_json: String,
}

impl RunResult {
    fn ops(&self) -> u64 {
        self.commits + self.reads
    }
    fn ops_per_sec(&self) -> f64 {
        self.ops() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    config_name: &'static str,
    cfg: EngineConfig,
    threads: usize,
    preload: u64,
    pages: u32,
    frames: usize,
    window: Duration,
    dir: &std::path::Path,
) -> RunResult {
    let _ = std::fs::remove_dir_all(dir);
    let db = Database::create_durable_with_config(dir, pages, frames, SidePointerMode::TwoWay, cfg)
        .expect("create durable database");
    let records: Vec<(u64, Vec<u8>)> = (0..preload).map(|k| (k, vec![0xB7; 64])).collect();
    // Sparse load so the daemon has real reorganization work during the run.
    db.tree().bulk_load(&records, 0.45, 0.9).expect("bulk load");

    let sync_before = db.log().sync_stats();
    let daemon = ReorgDaemon::spawn(
        Arc::clone(&db),
        ReorgConfig::default(),
        ReorgTrigger::default(),
        Duration::from_millis(25),
    );

    let stop = AtomicBool::new(false);
    let commits = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    let restarts = AtomicU64::new(0);
    let barrier = Barrier::new(2 * threads + 1);
    let started = std::thread::scope(|s| {
        for w in 0..threads {
            let db = Arc::clone(&db);
            let (stop, commits, restarts, barrier) = (&stop, &commits, &restarts, &barrier);
            s.spawn(move || {
                let session = Session::new(db);
                let value = vec![0x5Au8; 64];
                let mut key = WRITER_BASE + w as u64 * WRITER_STRIDE;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let mut txn = session.begin();
                    match txn.insert(key, &value) {
                        Ok(()) => {
                            if txn.commit().is_ok() {
                                commits.fetch_add(1, Ordering::Relaxed);
                            }
                            key += 1;
                        }
                        Err(TxnError::Deadlock) | Err(TxnError::Timeout) => {
                            let _ = txn.abort();
                            restarts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("writer failed on key {key}: {e}"),
                    }
                }
            });
        }
        for r in 0..threads {
            let db = Arc::clone(&db);
            let (stop, reads, restarts, barrier) = (&stop, &reads, &restarts, &barrier);
            s.spawn(move || {
                let session = Session::new(db);
                let mut rng = 0x9E3779B9u64 ^ ((r as u64 + 1) << 16);
                barrier.wait();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = xorshift(&mut rng) % preload;
                    let outcome = if i.is_multiple_of(64) {
                        session.scan(key, key + 50).map(|_| ())
                    } else {
                        session.read(key).map(|_| ())
                    };
                    match outcome {
                        Ok(()) => {
                            reads.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TxnError::Deadlock) | Err(TxnError::Timeout) => {
                            restarts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("reader failed on key {key}: {e}"),
                    }
                    i += 1;
                }
            });
        }
        barrier.wait();
        let started = Instant::now();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        started
    });
    let elapsed = started.elapsed();
    // A daemon run that gives up after repeated deadlock losses is a valid
    // outcome under heavy contention (especially time-sliced on few cores),
    // not a benchmark failure: the reorganizer is designed to back off.
    let reorg_runs = match daemon.stop() {
        Ok(decisions) => decisions.len(),
        Err(e) => {
            eprintln!("note: reorg daemon gave up for {config_name}/{threads}t: {e}");
            0
        }
    };
    let sync_after = db.log().sync_stats();

    let report = obr_check::check_database(&db);
    let check_clean = report.is_clean();
    if !check_clean {
        eprintln!("check findings for {config_name}/{threads}t:\n{report}");
    }
    let metrics_json = db
        .metrics_snapshot()
        .map_or_else(|_| "{}".to_string(), |s| s.to_json());
    let result = RunResult {
        config: config_name,
        threads,
        commits: commits.load(Ordering::Relaxed),
        reads: reads.load(Ordering::Relaxed),
        restarts: restarts.load(Ordering::Relaxed),
        elapsed,
        fsyncs: sync_after.syncs - sync_before.syncs,
        wal_batches: sync_after.batches - sync_before.batches,
        flush_calls: sync_after.flush_calls - sync_before.flush_calls,
        pool_shards: db.pool().shard_count(),
        reorg_runs,
        check_clean,
        metrics_json,
    };
    drop(db);
    let _ = std::fs::remove_dir_all(dir);
    result
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are static identifiers; assert rather than escape.
    assert!(s
        .chars()
        .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'));
    s
}

/// Effective parallelism of this machine as the scheduler reports it.
/// `available_parallelism` honours cgroup CPU quotas and affinity masks, so
/// inside a constrained container it can be far below the core count — and
/// below the benchmark's own thread counts, which makes the "scaling" rows
/// time-sliced rather than parallel.
fn effective_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A warning when the benchmark oversubscribes the machine, or `None`.
/// Each run at N threads spawns 2N workers (N writers + N readers).
fn parallelism_warning(max_threads: usize) -> Option<String> {
    let hw = effective_parallelism();
    let workers = 2 * max_threads;
    (hw < workers).then(|| {
        format!(
            "{workers} worker threads (N={max_threads} writers + readers) \
             oversubscribe {hw} available hardware threads; \
             per-thread-count rows are time-sliced, not parallel"
        )
    })
}

fn emit_json(results: &[RunResult], smoke: bool, out: &std::path::Path) {
    let mut body = String::from("{\n");
    body.push_str("  \"bench\": \"concurrency\",\n");
    body.push_str(&format!("  \"smoke\": {smoke},\n"));
    body.push_str(&format!("  \"hw_threads\": {},\n", effective_parallelism()));
    let max_threads = results.iter().map(|r| r.threads).max().unwrap_or(0);
    match parallelism_warning(max_threads) {
        Some(w) => body.push_str(&format!("  \"parallelism_warning\": \"{w}\",\n")),
        None => body.push_str("  \"parallelism_warning\": null,\n"),
    }
    body.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"config\": \"{}\", \"threads\": {}, \"commits\": {}, \"reads\": {}, \
             \"restarts\": {}, \"elapsed_ms\": {:.1}, \"ops_per_sec\": {:.1}, \"fsyncs\": {}, \
             \"wal_batches\": {}, \"flush_calls\": {}, \"pool_shards\": {}, \"reorg_runs\": {}, \
             \"check_clean\": {}, \"metrics\": {}}}{}\n",
            json_escape_free(r.config),
            r.threads,
            r.commits,
            r.reads,
            r.restarts,
            r.elapsed.as_secs_f64() * 1e3,
            r.ops_per_sec(),
            r.fsyncs,
            r.wal_batches,
            r.flush_calls,
            r.pool_shards,
            r.reorg_runs,
            r.check_clean,
            r.metrics_json,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"speedup_by_threads\": {");
    let mut first = true;
    for r in results.iter().filter(|r| r.config == "sharded") {
        if let Some(base) = results
            .iter()
            .find(|b| b.config == "baseline" && b.threads == r.threads)
        {
            if !first {
                body.push_str(", ");
            }
            first = false;
            body.push_str(&format!(
                "\"{}\": {:.3}",
                r.threads,
                r.ops_per_sec() / base.ops_per_sec().max(1e-9)
            ));
        }
    }
    body.push_str("},\n");
    let all_clean = results.iter().all(|r| r.check_clean);
    body.push_str(&format!("  \"all_checks_clean\": {all_clean}\n"));
    body.push_str("}\n");
    std::fs::write(out, &body).expect("write BENCH_concurrency.json");
    println!("wrote {}", out.display());
}

fn main() {
    let mut smoke = false;
    let mut out = PathBuf::from("BENCH_concurrency.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            "--help" | "-h" => {
                eprintln!("usage: concurrency [--smoke] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let (thread_counts, preload, pages, frames, window): (&[usize], u64, u32, usize, Duration) =
        if smoke {
            (&[1, 4], 800, 8_192, 512, Duration::from_millis(150))
        } else {
            (
                &[1, 2, 4, 8],
                4_000,
                32_768,
                1_024,
                Duration::from_millis(700),
            )
        };

    let max_threads = thread_counts.iter().copied().max().unwrap_or(0);
    println!(
        "effective parallelism: {} hardware threads available, \
         {} worker threads at the widest point",
        effective_parallelism(),
        2 * max_threads,
    );
    if let Some(w) = parallelism_warning(max_threads) {
        println!("WARNING: {w}");
    }

    let tmp = std::env::temp_dir().join(format!("obr-bench-conc-{}", std::process::id()));
    let mut results = Vec::new();
    for &threads in thread_counts {
        for (name, cfg) in [
            ("baseline", EngineConfig::single_mutex_baseline()),
            ("sharded", EngineConfig::default()),
        ] {
            let r = run_one(
                name,
                cfg,
                threads,
                preload,
                pages,
                frames,
                window,
                &tmp.join(format!("{name}-{threads}")),
            );
            println!(
                "{:>8} {:>2} threads: {:>8.0} ops/s ({} commits, {} reads, {} restarts) | \
                 {} flushes -> {} batches, {} fsyncs | {} shards, {} reorg runs, check {}",
                r.config,
                r.threads,
                r.ops_per_sec(),
                r.commits,
                r.reads,
                r.restarts,
                r.flush_calls,
                r.wal_batches,
                r.fsyncs,
                r.pool_shards,
                r.reorg_runs,
                if r.check_clean { "clean" } else { "DIRTY" },
            );
            results.push(r);
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
    emit_json(&results, smoke, &out);
    if results.iter().any(|r| !r.check_clean) {
        eprintln!("FAILED: post-run check reported findings");
        std::process::exit(1);
    }
}
