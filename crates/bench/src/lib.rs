//! Experiment harness reproducing every exhibit and quantitative claim of
//! the paper (see `DESIGN.md` for the experiment index E1–E8), plus shared
//! setup helpers used by the Criterion microbenches.

pub mod experiments;
pub mod harness;

pub use harness::{sparse_database, table, Row};
