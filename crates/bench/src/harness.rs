//! Shared setup and table-printing helpers for the experiments.

use std::sync::Arc;

use obr_btree::SidePointerMode;
use obr_core::Database;
use obr_storage::{DiskManager, InMemoryDisk};

/// A printable table row.
pub type Row = Vec<String>;

/// Render a fixed-width table with a header.
pub fn table(title: &str, header: &[&str], rows: &[Row]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let mut line = String::new();
    for (h, w) in header.iter().zip(&widths) {
        line.push_str(&format!("{h:>w$}  ", w = w));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{c:>w$}  ", w = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// A value with a fixed 64-byte body, tagged by its key.
pub fn value_for(k: u64, len: usize) -> Vec<u8> {
    let mut v = k.to_le_bytes().to_vec();
    v.resize(len, 0xC3);
    v
}

/// Build a database whose tree is bulk-loaded at leaf fill `f1` with `n`
/// sequential records of `value_len` bytes.
pub fn sparse_database(
    pages: u32,
    n: u64,
    f1: f64,
    value_len: usize,
) -> (Arc<InMemoryDisk>, Arc<Database>) {
    let disk = Arc::new(InMemoryDisk::new(pages));
    let db = Database::create(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        pages as usize,
        SidePointerMode::TwoWay,
    )
    .expect("create database");
    let records: Vec<(u64, Vec<u8>)> = (0..n).map(|k| (k, value_for(k, value_len))).collect();
    db.tree().bulk_load(&records, f1, 0.9).expect("bulk load");
    (disk, db)
}

/// Build a database degraded the way real tables degrade: dense bulk load
/// over even keys, a wave of odd-key inserts (splits scatter new leaves out
/// of key order), then random deletes down to roughly fill `f1`
/// (free-at-empty leaves the survivors on sparse pages). Produces both
/// sparseness *and* physical disorder.
pub fn churned_database(
    pages: u32,
    n: u64,
    f1: f64,
    value_len: usize,
    seed: u64,
) -> (Arc<InMemoryDisk>, Arc<Database>) {
    churned_database_with_latency(pages, n, f1, value_len, seed, std::time::Duration::ZERO)
}

/// [`churned_database`] over a disk that charges per-I/O latency.
pub fn churned_database_with_latency(
    pages: u32,
    n: u64,
    f1: f64,
    value_len: usize,
    seed: u64,
    latency: std::time::Duration,
) -> (Arc<InMemoryDisk>, Arc<Database>) {
    use obr_storage::Lsn;
    use obr_wal::TxnId;
    let disk = Arc::new(InMemoryDisk::with_latency(pages, latency));
    // §6 two-region layout: the first 1/16th of the disk holds meta and
    // internal pages, so pass 2 can pack leaves with no holes.
    let db = Database::create_with_regions(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        pages as usize,
        SidePointerMode::TwoWay,
        pages / 16,
    )
    .expect("create database");
    let records: Vec<(u64, Vec<u8>)> = (0..n / 2)
        .map(|k| (k * 2, value_for(k * 2, value_len)))
        .collect();
    db.tree().bulk_load(&records, 0.85, 0.9).expect("bulk load");
    // Insert the odd keys: splits allocate new leaves wherever the FSM has
    // room, destroying physical key order.
    for k in 0..n / 2 {
        let key = k * 2 + 1;
        db.tree()
            .insert(TxnId(1), Lsn::ZERO, key, &value_for(key, value_len))
            .expect("churn insert");
    }
    // Random deletes down to ~f1 of a 0.85-full tree.
    let keep = f1 / 0.85;
    let mut rng = seed | 1;
    for key in 0..n {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        if (rng % 10_000) as f64 / 10_000.0 > keep {
            let _ = db.tree().delete(TxnId(1), Lsn::ZERO, key);
        }
    }
    (disk, db)
}

/// Cold full-range scan: evict the buffer pool, scan, report disk reads and
/// seek distance.
pub fn cold_scan_cost(disk: &Arc<InMemoryDisk>, db: &Arc<Database>) -> (u64, u64) {
    db.pool().evict_all().expect("evict");
    disk.reset_stats();
    let _ = db.tree().range_scan(0, u64::MAX).expect("scan");
    let s = disk.stats();
    (s.reads, s.seek_distance)
}

/// Format a float tersely.
pub fn f(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}
