//! Lock manager microbenchmarks: grant/release throughput for the classical
//! and the paper's modes, including the instant-duration RS path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use obr_lock::{LockManager, LockMode, OwnerId, ResourceId};

fn bench_uncontended(c: &mut Criterion) {
    let m = LockManager::new();
    let mut i = 0u32;
    c.bench_function("lock/s-grant-release", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let r = ResourceId::Page(i % 1024);
            m.lock(OwnerId(1), r, LockMode::S).unwrap();
            m.unlock(OwnerId(1), r);
        })
    });
    c.bench_function("lock/x-grant-release", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let r = ResourceId::Page(i % 1024);
            m.lock(OwnerId(1), r, LockMode::X).unwrap();
            m.unlock(OwnerId(1), r);
        })
    });
}

fn bench_shared_holders(c: &mut Criterion) {
    let m = LockManager::new();
    let r = ResourceId::Page(7);
    for o in 0..16 {
        m.lock(OwnerId(o), r, LockMode::S).unwrap();
    }
    c.bench_function("lock/s-grant-16-holders", |b| {
        b.iter(|| {
            m.lock(OwnerId(99), r, LockMode::S).unwrap();
            m.unlock(OwnerId(99), r);
        })
    });
}

fn bench_rx_forgo(c: &mut Criterion) {
    let m = LockManager::new();
    let r = ResourceId::Page(3);
    m.lock(OwnerId(9), r, LockMode::RX).unwrap();
    c.bench_function("lock/rx-forgo-fastpath", |b| {
        b.iter(|| {
            // The forgo path must return immediately without queueing.
            black_box(m.lock(OwnerId(1), r, LockMode::S).unwrap_err());
        })
    });
}

fn bench_instant_rs(c: &mut Criterion) {
    let m = LockManager::new();
    let base = ResourceId::Page(11);
    m.lock(OwnerId(1), base, LockMode::S).unwrap();
    c.bench_function("lock/instant-rs-grantable", |b| {
        b.iter(|| {
            // Grantable immediately (only readers hold the base page).
            m.lock_instant(OwnerId(2), base, LockMode::RS).unwrap();
        })
    });
}

fn bench_upgrade(c: &mut Criterion) {
    let m = LockManager::new();
    let mut i = 0u32;
    c.bench_function("lock/r-to-x-upgrade", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let r = ResourceId::Page(i % 1024);
            m.lock(OwnerId(9), r, LockMode::R).unwrap();
            m.lock(OwnerId(9), r, LockMode::X).unwrap();
            m.unlock(OwnerId(9), r);
        })
    });
}

criterion_group!(
    benches,
    bench_uncontended,
    bench_shared_holders,
    bench_rx_forgo,
    bench_instant_rs,
    bench_upgrade
);
criterion_main!(benches);
