//! WAL benchmarks: append/encode throughput for the record shapes E6
//! compares — keys-only MOVE, full-record MOVE, and the swap's full page
//! image.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use obr_storage::{Lsn, PageId, PAGE_SIZE};
use obr_wal::{LogManager, LogRecord, MovePayload, UnitId};

fn move_keys(n: u64) -> LogRecord {
    LogRecord::ReorgMove {
        unit: UnitId(1),
        org: PageId(1),
        dest: PageId(2),
        payload: MovePayload::Keys((0..n).collect()),
        prev_lsn: Lsn(5),
    }
}

fn move_records(n: u64, vlen: usize) -> LogRecord {
    LogRecord::ReorgMove {
        unit: UnitId(1),
        org: PageId(1),
        dest: PageId(2),
        payload: MovePayload::Records((0..n).map(|k| (k, vec![0u8; vlen])).collect()),
        prev_lsn: Lsn(5),
    }
}

fn swap_image() -> LogRecord {
    LogRecord::ReorgSwap {
        unit: UnitId(1),
        page_a: PageId(1),
        page_b: PageId(2),
        image_a_old: Box::new([0xAB; PAGE_SIZE]),
        prev_lsn: Lsn(5),
    }
}

/// Append with periodic truncation so a full Criterion run (millions of
/// iterations) cannot grow the in-memory log without bound.
fn append_bounded(log: &LogManager, rec: &LogRecord) -> obr_storage::Lsn {
    let lsn = log.append(rec);
    if log.len() > 20_000 {
        log.flush_all().unwrap();
        log.truncate_before(lsn);
    }
    lsn
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/append");
    let log = LogManager::new();
    let keys = move_keys(50);
    let recs = move_records(50, 64);
    let swap = swap_image();
    group.bench_function("move-keys-50", |b| {
        b.iter(|| black_box(append_bounded(&log, &keys)))
    });
    group.bench_function("move-records-50x64B", |b| {
        b.iter(|| black_box(append_bounded(&log, &recs)))
    });
    group.bench_function("swap-page-image", |b| {
        b.iter(|| black_box(append_bounded(&log, &swap)))
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/codec");
    let keys = move_keys(50);
    let encoded = keys.encode();
    group.bench_function("encode-move-keys-50", |b| {
        b.iter(|| black_box(keys.encode()))
    });
    group.bench_function("decode-move-keys-50", |b| {
        b.iter(|| black_box(LogRecord::decode(&encoded).unwrap()))
    });
    let swap = swap_image();
    let swap_bytes = swap.encode();
    group.bench_function("decode-swap-image", |b| {
        b.iter(|| black_box(LogRecord::decode(&swap_bytes).unwrap()))
    });
    group.finish();
}

fn bench_flush(c: &mut Criterion) {
    let log = LogManager::new();
    let rec = move_keys(10);
    c.bench_function("wal/append-force", |b| {
        b.iter(|| black_box(append_bounded(&log, &rec)))
    });
}

criterion_group!(benches, bench_append, bench_codec, bench_flush);
criterion_main!(benches);
