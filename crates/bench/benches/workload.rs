//! Throughput of the transactional layer (sessions + lock protocols), with
//! and without a reorganizer running — the microbench form of E4.

use obr_sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use obr_bench::harness::sparse_database;
use obr_core::{ReorgConfig, Reorganizer};
use obr_txn::{run_workload, KeyDist, Session, WorkloadConfig};

fn bench_point_ops(c: &mut Criterion) {
    let (_disk, db) = sparse_database(16_384, 10_000, 0.9, 64);
    let session = Session::new(Arc::clone(&db));
    let mut k = 0u64;
    c.bench_function("txn/read", |b| {
        b.iter(|| {
            k = (k + 4099) % 10_000;
            session.read(k).unwrap()
        })
    });
    let mut next = 10_000_000u64;
    // Paired with a delete so the tree stays bounded across samples.
    c.bench_function("txn/insert+delete-commit", |b| {
        b.iter(|| {
            next += 1;
            session.insert(next, &[0u8; 64]).unwrap();
            session.delete(next).unwrap();
        })
    });
}

fn bench_mixed_during_reorg(c: &mut Criterion) {
    c.bench_function("txn/200ms-mix-during-pass1", |b| {
        b.iter(|| {
            let (_disk, db) = sparse_database(32_768, 3_000, 0.25, 64);
            let stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                let dbr = Arc::clone(&db);
                s.spawn(move || {
                    let cfg = ReorgConfig {
                        swap_pass: false,
                        shrink_pass: false,
                        ..ReorgConfig::default()
                    };
                    Reorganizer::new(dbr, cfg).pass1_compact().unwrap();
                });
                let wl = WorkloadConfig {
                    readers: 2,
                    updaters: 1,
                    key_space: 3_000,
                    duration: Duration::from_millis(200),
                    dist: KeyDist::Uniform,
                    ..WorkloadConfig::default()
                };
                run_workload(&db, &wl, &stop)
            })
        })
    });
}

criterion_group!(benches, bench_point_ops, bench_mixed_during_reorg);
criterion_main!(benches);
