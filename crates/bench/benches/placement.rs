//! Free-space-map benchmarks: the §6.1 placement query (`first empty page
//! in (L, C)`) against the naive policies, on synthetic occupancy patterns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use obr_storage::{FreeSpaceMap, PageId};

fn synthetic_fsm(pages: u32, every: u32) -> FreeSpaceMap {
    let fsm = FreeSpaceMap::new_all_allocated(pages);
    let mut i = every;
    while i < pages {
        fsm.free(PageId(i));
        i += every;
    }
    fsm
}

fn bench_first_free_in(c: &mut Criterion) {
    let fsm = synthetic_fsm(65_536, 9);
    let mut l = 0u32;
    c.bench_function("fsm/first_free_in-window", |b| {
        b.iter(|| {
            l = (l + 97) % 60_000;
            black_box(fsm.first_free_in(PageId(l), PageId(l + 4_000)))
        })
    });
}

fn bench_allocate_free_cycle(c: &mut Criterion) {
    let fsm = FreeSpaceMap::new_all_free(65_536);
    c.bench_function("fsm/allocate-free-cycle", |b| {
        b.iter(|| {
            let p = fsm.allocate().unwrap();
            fsm.free(black_box(p));
        })
    });
}

fn bench_allocate_in(c: &mut Criterion) {
    let fsm = synthetic_fsm(65_536, 5);
    let mut l = 0u32;
    c.bench_function("fsm/allocate_in-and-free", |b| {
        b.iter(|| {
            l = (l + 31) % 60_000;
            if let Some(p) = fsm.allocate_in(PageId(l), PageId(l + 100)) {
                fsm.free(p);
            }
        })
    });
}

fn bench_free_pages_snapshot(c: &mut Criterion) {
    let fsm = synthetic_fsm(65_536, 7);
    c.bench_function("fsm/free_pages-snapshot", |b| {
        b.iter(|| black_box(fsm.free_pages().len()))
    });
}

criterion_group!(
    benches,
    bench_first_free_in,
    bench_allocate_free_cycle,
    bench_allocate_in,
    bench_free_pages_snapshot
);
criterion_main!(benches);
