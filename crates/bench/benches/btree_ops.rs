//! Microbenchmarks of the B+-tree substrate: point ops and range scans on
//! a bulk-loaded tree, at sparse and dense fills (the cost the paper's
//! reorganization removes shows up as the sparse/dense scan gap).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use obr_bench::harness::sparse_database;
use obr_storage::Lsn;
use obr_wal::TxnId;

fn bench_search(c: &mut Criterion) {
    let (_disk, db) = sparse_database(16_384, 20_000, 0.9, 64);
    let tree = db.tree().clone();
    let mut k = 0u64;
    c.bench_function("btree/search/dense", |b| {
        b.iter(|| {
            k = (k + 7919) % 20_000;
            black_box(tree.search(k).unwrap())
        })
    });
}

fn bench_insert(c: &mut Criterion) {
    let (_disk, db) = sparse_database(65_536, 1_000, 0.9, 64);
    let tree = db.tree().clone();
    let mut k = 1_000_000u64;
    let v = vec![0u8; 64];
    // Insert + delete per iteration keeps the tree size stable no matter
    // how many samples Criterion takes (a pure-insert loop eventually
    // exhausts the disk).
    c.bench_function("btree/insert+delete", |b| {
        b.iter(|| {
            k += 1;
            tree.insert(TxnId(1), Lsn::ZERO, k, &v).unwrap();
            black_box(tree.delete(TxnId(1), Lsn::ZERO, k).unwrap());
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let (_disk, dense) = sparse_database(32_768, 20_000, 0.9, 64);
    let (_disk2, sparse) = sparse_database(32_768, 20_000, 0.25, 64);
    c.bench_function("btree/scan1k/dense", |b| {
        b.iter(|| black_box(dense.tree().range_scan(5_000, 6_000).unwrap()))
    });
    c.bench_function("btree/scan1k/sparse", |b| {
        b.iter(|| black_box(sparse.tree().range_scan(5_000, 6_000).unwrap()))
    });
}

fn bench_bulk_load(c: &mut Criterion) {
    let records: Vec<(u64, Vec<u8>)> = (0..5_000u64).map(|k| (k, vec![0u8; 64])).collect();
    c.bench_function("btree/bulk_load/5k", |b| {
        b.iter(|| {
            let (_d, db) = sparse_database(16_384, 1, 0.9, 64);
            db.tree().bulk_load(black_box(&records), 0.9, 0.9).unwrap();
        })
    });
}

criterion_group!(
    benches,
    bench_search,
    bench_insert,
    bench_scan,
    bench_bulk_load
);
criterion_main!(benches);
