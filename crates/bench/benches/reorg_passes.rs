//! Benchmarks of the reorganization passes themselves: how long compacting,
//! ordering, and shrinking take, and the cost of a single unit.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use obr_bench::harness::sparse_database;
use obr_core::{PlacementPolicy, ReorgConfig, Reorganizer};

fn cfg(swap: bool, shrink: bool) -> ReorgConfig {
    ReorgConfig {
        swap_pass: swap,
        shrink_pass: shrink,
        ..ReorgConfig::default()
    }
}

fn bench_pass1(c: &mut Criterion) {
    c.bench_function("reorg/pass1/2k-records-f0.25", |b| {
        b.iter_batched(
            || sparse_database(16_384, 2_000, 0.25, 64),
            |(_disk, db)| {
                Reorganizer::new(Arc::clone(&db), cfg(false, false))
                    .pass1_compact()
                    .unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pass2(c: &mut Criterion) {
    c.bench_function("reorg/pass1+2/2k-records-f0.25", |b| {
        b.iter_batched(
            || sparse_database(16_384, 2_000, 0.25, 64),
            |(_disk, db)| {
                let r = Reorganizer::new(Arc::clone(&db), cfg(true, false));
                r.pass1_compact().unwrap();
                r.pass2_swap_move().unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pass3(c: &mut Criterion) {
    c.bench_function("reorg/pass3/2k-records", |b| {
        b.iter_batched(
            || {
                let (d, db) = sparse_database(16_384, 2_000, 0.25, 64);
                // Tall tree so the shrink has work.
                let recs = db.tree().collect_all().unwrap();
                db.tree().bulk_load(&recs, 0.9, 0.1).unwrap();
                (d, db)
            },
            |(_disk, db)| {
                Reorganizer::new(Arc::clone(&db), cfg(false, true))
                    .pass3_shrink()
                    .unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_placement_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorg/placement-full-run");
    for (name, p) in [
        ("heuristic", PlacementPolicy::Heuristic),
        ("in-place", PlacementPolicy::InPlaceOnly),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || sparse_database(16_384, 2_000, 0.25, 64),
                |(_disk, db)| {
                    let mut cfg = cfg(true, false);
                    cfg.placement = p;
                    let r = Reorganizer::new(Arc::clone(&db), cfg);
                    r.pass1_compact().unwrap();
                    r.pass2_swap_move().unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pass1,
    bench_pass2,
    bench_pass3,
    bench_placement_policies
);

// Appended ablations (DESIGN.md "design choices called out for ablation").

fn bench_stable_interval_ablation(c: &mut criterion::Criterion) {
    // §7.3 stable points trade force-write I/O for restart position: a
    // smaller interval means more flushes during pass 3.
    let mut group = c.benchmark_group("reorg/pass3-stable-interval");
    for interval in [2usize, 5, 20] {
        group.bench_function(format!("every-{interval}-bases"), |b| {
            b.iter_batched(
                || {
                    let (d, db) = sparse_database(16_384, 4_000, 0.9, 64);
                    let recs = db.tree().collect_all().unwrap();
                    db.tree().bulk_load(&recs, 0.9, 0.05).unwrap();
                    (d, db)
                },
                |(_disk, db)| {
                    let cfg = ReorgConfig {
                        swap_pass: false,
                        stable_interval: interval,
                        ..ReorgConfig::default()
                    };
                    Reorganizer::new(Arc::clone(&db), cfg)
                        .pass3_shrink()
                        .unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_target_fill_ablation(c: &mut criterion::Criterion) {
    // Unit size d ≈ f2/f1: higher targets mean larger units (fewer, longer
    // lock holds) — the granularity trade-off of §6.
    let mut group = c.benchmark_group("reorg/pass1-target-fill");
    for f2 in [0.7f64, 0.9, 1.0] {
        group.bench_function(format!("f2={f2}"), |b| {
            b.iter_batched(
                || sparse_database(16_384, 2_000, 0.2, 64),
                |(_disk, db)| {
                    let cfg = ReorgConfig {
                        target_fill: f2,
                        swap_pass: false,
                        shrink_pass: false,
                        ..ReorgConfig::default()
                    };
                    Reorganizer::new(Arc::clone(&db), cfg)
                        .pass1_compact()
                        .unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_stable_interval_ablation,
    bench_target_fill_ablation
);
criterion_main!(benches, ablations);
