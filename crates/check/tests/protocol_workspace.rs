//! The interprocedural protocol checker must hold over the live
//! workspace — the same scan `obr-cli check --protocol` and CI run —
//! and, crucially, must still have teeth: sabotaging the real sources
//! (dropping an audit comment, un-vetting a manifest edge, downgrading
//! a memory ordering) must produce the corresponding finding with a
//! path-level diagnostic.

use obr_check::lockorder::parse_manifest;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

/// The real workspace sources as owned `(path, text)` pairs.
fn sources() -> Vec<(String, String)> {
    obr_check::scan_files(workspace_root()).expect("workspace scan")
}

fn as_refs(files: &[(String, String)]) -> Vec<(&str, &str)> {
    files
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect()
}

fn manifest_text() -> String {
    std::fs::read_to_string(workspace_root().join("check").join("lockorder.toml"))
        .expect("manifest readable")
}

#[test]
fn workspace_is_protocol_clean() {
    let report = obr_check::check_protocol(workspace_root()).expect("workspace scan");
    assert!(report.is_clean(), "protocol findings:\n{report}");
}

/// R1 teeth: deleting the `// protocol: no-wal` audit above recovery's
/// `redo_one` must resurface it as an unlogged mutation path, with the
/// offending call chain in the diagnostic.
#[test]
fn sabotage_dropping_no_wal_audit_is_caught() {
    let mut files = sources();
    let rec = files
        .iter_mut()
        .find(|(p, _)| p.ends_with("crates/core/src/recovery.rs"))
        .expect("recovery.rs scanned");
    let before = rec.1.lines().count();
    rec.1 = rec
        .1
        .lines()
        .filter(|l| !l.trim_start().starts_with("// protocol: no-wal"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        rec.1.lines().count() < before,
        "audit line was present and removed"
    );

    let m = parse_manifest(&manifest_text()).expect("manifest parses");
    let refs = as_refs(&files);
    let report = obr_check::check_sources(&refs, Some(&m));
    let f = report
        .findings
        .iter()
        .find(|f| f.code == "wal-unlogged-path" && f.detail.contains("redo_one"))
        .unwrap_or_else(|| panic!("stripped audit must be flagged at redo_one:\n{report}"));
    // The finding is reported at the entry point (replica ingest), with
    // the chain running down through redo_one to the leaf primitive.
    assert!(
        f.detail.contains(".rs:") && f.detail.contains("redo_one -> "),
        "diagnostic carries file and call chain through redo_one: {f:?}"
    );
}

/// R2 teeth: removing the replica-progress edges from the manifest must
/// flag the replica's hold-progress-across-redo nesting as undeclared.
#[test]
fn sabotage_unvetting_manifest_edge_is_caught() {
    let files = sources();
    let stripped: String = manifest_text()
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"replica.progress\" = ["))
        .collect::<Vec<_>>()
        .join("\n");
    let m = parse_manifest(&stripped).expect("stripped manifest still parses");
    let refs = as_refs(&files);
    let report = obr_check::check_sources(&refs, Some(&m));
    let f = report
        .findings
        .iter()
        .find(|f| f.code == "latch-undeclared-edge" && f.detail.contains("replica.progress"))
        .unwrap_or_else(|| panic!("un-vetted replica edge must be flagged:\n{report}"));
    assert!(
        f.detail.contains("replica.rs"),
        "diagnostic names the file the edge is created in: {f:?}"
    );
}

/// R3 teeth: downgrading the B+-tree epoch's seqlock read from Acquire
/// to Relaxed (the PR 6 lost-write shape) must be flagged as a
/// relaxed consume of a release-published field.
#[test]
fn sabotage_relaxed_epoch_read_is_caught() {
    let mut files = sources();
    let tree = files
        .iter_mut()
        .find(|(p, _)| p.ends_with("crates/btree/src/tree.rs"))
        .expect("tree.rs scanned");
    let needle = "self.epoch.load(Ordering::Acquire)";
    assert!(tree.1.contains(needle), "epoch read present");
    tree.1 = tree
        .1
        .replacen(needle, "self.epoch.load(Ordering::Relaxed)", 1);

    let m = parse_manifest(&manifest_text()).expect("manifest parses");
    let refs = as_refs(&files);
    let report = obr_check::check_sources(&refs, Some(&m));
    let f = report
        .findings
        .iter()
        .find(|f| f.code == "atomic-relaxed-consume" && f.detail.contains("epoch"))
        .unwrap_or_else(|| panic!("relaxed epoch consume must be flagged:\n{report}"));
    assert!(
        f.detail.contains("tree.rs"),
        "diagnostic names the load site's file: {f:?}"
    );
}
