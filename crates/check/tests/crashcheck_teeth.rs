//! Teeth test: prove the crash-consistency checker actually detects a
//! Forward Recovery violation. `OBR_BUG_SKIP_SIDE_RESTORE=1` makes
//! recovery skip rebuilding the side file, so a resumed pass 3 misses its
//! catch-up work — the checker must report errors, not pass vacuously.
//!
//! This lives in its own test binary because the environment variable is
//! process-global and must not leak into the clean-run tests.

use obr_check::{run_crash_check, CrashCheckOptions};

#[test]
fn sabotaged_side_restore_is_caught() {
    // Safe in edition 2021; this binary is single-threaded in its use of
    // the variable (one test).
    std::env::set_var("OBR_BUG_SKIP_SIDE_RESTORE", "1");
    let out = run_crash_check(&CrashCheckOptions::default());
    assert!(
        out.report.has_errors(),
        "checker failed to detect the injected side-file restore bug:\n{}",
        out.report
    );
    // The violation must surface as a broken contract on a recovered or
    // resumed state, not as a checker-internal error.
    assert!(
        out.report.findings.iter().any(|f| {
            f.code == "state-divergence"
                || f.code == "fsck-after-recovery"
                || f.code == "resume-failed"
                || f.code == "panic-during-verification"
        }),
        "unexpected finding mix:\n{}",
        out.report
    );
}
