//! The crash-consistency checker's own acceptance tests: the bundled
//! workloads must enumerate cleanly in exhaustive mode, budget sampling
//! must be deterministic, and coverage counters must prove the interesting
//! paths (forward completion, pass-3 resume, side-file restore) ran.

use obr_check::{run_crash_check, CrashCheckOptions};

#[test]
fn exhaustive_enumeration_finds_no_violations() {
    let out = run_crash_check(&CrashCheckOptions::default());
    assert!(
        !out.report.has_errors(),
        "Forward Recovery violations:\n{}",
        out.report
    );
    // Exhaustive mode must visit every enumerated state.
    assert_eq!(out.stats.states_checked, out.stats.crash_states);
    assert!(out.stats.crash_states > 250, "{:?}", out.stats);
    assert!(out.stats.torn_tails_checked > 0, "{:?}", out.stats);
    // The enumeration must have actually exercised the §5.1 paths: units
    // completed forward, pass 3 resumed through side-file catch-up.
    assert!(out.stats.forward_units_completed > 0, "{:?}", out.stats);
    assert!(out.stats.pass3_resumes > 0, "{:?}", out.stats);
    assert!(out.stats.side_entries_restored > 0, "{:?}", out.stats);
}

#[test]
fn budget_sampling_is_deterministic() {
    let opts = CrashCheckOptions {
        budget: Some(60),
        seed: 7,
        torn_tail_samples: 8,
        ..CrashCheckOptions::default()
    };
    let a = run_crash_check(&opts);
    let b = run_crash_check(&opts);
    assert_eq!(a.stats.states_checked, 60);
    assert_eq!(b.stats.states_checked, 60);
    assert_eq!(a.report.to_string(), b.report.to_string());
    assert!(!a.report.has_errors(), "{}", a.report);
}
