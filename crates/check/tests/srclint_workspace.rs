//! The concurrency source lint must hold over the live workspace: this
//! is the same scan `obr-cli check --lint` and CI run.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let mut report = obr_check::lint_sources(root);
    report.merge(obr_check::check_whitelist(root));
    assert!(report.is_clean(), "srclint findings:\n{report}");
}
