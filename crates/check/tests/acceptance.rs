//! End-to-end acceptance tests for the checkers: a healthy database passes
//! every check, and seeded corruption (flipped sibling pointer, reordered
//! key, torn or spliced log) is caught with a finding naming the damaged
//! page or LSN.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use obr_btree::SidePointerMode;
use obr_check::{fsck_file, lint_wal_dir, lint_wal_file, FsckOptions, WalLintOptions};
use obr_core::{Database, ReorgConfig, Reorganizer};
use obr_storage::{InMemoryDisk, PageType, PAGE_SIZE};
use obr_txn::Session;

/// A scratch directory removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("obr-check-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Build a durable database, load it, punch deletion holes, reorganize,
/// flush, and drop it — leaving `pages.db` and `wal.log` behind.
fn build_reorganized_db(dir: &Path) {
    let db = Database::create_durable(dir, 2048, 512, SidePointerMode::TwoWay).unwrap();
    let session = Session::new(Arc::clone(&db));
    for k in 0..600u64 {
        session.insert(k, &[0xab; 24]).unwrap();
    }
    // Delete most of each neighbourhood so Pass 1 has sparseness to harvest.
    for k in 0..600u64 {
        if k % 4 != 0 {
            session.delete(k).unwrap();
        }
    }
    let reorg = Reorganizer::new(Arc::clone(&db), ReorgConfig::default());
    reorg.run().unwrap();
    db.checkpoint().unwrap();
    db.pool().flush_all().unwrap();
}

#[test]
fn healthy_database_passes_all_checks() {
    let scratch = Scratch::new("healthy");
    build_reorganized_db(scratch.path());

    let fsck = fsck_file(&scratch.path().join("pages.db"), &FsckOptions::default()).unwrap();
    assert!(fsck.report.is_clean(), "{}", fsck.report);
    assert!(fsck.stats.leaf_pages > 0, "expected a populated tree");

    let wal = lint_wal_dir(&scratch.path().join("wal"), &WalLintOptions::default()).unwrap();
    assert!(wal.is_clean(), "{wal}");
}

#[test]
fn live_database_check_is_clean() {
    let disk = Arc::new(InMemoryDisk::new(2048));
    let db = Database::create(disk, 512, SidePointerMode::TwoWay).unwrap();
    let session = Session::new(Arc::clone(&db));
    for k in 0..400u64 {
        session.insert(k, &[0x5a; 16]).unwrap();
    }
    for k in 0..400u64 {
        if k % 3 != 0 {
            session.delete(k).unwrap();
        }
    }
    Reorganizer::new(Arc::clone(&db), ReorgConfig::default())
        .run()
        .unwrap();
    let report = obr_check::check_database(&db);
    assert!(report.is_clean(), "{report}");
}

/// Find the page indices of all leaf pages in a raw page file.
fn leaf_pages(bytes: &[u8]) -> Vec<usize> {
    (0..bytes.len() / PAGE_SIZE)
        .filter(|&i| {
            let page: &[u8; PAGE_SIZE] = bytes[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]
                .try_into()
                .unwrap();
            let p = obr_storage::Page::from_bytes(page);
            p.page_type() == Some(PageType::Leaf) && p.slot_count() > 0
        })
        .collect()
}

#[test]
fn flipped_sibling_pointer_is_caught_in_the_file() {
    let scratch = Scratch::new("sibling");
    build_reorganized_db(scratch.path());
    let pages_db = scratch.path().join("pages.db");
    let mut bytes = fs::read(&pages_db).unwrap();

    let leaves = leaf_pages(&bytes);
    assert!(leaves.len() >= 2, "need two leaves to corrupt a chain");
    // The right-sibling field lives in the page header; point the first
    // leaf's right sibling at itself.
    let victim = leaves[0];
    let base = victim * PAGE_SIZE;
    let page_bytes: &[u8; PAGE_SIZE] = bytes[base..base + PAGE_SIZE].try_into().unwrap();
    let mut page = obr_storage::Page::from_bytes(page_bytes);
    page.set_right_sibling(obr_storage::PageId(victim as u32));
    bytes[base..base + PAGE_SIZE].copy_from_slice(page.bytes());
    fs::write(&pages_db, &bytes).unwrap();

    let fsck = fsck_file(&pages_db, &FsckOptions::default()).unwrap();
    assert!(!fsck.report.is_clean(), "corruption went unnoticed");
    assert!(
        fsck.report
            .findings
            .iter()
            .any(|f| f.page == Some(obr_storage::PageId(victim as u32))
                || f.detail.contains(&format!("{victim}"))),
        "no finding names page {victim}: {}",
        fsck.report
    );
}

#[test]
fn out_of_order_key_is_caught_in_the_file() {
    let scratch = Scratch::new("keyorder");
    build_reorganized_db(scratch.path());
    let pages_db = scratch.path().join("pages.db");
    let mut bytes = fs::read(&pages_db).unwrap();

    let leaves = leaf_pages(&bytes);
    let victim = *leaves
        .iter()
        .find(|&&i| {
            let page: &[u8; PAGE_SIZE] = bytes[i * PAGE_SIZE..(i + 1) * PAGE_SIZE]
                .try_into()
                .unwrap();
            obr_storage::Page::from_bytes(page).slot_count() >= 2
        })
        .expect("need a leaf with two records");
    // Leaf records are laid out [key: u64 LE][len: u32][value] back to
    // back from the body start; overwrite the first key with u64::MAX so
    // it sorts after every successor.
    let body = victim * PAGE_SIZE + obr_storage::HEADER_SIZE;
    bytes[body..body + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    fs::write(&pages_db, &bytes).unwrap();

    let fsck = fsck_file(&pages_db, &FsckOptions::default()).unwrap();
    assert!(!fsck.report.is_clean(), "corruption went unnoticed");
    assert!(
        fsck.report
            .findings
            .iter()
            .any(|f| f.page == Some(obr_storage::PageId(victim as u32))),
        "no finding names page {victim}: {}",
        fsck.report
    );
}

/// The active (highest-first-LSN) segment of a segmented WAL directory.
fn active_segment(dir: &Path) -> PathBuf {
    obr_wal::segment::list_segments(&dir.join("wal"))
        .unwrap()
        .pop()
        .expect("the database leaves at least one segment")
        .1
}

/// Split a serialized log into `[len][frame]` chunks (offset, frame bytes).
fn frames(bytes: &[u8]) -> Vec<(usize, Vec<u8>)> {
    let mut out = Vec::new();
    let mut off = 0;
    while off + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + 4 + len > bytes.len() {
            break;
        }
        out.push((off, bytes[off..off + 4 + len].to_vec()));
        off += 4 + len;
    }
    out
}

#[test]
fn truncated_wal_is_caught_naming_the_tear() {
    let scratch = Scratch::new("torn");
    build_reorganized_db(scratch.path());
    let seg = active_segment(scratch.path());
    let first_lsn =
        obr_wal::segment::parse_segment_name(seg.file_name().unwrap().to_str().unwrap()).unwrap();
    let bytes = fs::read(&seg).unwrap();
    let parsed = frames(&bytes);
    assert!(parsed.len() > 2, "log too short to truncate meaningfully");
    // Cut inside the last frame: keep its header plus one payload byte.
    let (last_off, _) = parsed[parsed.len() - 1];
    fs::write(&seg, &bytes[..last_off + 5]).unwrap();

    // Dir mode: the tear is in the active segment, so it lints as a
    // crash-shaped torn frame naming the last intact LSN.
    let last_intact = obr_storage::Lsn(first_lsn.0 + parsed.len() as u64 - 2);
    let report = lint_wal_dir(&scratch.path().join("wal"), &WalLintOptions::default()).unwrap();
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "torn-frame" && f.lsn == Some(last_intact)),
        "no torn-frame finding naming LSN {last_intact}: {report}"
    );

    // File mode still works on a bare segment file.
    let file_report = lint_wal_file(&seg, &WalLintOptions::default()).unwrap();
    assert!(
        file_report.findings.iter().any(|f| f.code == "torn-frame"),
        "{file_report}"
    );
}

#[test]
fn reordered_wal_is_caught_naming_the_lsn() {
    let scratch = Scratch::new("reorder");
    build_reorganized_db(scratch.path());
    let wal_log = active_segment(scratch.path());
    let first_lsn =
        obr_wal::segment::parse_segment_name(wal_log.file_name().unwrap().to_str().unwrap())
            .unwrap();
    let bytes = fs::read(&wal_log).unwrap();
    let parsed = frames(&bytes);

    // Swap two adjacent frames inside a reorganization unit's chain.
    let is_chained = |frame: &[u8]| {
        matches!(
            obr_wal::LogRecord::decode(&frame[4..]),
            Ok(obr_wal::LogRecord::ReorgMove { .. }
                | obr_wal::LogRecord::ReorgModify { .. }
                | obr_wal::LogRecord::ReorgSidePtr { .. })
        )
    };
    let i = (0..parsed.len() - 1)
        .find(|&i| is_chained(&parsed[i].1) && is_chained(&parsed[i + 1].1))
        .expect("reorganization left no adjacent chained records");

    let mut spliced = Vec::with_capacity(bytes.len());
    for (j, (_, frame)) in parsed.iter().enumerate() {
        let src = if j == i {
            &parsed[i + 1].1
        } else if j == i + 1 {
            &parsed[i].1
        } else {
            frame
        };
        spliced.extend_from_slice(src);
    }
    fs::write(&wal_log, &spliced).unwrap();

    let report = lint_wal_dir(&scratch.path().join("wal"), &WalLintOptions::default()).unwrap();
    let lsn = obr_storage::Lsn(first_lsn.0 + i as u64);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "broken-prev-chain" && f.lsn == Some(lsn)),
        "no broken-prev-chain finding naming LSN {lsn}: {report}"
    );
}
