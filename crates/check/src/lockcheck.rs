//! Lock-protocol model checker.
//!
//! Three independent proofs, none of which runs a workload:
//!
//! 1. **Table-1 conformance** — [`TABLE1`] is a declarative transcription
//!    of the paper's compatibility matrix (§4, Table 1), including which
//!    cells the paper leaves blank. Every `granted x requested` pair in
//!    `LockMode::GRANTABLE x LockMode::ALL` is compared against
//!    `LockMode::compatible_with` and `LockMode::compatibility_is_defined`;
//!    any divergence is a finding (and the `table1_matches_implementation`
//!    test turns it into a build failure).
//! 2. **Semantic properties** — compatibility is symmetric where defined,
//!    `RS` is instant-duration and never grantable, and a request hitting
//!    a held `RX` is *forgone* (rejected immediately, never queued),
//!    verified against a real [`LockManager`] instance.
//! 3. **Deadlock-freedom of the acquisition order** — the lock sequences
//!    of the reorganizer's unit protocols (§4.1.1), the user-transaction
//!    protocols (§4.1.2/§4.1.3), and the Pass-3 switch (§7.4) are encoded
//!    declaratively in [`protocol_sequences`]; the checker builds the
//!    resource-class acquisition-order graph over all *blocking*
//!    acquisitions and proves it acyclic, so no set of protocol-following
//!    requesters can wait on each other in a cycle.

use obr_lock::{LockError, LockManager, LockMode, OwnerId, ResourceId};

use crate::report::Report;

/// Name this checker stamps on findings.
const CHECKER: &str = "locks";

/// One cell of the paper's Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cell {
    /// The pair is compatible.
    Yes,
    /// The pair conflicts.
    No,
    /// The paper leaves the cell blank: the two modes are never requested
    /// on the same resource by different requesters.
    Blank,
}

use Cell::{Blank, No, Yes};

/// The paper's Table 1, transcribed declaratively. Rows are the *granted*
/// mode in [`LockMode::GRANTABLE`] order (IS, IX, S, X, R, RX); columns are
/// the *requested* mode in [`LockMode::ALL`] order (IS, IX, S, X, R, RX,
/// RS). This is deliberately independent from
/// [`LockMode::compatible_with`]'s match arms so that a drift in either is
/// caught.
pub const TABLE1: [[Cell; 7]; 6] = [
    //         IS     IX     S      X      R      RX     RS
    /* IS */
    [Yes, Yes, Yes, No, Blank, No, Blank],
    /* IX */ [Yes, Yes, No, No, Blank, No, Blank],
    /* S  */ [Yes, No, Yes, No, Yes, No, Yes],
    /* X  */ [No, No, No, No, No, No, No],
    /* R  */ [Blank, Blank, Yes, No, Yes, No, No],
    /* RX */ [No, No, No, No, Blank, No, Blank],
];

/// Compare the implementation's compatibility matrix against [`TABLE1`].
pub fn check_compat_matrix() -> Report {
    let mut report = Report::new();
    for (gi, &granted) in LockMode::GRANTABLE.iter().enumerate() {
        for (ri, &requested) in LockMode::ALL.iter().enumerate() {
            let cell = TABLE1[gi][ri];
            let defined = granted.compatibility_is_defined(requested);
            let compatible = granted.compatible_with(requested);
            match cell {
                Blank => {
                    if defined {
                        report.error(
                            CHECKER,
                            "table1-blank-cell",
                            None,
                            None,
                            format!(
                                "({granted:?} granted, {requested:?} requested) is blank \
                                 in Table 1 but compatibility_is_defined returns true"
                            ),
                        );
                    }
                }
                Yes | No => {
                    if !defined {
                        report.error(
                            CHECKER,
                            "table1-defined-cell",
                            None,
                            None,
                            format!(
                                "({granted:?} granted, {requested:?} requested) is filled \
                                 in Table 1 but compatibility_is_defined returns false"
                            ),
                        );
                    }
                    let expect = cell == Yes;
                    if compatible != expect {
                        report.error(
                            CHECKER,
                            "table1-divergence",
                            None,
                            None,
                            format!(
                                "compatible_with({granted:?}, {requested:?}) = {compatible}, \
                                 Table 1 says {expect}"
                            ),
                        );
                    }
                }
            }
        }
    }
    // Symmetry where both orders are defined between grantable modes.
    for &a in &LockMode::GRANTABLE {
        for &b in &LockMode::GRANTABLE {
            if a.compatibility_is_defined(b) && b.compatibility_is_defined(a) {
                let ab = a.compatible_with(b);
                let ba = b.compatible_with(a);
                if ab != ba {
                    report.error(
                        CHECKER,
                        "compat-asymmetry",
                        None,
                        None,
                        format!(
                            "compatible_with({a:?}, {b:?}) = {ab} but \
                             compatible_with({b:?}, {a:?}) = {ba}"
                        ),
                    );
                }
            }
        }
    }
    if LockMode::GRANTABLE.contains(&LockMode::RS) {
        report.error(
            CHECKER,
            "rs-grantable",
            None,
            None,
            "RS is instant-duration and must never appear in GRANTABLE",
        );
    }
    report.note(format!(
        "compared {} Table-1 cells against LockMode::compatible_with",
        LockMode::GRANTABLE.len() * LockMode::ALL.len()
    ));
    report
}

/// Verify the RX *forgone* conflict action and RS instant-duration
/// semantics against a live [`LockManager`].
pub fn check_conflict_actions() -> Report {
    let mut report = Report::new();
    let m = LockManager::new();
    let reorg = OwnerId(1);
    let user = OwnerId(2);
    let leaf = ResourceId::Page(7);
    m.register_reorganizer(reorg);
    if m.lock(reorg, leaf, LockMode::RX).is_err() {
        report.error(
            CHECKER,
            "rx-grant",
            None,
            None,
            "RX grant on a free page failed",
        );
        return report;
    }
    // A conflicting request must be forgone: an immediate error, no queue.
    match m.lock(user, leaf, LockMode::S) {
        Err(LockError::ConflictsWithReorg) => {}
        other => {
            report.error(
                CHECKER,
                "rx-not-forgone",
                None,
                None,
                format!(
                    "S request against a held RX must be forgone with \
                     ConflictsWithReorg, got {other:?}"
                ),
            );
        }
    }
    // Metric-value assertions are meaningless when the observability layer
    // is compiled to no-ops; the behavioural check above still ran.
    if !obr_obs::is_noop() && m.stats().forgone != 1 {
        report.error(
            CHECKER,
            "forgone-uncounted",
            None,
            None,
            format!(
                "expected 1 forgone request, stats say {}",
                m.stats().forgone
            ),
        );
    }
    if m.holders(leaf).iter().any(|&(o, _)| o == user) {
        report.error(
            CHECKER,
            "forgone-queued",
            None,
            None,
            "a forgone requester must not be queued or granted on the resource",
        );
    }
    m.release_all(reorg);
    // RS is instant-duration: it passes through plain readers and leaves
    // nothing held.
    let base = ResourceId::Page(100);
    m.lock(user, base, LockMode::S).unwrap_or(());
    let blocked = OwnerId(3);
    if m.lock_instant(blocked, base, LockMode::RS).is_err() {
        report.error(
            CHECKER,
            "rs-blocked-by-reader",
            None,
            None,
            "instant RS must pass through plain S readers (Table 1: S/RS compatible)",
        );
    }
    if m.held_mode(blocked, base).is_some() {
        report.error(
            CHECKER,
            "rs-retained",
            None,
            None,
            "instant-duration RS must not remain held after the grant",
        );
    }
    m.release_all(user);
    m.release_all(blocked);
    m.unregister_reorganizer(reorg);
    report.note("verified RX forgone action and RS instant duration on a live manager");
    report
}

/// The resource classes the paper's protocols lock, coarsest first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResClass {
    /// The tree lock (one per tree generation).
    Tree,
    /// The Pass-3 side file.
    SideFile,
    /// Base pages (parents of leaves).
    Base,
    /// Leaf pages.
    Leaf,
    /// Individual record keys.
    Key,
}

impl ResClass {
    const ALL: [ResClass; 5] = [
        ResClass::Tree,
        ResClass::SideFile,
        ResClass::Base,
        ResClass::Leaf,
        ResClass::Key,
    ];

    /// Lock modes that may legally appear on this resource class.
    fn allowed_modes(self) -> &'static [LockMode] {
        use LockMode::*;
        match self {
            ResClass::Tree => &[IS, IX, S, X],
            ResClass::SideFile => &[IS, IX, X],
            ResClass::Base => &[S, R, X, RS],
            ResClass::Leaf => &[IS, IX, S, X, RX],
            ResClass::Key => &[S, X],
        }
    }
}

/// One lock acquisition inside a protocol sequence.
#[derive(Clone, Copy, Debug)]
pub struct Acquisition {
    /// What is locked.
    pub class: ResClass,
    /// The requested mode.
    pub mode: LockMode,
    /// False for `try_lock`/instant acquisitions, which never wait and so
    /// contribute no wait-for edges.
    pub blocking: bool,
}

const fn acq(class: ResClass, mode: LockMode) -> Acquisition {
    Acquisition {
        class,
        mode,
        blocking: true,
    }
}

const fn try_acq(class: ResClass, mode: LockMode) -> Acquisition {
    Acquisition {
        class,
        mode,
        blocking: false,
    }
}

/// A named lock-acquisition sequence whose locks are held simultaneously,
/// in acquisition order.
#[derive(Clone, Copy, Debug)]
pub struct LockSequence {
    /// Where the sequence comes from (protocol section in the paper).
    pub name: &'static str,
    /// Acquisitions in program order.
    pub steps: &'static [Acquisition],
}

/// The lock sequences of every protocol in the system, transcribed from
/// the reorganizer (`obr_core::reorg`), the Pass-3 switch
/// (`obr_core::pass3`), and the transaction layer (`obr_txn::session`).
/// Each sequence lists only locks held *simultaneously*: the Pass-3 switch
/// releases the side-file X before taking the old tree lock, so those are
/// two sequences — which is exactly what keeps the graph acyclic.
pub fn protocol_sequences() -> &'static [LockSequence] {
    use LockMode::*;
    use ResClass::*;
    const USER_TXN: &[Acquisition] = &[
        acq(Tree, IX),
        acq(Base, S),
        acq(Leaf, IX),
        acq(Key, X),
        // During Pass 3 updaters append to the side file under IX, but via
        // try_lock with an instant-duration fallback: never a waiter.
        try_acq(SideFile, IX),
    ];
    const PASS1_UNIT: &[Acquisition] = &[
        acq(Tree, IX),
        acq(Base, S),
        acq(Base, R),
        acq(Leaf, RX), // the unit's leaves (and the dest page)
        acq(Leaf, X),  // side-pointer chain neighbours under other parents
        acq(Base, X),  // upgrade for the short MODIFY
    ];
    const PASS2_MOVE: &[Acquisition] = &[
        acq(Tree, IX),
        acq(Base, S),
        acq(Base, R),
        acq(Leaf, RX),
        acq(Base, X),
    ];
    const PASS2_SWAP: &[Acquisition] = &[
        acq(Tree, IX),
        acq(Base, S),
        acq(Base, R),
        acq(Leaf, RX),
        acq(Leaf, X), // chain neighbours of both swapped leaves
        acq(Base, X),
    ];
    const PASS3_SCAN: &[Acquisition] = &[acq(Base, S)];
    const PASS3_SWITCH_GATE: &[Acquisition] = &[acq(SideFile, X)];
    const PASS3_DRAIN: &[Acquisition] = &[acq(Tree, X)];
    const SEQUENCES: &[LockSequence] = &[
        LockSequence {
            name: "user transaction (§4.1.2/§4.1.3)",
            steps: USER_TXN,
        },
        LockSequence {
            name: "pass-1 compaction unit (§4.1.1)",
            steps: PASS1_UNIT,
        },
        LockSequence {
            name: "pass-2 move unit (§6)",
            steps: PASS2_MOVE,
        },
        LockSequence {
            name: "pass-2 swap unit (§6)",
            steps: PASS2_SWAP,
        },
        LockSequence {
            name: "pass-3 base scan (§7.1)",
            steps: PASS3_SCAN,
        },
        LockSequence {
            name: "pass-3 switch gate (§7.4)",
            steps: PASS3_SWITCH_GATE,
        },
        LockSequence {
            name: "pass-3 old-tree drain (§7.4)",
            steps: PASS3_DRAIN,
        },
    ];
    SEQUENCES
}

/// Build the acquisition-order graph over resource classes from every
/// blocking acquisition and prove it acyclic; also check that each
/// sequence only uses modes legal for the class, and that the
/// reorganizer's RX acquisitions are preceded by R on a base page (the
/// §4.1.1 prerequisite).
pub fn check_acquisition_order() -> Report {
    let mut report = Report::new();
    let idx = |c: ResClass| ResClass::ALL.iter().position(|&x| x == c).unwrap();
    let n = ResClass::ALL.len();
    let mut edges = vec![[false; 8]; n]; // edges[a][b]: a acquired before b
    let mut upgrades = 0u32;
    for seq in protocol_sequences() {
        let mut held: Vec<ResClass> = Vec::new();
        let mut has_base_r = false;
        for step in seq.steps {
            if !step.class.allowed_modes().contains(&step.mode) {
                report.error(
                    CHECKER,
                    "mode-class-mismatch",
                    None,
                    None,
                    format!(
                        "{}: mode {:?} is never used on {:?} resources",
                        seq.name, step.mode, step.class
                    ),
                );
            }
            if step.class == ResClass::Base && step.mode == LockMode::R {
                has_base_r = true;
            }
            if step.class == ResClass::Leaf && step.mode == LockMode::RX && !has_base_r {
                report.error(
                    CHECKER,
                    "rx-before-r",
                    None,
                    None,
                    format!(
                        "{}: RX on a leaf before R on its base page violates §4.1.1",
                        seq.name
                    ),
                );
            }
            if held.contains(&step.class) {
                // An in-place upgrade (e.g. the base page's S+R -> X at the
                // end of a unit) waits on the upgraded resource itself, not
                // on a lower class; deadlock through an upgrade is resolved
                // by always victimizing the reorganizer (§4.2), so it
                // contributes no acquisition-order edge.
                upgrades += 1;
            } else {
                if step.blocking {
                    for &h in &held {
                        edges[idx(h)][idx(step.class)] = true;
                    }
                }
                held.push(step.class);
            }
        }
    }
    // Kahn's algorithm: the class graph must topologically sort.
    let mut indeg = vec![0usize; n];
    for row in edges.iter().take(n) {
        for (b, deg) in indeg.iter_mut().enumerate() {
            if row[b] {
                *deg += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut sorted = 0;
    let mut order: Vec<&'static str> = Vec::new();
    while let Some(a) = queue.pop() {
        sorted += 1;
        order.push(class_name(ResClass::ALL[a]));
        for b in 0..n {
            if edges[a][b] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    queue.push(b);
                }
            }
        }
    }
    if sorted != n {
        let cyclic: Vec<&str> = (0..n)
            .filter(|&i| indeg[i] > 0)
            .map(|i| class_name(ResClass::ALL[i]))
            .collect();
        report.error(
            CHECKER,
            "acquisition-cycle",
            None,
            None,
            format!(
                "the acquisition-order graph has a cycle through {{{}}}: two \
                 protocol-following requesters could deadlock",
                cyclic.join(", ")
            ),
        );
    } else {
        report.note(format!(
            "acquisition-order graph is acyclic over {} sequences, {} in-place \
             upgrades excluded (topological witness: {})",
            protocol_sequences().len(),
            upgrades,
            order.join(" -> ")
        ));
    }
    report
}

fn class_name(c: ResClass) -> &'static str {
    match c {
        ResClass::Tree => "Tree",
        ResClass::SideFile => "SideFile",
        ResClass::Base => "Base",
        ResClass::Leaf => "Leaf",
        ResClass::Key => "Key",
    }
}

/// Run every lock-protocol check.
pub fn check_lock_protocol() -> Report {
    let mut report = check_compat_matrix();
    report.merge(check_conflict_actions());
    report.merge(check_acquisition_order());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The build-breaking check: if `LockMode::compatible_with` (or the
    /// defined-cell predicate) ever diverges from the declarative Table 1,
    /// this test — and therefore CI — fails.
    #[test]
    fn table1_matches_implementation() {
        let r = check_compat_matrix();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn conflict_actions_hold() {
        let r = check_conflict_actions();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn acquisition_order_is_acyclic() {
        let r = check_acquisition_order();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn a_cycle_would_be_reported() {
        // Sanity-check the cycle detector itself with a tampered graph:
        // pretend a protocol takes Key before Tree while another takes
        // Tree before Key.
        // (The public API only exposes the real sequences, so exercise the
        // detector by checking the real graph is order-sensitive: Tree
        // precedes Base in every sequence.)
        let r = check_acquisition_order();
        let witness = r
            .info
            .iter()
            .find(|l| l.contains("topological witness"))
            .expect("witness line");
        let tree_pos = witness.find("Tree").expect("Tree in witness");
        let base_pos = witness.find("Base").expect("Base in witness");
        assert!(tree_pos < base_pos, "{witness}");
    }

    #[test]
    fn full_protocol_check_is_clean() {
        let r = check_lock_protocol();
        assert!(r.is_clean(), "{r}");
    }
}
