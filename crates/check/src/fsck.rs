//! Tree fsck: walk a page file (or a live buffer pool) and verify the
//! on-disk B+-tree invariants without running a workload.
//!
//! Checked invariant families:
//!
//! * **Key ordering** — strictly sorted keys inside every leaf and internal
//!   node, and strictly increasing across the in-order leaf sequence.
//! * **Side-pointer chain** — the right-sibling chain visits exactly the
//!   in-order leaves; two-way chains also have consistent back pointers
//!   (the structure Pass 2 relies on for sequential range scans, §6).
//! * **Parent/child agreement** — every child's keys lie inside the key
//!   range its parent's routing entry grants it (child 0 also absorbs keys
//!   clamped below its entry key, matching the router's semantics).
//! * **Free-space-map agreement** — on a live database, every reachable
//!   page must be allocated in the FSM ([`fsck_db`] only; a raw page file
//!   carries no FSM).
//! * **Fill accounting** — per-base-page fill fractions, the sparseness
//!   metric Pass 1 keys off (§6.1), recomputed from the leaves and checked
//!   for overflow; the figures are returned in [`FsckStats`].
//!
//! The walk assumes a quiescent tree (no concurrent SMOs); run it on a
//! closed page file, or on a live database between operations.

use std::collections::BTreeSet;
use std::io::Read;
use std::path::Path;

use obr_btree::leaf::LEAF_BODY;
use obr_btree::{LeafRef, LeafView, MetaRef, NodeRef, NodeView};
use obr_core::Database;
use obr_storage::{BufferPool, Page, PageId, PageType, PAGE_SIZE};

use crate::report::Report;

/// Name this checker stamps on findings.
const CHECKER: &str = "fsck";

/// Read-only access to pages by id, abstracting over a raw file and a live
/// buffer pool.
pub trait PageSource {
    /// A copy of page `id`, or `None` when it cannot be read.
    fn page(&self, id: PageId) -> Option<Page>;
}

/// A page file loaded into memory (e.g. `<dir>/pages.db`).
pub struct FileSource {
    pages: Vec<Page>,
    /// Bytes past the last whole page, if the file length was not a
    /// multiple of [`PAGE_SIZE`].
    pub trailing_bytes: usize,
}

impl FileSource {
    /// Load every whole page of `path`.
    pub fn open(path: &Path) -> std::io::Result<FileSource> {
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        let whole = buf.len() / PAGE_SIZE;
        let mut pages = Vec::with_capacity(whole);
        for i in 0..whole {
            let chunk: &[u8; PAGE_SIZE] =
                buf[i * PAGE_SIZE..(i + 1) * PAGE_SIZE].try_into().unwrap();
            pages.push(Page::from_bytes(chunk));
        }
        Ok(FileSource {
            pages,
            trailing_bytes: buf.len() % PAGE_SIZE,
        })
    }

    /// Number of whole pages in the file.
    pub fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }
}

impl PageSource for FileSource {
    fn page(&self, id: PageId) -> Option<Page> {
        self.pages.get(id.index()).cloned()
    }
}

/// A live buffer pool as a page source (sees dirty, unflushed pages).
///
/// Reads are non-perturbing: a resident page is copied out of its shard via
/// [`BufferPool::peek`] (no pin, no clock touch, no fault-in), and an absent
/// page is read straight from disk so checking never evicts hot frames or
/// fails on a full pool.
pub struct PoolSource<'a> {
    pool: &'a BufferPool,
}

impl<'a> PoolSource<'a> {
    /// Wrap `pool`.
    pub fn new(pool: &'a BufferPool) -> PoolSource<'a> {
        PoolSource { pool }
    }
}

impl PageSource for PoolSource<'_> {
    fn page(&self, id: PageId) -> Option<Page> {
        if let Some(page) = self.pool.peek(id) {
            return Some(page);
        }
        self.pool.disk().read_page(id).ok()
    }
}

/// Tuning knobs for the walk.
#[derive(Clone, Debug)]
pub struct FsckOptions {
    /// Page id of the meta page (the durable layout uses page 0).
    pub meta: PageId,
    /// Leaves below this fill fraction count as sparse in [`FsckStats`].
    pub sparse_threshold: f64,
}

impl Default for FsckOptions {
    fn default() -> Self {
        FsckOptions {
            meta: PageId(0),
            sparse_threshold: 0.5,
        }
    }
}

/// Fill accounting for one base page (the unit Pass 1 plans over).
#[derive(Clone, Debug)]
pub struct BaseFill {
    /// The base (level-1 internal) page.
    pub base: PageId,
    /// Number of child leaves.
    pub leaves: u32,
    /// Total record bytes across those leaves.
    pub used_bytes: u64,
    /// Mean fill fraction of those leaves.
    pub fill: f64,
}

/// Aggregate figures recomputed by the walk.
#[derive(Clone, Debug, Default)]
pub struct FsckStats {
    /// Pages visited (meta + reachable tree pages).
    pub pages_scanned: u64,
    /// Internal pages visited.
    pub internal_pages: u64,
    /// Leaf pages visited.
    pub leaf_pages: u64,
    /// Records across all leaves.
    pub records: u64,
    /// Leaves holding zero records (legal but notable).
    pub empty_leaves: u64,
    /// Mean leaf fill fraction (0 when there are no leaves).
    pub avg_leaf_fill: f64,
    /// Leaves below the sparse threshold.
    pub sparse_leaves: u64,
    /// Per-base fill accounting, in key order.
    pub per_base: Vec<BaseFill>,
}

/// Everything one fsck run produces.
#[derive(Clone, Debug)]
pub struct FsckResult {
    /// Findings and summary lines.
    pub report: Report,
    /// Recomputed statistics.
    pub stats: FsckStats,
    /// Every page the walk reached (meta included), for external
    /// cross-checks such as FSM agreement.
    pub reachable: BTreeSet<PageId>,
}

struct Walker<'a> {
    src: &'a dyn PageSource,
    report: Report,
    stats: FsckStats,
    seen: BTreeSet<PageId>,
    /// Leaves in parent-entry order, with their granted key ranges.
    leaves: Vec<PageId>,
}

impl Walker<'_> {
    fn err(&mut self, code: &'static str, page: PageId, detail: impl Into<String>) {
        self.report.error(CHECKER, code, Some(page), None, detail);
    }

    /// Walk the subtree rooted at `id`, which the parent grants the key
    /// range `[lo, hi)` (`None` = unbounded).
    fn walk(&mut self, id: PageId, expect_level: u8, lo: Option<u64>, hi: Option<u64>) {
        if !self.seen.insert(id) {
            self.err(
                "page-shared",
                id,
                "page is reachable via two parents (or a cycle)",
            );
            return;
        }
        self.stats.pages_scanned += 1;
        let Some(page) = self.src.page(id) else {
            self.err("page-unreadable", id, "page cannot be read from source");
            return;
        };
        if page.level() != expect_level {
            self.err(
                "level-mismatch",
                id,
                format!(
                    "header level {} but parent expects level {expect_level}",
                    page.level()
                ),
            );
        }
        if expect_level > 0 {
            self.walk_internal(id, page, expect_level, lo, hi);
        } else {
            self.walk_leaf(id, page, lo, hi);
        }
    }

    fn walk_internal(
        &mut self,
        id: PageId,
        page: Page,
        level: u8,
        lo: Option<u64>,
        hi: Option<u64>,
    ) {
        if page.page_type() != Some(PageType::Internal) {
            self.err(
                "type-mismatch",
                id,
                format!(
                    "expected an internal page at level {level}, found {:?}",
                    page.page_type()
                ),
            );
            return;
        }
        self.stats.internal_pages += 1;
        {
            // Slot-directory coherence (offsets, free pointer, sortedness).
            let mut copy = page.clone();
            if let Err(e) = NodeView::new(&mut copy).validate() {
                self.err("node-invalid", id, format!("node validation: {e}"));
            }
        }
        let entries = NodeRef::new(&page).entries();
        if entries.is_empty() {
            self.err("empty-internal", id, "internal page routes nothing");
            return;
        }
        for w in entries.windows(2) {
            if w[0].0 >= w[1].0 {
                self.err(
                    "node-key-order",
                    id,
                    format!("entry keys out of order: {} then {}", w[0].0, w[1].0),
                );
            }
        }
        for &(k, _) in &entries {
            if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                self.err(
                    "entry-out-of-range",
                    id,
                    format!("entry key {k} outside the granted range [{lo:?}, {hi:?})"),
                );
            }
        }
        for (i, &(k, child)) in entries.iter().enumerate() {
            if !child.is_valid() {
                self.err("invalid-child", id, format!("entry {k} has no child"));
                continue;
            }
            // The router sends `key` to the last entry with key <= `key`,
            // and keys below the first entry to child 0 — so child 0's low
            // bound is the parent's, not its own entry key.
            let child_lo = if i == 0 { lo } else { Some(k) };
            let child_hi = entries.get(i + 1).map(|e| Some(e.0)).unwrap_or(hi);
            self.walk(child, level - 1, child_lo, child_hi);
        }
    }

    fn walk_leaf(&mut self, id: PageId, page: Page, lo: Option<u64>, hi: Option<u64>) {
        if page.page_type() != Some(PageType::Leaf) {
            self.err(
                "type-mismatch",
                id,
                format!("expected a leaf page, found {:?}", page.page_type()),
            );
            return;
        }
        self.stats.leaf_pages += 1;
        self.leaves.push(id);
        {
            let mut copy = page.clone();
            if let Err(e) = LeafView::new(&mut copy).validate() {
                self.err("leaf-invalid", id, format!("leaf validation: {e}"));
            }
        }
        let leaf = LeafRef::new(&page);
        let keys = leaf.keys();
        for w in keys.windows(2) {
            if w[0] >= w[1] {
                self.err(
                    "leaf-key-order",
                    id,
                    format!("record keys out of order: {} then {}", w[0], w[1]),
                );
            }
        }
        for &k in &keys {
            if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                self.err(
                    "key-out-of-range",
                    id,
                    format!("key {k} outside the parent-granted range [{lo:?}, {hi:?})"),
                );
            }
        }
        if leaf.used_bytes() > LEAF_BODY {
            self.err(
                "leaf-overflow",
                id,
                format!(
                    "{} used bytes exceed the {LEAF_BODY}-byte body",
                    leaf.used_bytes()
                ),
            );
        }
        self.stats.records += keys.len() as u64;
        if keys.is_empty() {
            self.stats.empty_leaves += 1;
        }
    }

    /// The in-order leaves must equal the side-pointer chain. Chain mode is
    /// inferred: no right pointers at all means `SidePointerMode::None`
    /// (nothing to check); back pointers are checked only where present so
    /// one-way chains pass.
    fn check_chain(&mut self) {
        let n = self.leaves.len();
        if n == 0 {
            return;
        }
        let sib = |walker: &Self, id: PageId| -> (PageId, PageId) {
            walker
                .src
                .page(id)
                .map(|p| (p.left_sibling(), p.right_sibling()))
                .unwrap_or((PageId::INVALID, PageId::INVALID))
        };
        let any_right = self.leaves.iter().any(|&l| sib(self, l).1.is_valid());
        if !any_right && n > 1 {
            self.report
                .note("no side pointers present; skipping chain checks".to_string());
            return;
        }
        let leaves = self.leaves.clone();
        for (i, &id) in leaves.iter().enumerate() {
            let (left, right) = sib(self, id);
            let expect_right = leaves.get(i + 1).copied().unwrap_or(PageId::INVALID);
            if right != expect_right {
                self.err(
                    "chain-right",
                    id,
                    format!(
                        "right sibling is {right}, expected {expect_right} \
                         (in-order successor)"
                    ),
                );
            }
            if left.is_valid() {
                let expect_left = if i == 0 {
                    PageId::INVALID
                } else {
                    leaves[i - 1]
                };
                if left != expect_left {
                    self.err(
                        "chain-left",
                        id,
                        format!(
                            "left sibling is {left}, expected {expect_left} \
                             (in-order predecessor)"
                        ),
                    );
                }
            }
        }
    }

    /// Keys must increase strictly across the in-order leaf sequence.
    fn check_cross_leaf_order(&mut self) {
        let mut prev: Option<(PageId, u64)> = None;
        let leaves = self.leaves.clone();
        for id in leaves {
            let Some(page) = self.src.page(id) else {
                continue;
            };
            if page.page_type() != Some(PageType::Leaf) {
                continue;
            }
            let leaf = LeafRef::new(&page);
            if let (Some(first), Some(last)) = (leaf.first_key(), leaf.last_key()) {
                if let Some((pid, plast)) = prev {
                    if first <= plast {
                        self.err(
                            "cross-leaf-order",
                            id,
                            format!(
                                "first key {first} does not exceed key {plast} \
                                 of preceding leaf {pid}"
                            ),
                        );
                    }
                }
                prev = Some((id, last));
            }
        }
    }

    /// Recompute per-base fill (the Pass-1 sparseness metric) from the base
    /// pages' children.
    fn account_fills(&mut self, root: PageId, height: u8) {
        if height == 0 {
            return; // a root leaf has no base page
        }
        // Descend height-1 levels from the root to reach the bases (the
        // level-1 internal pages whose children are leaves).
        let mut bases = vec![root];
        for _ in 0..height - 1 {
            let mut next = Vec::new();
            for id in bases {
                let Some(page) = self.src.page(id) else {
                    continue;
                };
                if page.page_type() != Some(PageType::Internal) {
                    continue;
                }
                next.extend(NodeRef::new(&page).children());
            }
            bases = next;
        }
        let mut fill_sum = 0.0f64;
        let mut fill_n = 0u64;
        for base in bases {
            let Some(bp) = self.src.page(base) else {
                continue;
            };
            if bp.page_type() != Some(PageType::Internal) {
                continue;
            }
            let children = NodeRef::new(&bp).children();
            let mut used = 0u64;
            let mut fills = 0.0f64;
            let mut leaves = 0u32;
            for c in children {
                let Some(lp) = self.src.page(c) else { continue };
                if lp.page_type() != Some(PageType::Leaf) {
                    continue;
                }
                let leaf = LeafRef::new(&lp);
                used += leaf.used_bytes() as u64;
                fills += leaf.fill_fraction();
                leaves += 1;
            }
            let fill = if leaves == 0 {
                0.0
            } else {
                fills / f64::from(leaves)
            };
            fill_sum += fills;
            fill_n += u64::from(leaves);
            self.stats.per_base.push(BaseFill {
                base,
                leaves,
                used_bytes: used,
                fill,
            });
        }
        self.stats.avg_leaf_fill = if fill_n == 0 {
            0.0
        } else {
            fill_sum / fill_n as f64
        };
    }
}

/// Walk the tree anchored at `opts.meta` in `src` and verify every fsck
/// invariant that a bare page image supports.
pub fn fsck_source(src: &dyn PageSource, opts: &FsckOptions) -> FsckResult {
    let mut w = Walker {
        src,
        report: Report::new(),
        stats: FsckStats::default(),
        seen: BTreeSet::new(),
        leaves: Vec::new(),
    };
    let meta_id = opts.meta;
    let Some(meta_page) = src.page(meta_id) else {
        w.err("meta-unreadable", meta_id, "meta page cannot be read");
        return finish(w, opts);
    };
    w.seen.insert(meta_id);
    w.stats.pages_scanned += 1;
    let meta = match MetaRef::new(&meta_page) {
        Ok(m) => m,
        Err(e) => {
            w.err("meta-invalid", meta_id, format!("meta page rejected: {e}"));
            return finish(w, opts);
        }
    };
    let (root, height) = (meta.root(), meta.height());
    if !root.is_valid() {
        w.err("root-invalid", meta_id, "meta names no root page");
        return finish(w, opts);
    }
    w.walk(root, height, None, None);
    w.check_chain();
    w.check_cross_leaf_order();
    w.account_fills(root, height);
    finish(w, opts)
}

fn finish(mut w: Walker<'_>, opts: &FsckOptions) -> FsckResult {
    let mut sparse = 0u64;
    for id in &w.leaves {
        if let Some(p) = w.src.page(*id) {
            if p.page_type() == Some(PageType::Leaf)
                && LeafRef::new(&p).fill_fraction() < opts.sparse_threshold
                && !LeafRef::new(&p).is_empty()
            {
                sparse += 1;
            }
        }
    }
    w.stats.sparse_leaves = sparse;
    w.report.note(format!(
        "scanned {} pages ({} internal, {} leaves, {} records); \
         avg leaf fill {:.2}, {} sparse, {} empty",
        w.stats.pages_scanned,
        w.stats.internal_pages,
        w.stats.leaf_pages,
        w.stats.records,
        w.stats.avg_leaf_fill,
        w.stats.sparse_leaves,
        w.stats.empty_leaves,
    ));
    FsckResult {
        report: w.report,
        stats: w.stats,
        reachable: w.seen,
    }
}

/// Fsck a page file on disk (e.g. `<dir>/pages.db`).
pub fn fsck_file(path: &Path, opts: &FsckOptions) -> std::io::Result<FsckResult> {
    let src = FileSource::open(path)?;
    let mut result = fsck_source(&src, opts);
    if src.trailing_bytes != 0 {
        result.report.error(
            CHECKER,
            "partial-page",
            None,
            None,
            format!(
                "file ends with {} stray bytes (not a whole page)",
                src.trailing_bytes
            ),
        );
    }
    Ok(result)
}

/// Fsck a live database through its buffer pool, adding the FSM-agreement
/// checks a raw page file cannot support: every page the tree reaches must
/// be allocated in the free-space map.
pub fn fsck_db(db: &Database, opts: &FsckOptions) -> FsckResult {
    let src = PoolSource::new(db.pool());
    let opts = FsckOptions {
        meta: db.tree().meta_id(),
        ..opts.clone()
    };
    let mut result = fsck_source(&src, &opts);
    let fsm = db.fsm();
    for &page in &result.reachable {
        if fsm.is_free(page) {
            result.report.error(
                CHECKER,
                "fsm-reachable-free",
                Some(page),
                None,
                "page is reachable from the root but marked free in the FSM",
            );
        }
    }
    result.report.note(format!(
        "fsm: {} pages tracked, {} free, {} allocated",
        fsm.num_pages(),
        fsm.free_count(),
        fsm.allocated_count()
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use obr_btree::SidePointerMode;
    use obr_storage::InMemoryDisk;
    use std::sync::Arc;

    fn small_db() -> Arc<Database> {
        let disk = Arc::new(InMemoryDisk::new(256));
        let db = Database::create(disk, 256, SidePointerMode::TwoWay).unwrap();
        for k in 0..500u64 {
            db.tree()
                .insert(
                    obr_wal::TxnId::SYSTEM,
                    obr_storage::Lsn::ZERO,
                    k,
                    &[7u8; 16],
                )
                .unwrap();
        }
        db
    }

    #[test]
    fn clean_tree_has_no_findings() {
        let db = small_db();
        let r = fsck_db(&db, &FsckOptions::default());
        assert!(r.report.is_clean(), "{}", r.report);
        assert!(r.stats.leaf_pages > 1);
        assert_eq!(r.stats.records, 500);
        assert!(!r.stats.per_base.is_empty());
    }

    #[test]
    fn flipped_sibling_pointer_is_caught() {
        let db = small_db();
        let clean = fsck_db(&db, &FsckOptions::default());
        let leaves: Vec<PageId> = clean
            .reachable
            .iter()
            .copied()
            .filter(|&p| {
                db.pool()
                    .fetch(p)
                    .map(|g| g.read().page_type() == Some(PageType::Leaf))
                    .unwrap_or(false)
            })
            .collect();
        assert!(leaves.len() >= 3);
        let victim = leaves[1];
        {
            let g = db.pool().fetch(victim).unwrap();
            g.write().set_right_sibling(leaves[0]);
        }
        let r = fsck_db(&db, &FsckOptions::default());
        assert!(!r.report.is_clean());
        assert!(
            r.report
                .findings
                .iter()
                .any(|f| f.code.starts_with("chain") && f.page == Some(victim)),
            "{}",
            r.report
        );
    }

    #[test]
    fn out_of_order_key_is_caught() {
        let db = small_db();
        let clean = fsck_db(&db, &FsckOptions::default());
        let leaf = *clean
            .reachable
            .iter()
            .find(|&&p| {
                db.pool()
                    .fetch(p)
                    .map(|g| {
                        let page = g.read();
                        page.page_type() == Some(PageType::Leaf) && LeafRef::new(&page).count() >= 2
                    })
                    .unwrap_or(false)
            })
            .unwrap();
        {
            // Swap the first two slot key bytes to break ordering without
            // touching the slot directory.
            let g = db.pool().fetch(leaf).unwrap();
            let mut page = g.write();
            let keys = LeafRef::new(&page).keys();
            let (a, b) = (keys[0], keys[1]);
            let body = page.body_mut();
            // Slots store the key at the slot offset; find and swap the two
            // 8-byte key encodings.
            let mut swapped = false;
            for i in 0..body.len().saturating_sub(8) {
                if body[i..i + 8] == a.to_le_bytes() {
                    body[i..i + 8].copy_from_slice(&b.to_le_bytes());
                    swapped = true;
                    break;
                }
            }
            assert!(swapped, "key bytes not found in body");
        }
        let r = fsck_db(&db, &FsckOptions::default());
        assert!(
            r.report.findings.iter().any(|f| f.page == Some(leaf)),
            "{}",
            r.report
        );
    }
}
