//! Per-file fact extraction for the protocol checker.
//!
//! Built on [`crate::lexer`], this module turns a Rust source file into:
//!
//! * item facts: structs (fields + core types + atomic-ness), impl blocks,
//!   functions (signature types + body token range), lock-class bindings
//!   mined from `Mutex::named(_, "class")` / `RwLock::named(_, "class")`,
//!   and `// protocol:` annotations;
//! * per-function **op streams**: a linear, token-ordered list of lock
//!   acquisitions (with lexical guard scopes), calls (with receiver
//!   chains), and atomic operations (with `Ordering` arguments).
//!
//! The op stream deliberately defers *resolution* (which function does a
//! call land on, what type is a receiver) to [`crate::callgraph`], which
//! has the whole-workspace index. Extraction here is purely syntactic.
//!
//! ## Soundness envelope
//!
//! This is a lexer-level analysis, not a compiler. The documented
//! approximations:
//!
//! * Guard scopes are lexical: a let-bound guard is held until its block
//!   closes or an explicit `drop(name)`; an unbound (temporary) guard is
//!   held to the end of its statement. Guards moved across function
//!   boundaries are not tracked.
//! * Closures are analyzed inline as part of the enclosing function.
//! * Macro bodies are scanned as plain token text.

use crate::lexer::{lex, Tok, TokKind};

/// Methods that acquire a facade lock when the receiver maps to a class.
const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Atomic access methods we track for R3.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "else", "unsafe",
    "ref", "let", "mut", "where", "impl", "pub", "use", "mod", "struct", "enum", "trait", "const",
    "static", "type", "break", "continue",
];

/// Kind of a `// protocol:` annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnKind {
    /// This function is a WAL append primitive.
    WalAppend,
    /// This function is a page-content mutation primitive.
    PageMutation,
    /// Mutations reached through this function are audited as exempt
    /// from WAL-before-data (recovery redo, bulk load, ...).
    NoWal,
    /// This atomic access site is audited as exempt from publication
    /// pairing (R3).
    MixedOrdering,
}

/// One parsed `// protocol: <kind> <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Annotation kind.
    pub kind: AnnKind,
    /// Free-form justification text after the keyword.
    pub reason: String,
    /// Line the comment appears on.
    pub line: u32,
}

/// A struct field: name, wrapper-stripped core type, atomic-ness.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Wrapper-stripped core type ident, when derivable.
    pub type_core: Option<String>,
    /// Declared with an `Atomic*` type.
    pub is_atomic: bool,
}

/// A struct declaration with its named fields.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// Declaration line.
    pub line: u32,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<FieldInfo>,
}

/// `name` (a field or local) was initialized with
/// `Mutex::named(_, "class")` / `RwLock::named(_, "class")` in this file.
#[derive(Debug, Clone)]
pub struct ClassBinding {
    /// Field or local binding name.
    pub name: String,
    /// Lock class string from the `named` constructor.
    pub class: String,
}

/// One segment of a receiver chain, e.g. `self.pool.fetch(id)?.write()`
/// becomes `[Base("self"), Field("pool"), Method("fetch"), Method("write")]`
/// (the final called method is carried separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seg {
    /// Chain head: a local, parameter, `self`, or type name.
    Base(String),
    /// `.field` access.
    Field(String),
    /// `.method(...)` call segment.
    Method(String),
}

/// Receiver form of a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// Free call: `name(...)`.
    None,
    /// Path call `A::name(...)`; the `String` is the last path segment
    /// before the function name (`A`).
    Path(String),
    /// Method call with a receiver chain.
    Chain(Vec<Seg>),
}

/// A syntactic call site.
#[derive(Debug, Clone)]
pub struct RawCall {
    /// Called function/method name.
    pub name: String,
    /// Receiver form.
    pub recv: Recv,
    /// Call site line.
    pub line: u32,
}

/// A syntactic atomic access.
#[derive(Debug, Clone)]
pub struct RawAtomic {
    /// Receiver chain of the atomic *field* (without the method).
    pub chain: Vec<Seg>,
    /// Atomic method (`load`, `store`, `fetch_max`, ...).
    pub method: String,
    /// `Ordering::X` idents found in the argument list, in order.
    pub orderings: Vec<String>,
    /// Access site line.
    pub line: u32,
}

/// Linear op stream of a function body (token order).
#[derive(Debug, Clone)]
pub enum Op {
    /// Acquisition of a lock whose class resolved syntactically
    /// (receiver's final field/local name has a class binding).
    Acquire {
        /// Resolved lock class from the manifest vocabulary.
        class: String,
        /// Lexical scope id the guard lives in.
        scope: u32,
        /// Acquisition site line.
        line: u32,
    },
    /// A call; `scope` is set when the call's result is let-bound, so
    /// the callgraph can model guard-returning calls as scoped
    /// acquisitions.
    Call {
        /// The syntactic call.
        call: RawCall,
        /// Lexical scope id of the let binding, if the result is bound.
        scope: Option<u32>,
        /// Call site line.
        line: u32,
    },
    /// An atomic access with orderings.
    Atomic(RawAtomic),
    /// Lexical end of a scope opened by an `Acquire`/`Call`.
    EndScope {
        /// The scope id being closed.
        scope: u32,
    },
}

/// A function: identity, signature types, annotations, op stream.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` (or trait name for trait
    /// default methods).
    pub impl_type: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// `(binding name, core type)` for typed parameters.
    pub params: Vec<(String, Option<String>)>,
    /// Wrapper-stripped core return type ident.
    pub ret: Option<String>,
    /// True if the declared return type mentions a raw lock guard
    /// (`MutexGuard` / `RwLockReadGuard` / `RwLockWriteGuard`).
    pub returns_lock_guard: bool,
    /// Protocol annotations attached to this function.
    pub anns: Vec<Annotation>,
    /// Linear op stream of the body.
    pub ops: Vec<Op>,
    /// Local `let` bindings with a syntactically derivable initializer
    /// shape, for the callgraph's poor-man's typer:
    /// `(name, TyperHint)` in order of appearance.
    pub locals: Vec<(String, TyperHint)>,
}

/// How a local's type can be derived.
#[derive(Debug, Clone)]
pub enum TyperHint {
    /// `let x: Type = ...` — explicit annotation (core type).
    Explicit(String),
    /// `let x = <chain>.method(...)` or `let x = A::method(...)` or
    /// `let x = f(...)` — type is the callee's return type.
    FromCall(RawCall),
    /// `let x = Type { .. }` struct literal.
    StructLit(String),
}

/// Everything extracted from one source file.
#[derive(Debug, Clone)]
pub struct FileFacts {
    /// Slash-normalized path relative to the scan root.
    pub path: String,
    /// Struct declarations.
    pub structs: Vec<StructInfo>,
    /// Lock-class bindings mined from `named` constructors.
    pub classes: Vec<ClassBinding>,
    /// Functions with op streams (test modules excluded).
    pub fns: Vec<FnInfo>,
}

/// Strip reference/wrapper layers off a type's token texts and return
/// the core type ident: `StorageResult<FrameGuard>` → `FrameGuard`,
/// `&'a mut Page` → `Page`, `Arc<dyn DiskManager>` → `DiskManager`.
/// Returns `None` for tuples, slices, fn pointers, and anything else
/// without a single core ident.
pub fn strip_wrappers(toks: &[&str]) -> Option<String> {
    // Wrappers whose last generic argument is "the real type".
    fn is_wrapper(id: &str) -> bool {
        matches!(
            id,
            "Option" | "Arc" | "Box" | "Rc" | "Cell" | "RefCell" | "Mutex" | "RwLock"
        ) || id.ends_with("Result")
            || id == "MutexGuard"
            || id == "RwLockReadGuard"
            || id == "RwLockWriteGuard"
    }

    let mut i = 0usize;
    // Skip leading `&`, `mut`, lifetimes, `dyn`, `impl`.
    while i < toks.len() {
        match toks[i] {
            "&" | "mut" | "dyn" | "impl" => i += 1,
            t if t.starts_with('\'') => i += 1,
            _ => break,
        }
    }
    if i >= toks.len() {
        return None;
    }
    if toks[i] == "(" || toks[i] == "[" {
        return None; // tuple / slice / array
    }
    // Read a path `a::b::C`, remembering the last ident.
    let mut last = None;
    while i < toks.len() {
        let t = toks[i];
        if t == "::" {
            i += 1;
            continue;
        }
        if t.chars()
            .next()
            .map(|c| c.is_alphanumeric() || c == '_')
            .unwrap_or(false)
        {
            last = Some(t);
            i += 1;
            // Lookahead: path continues only via `::`.
            if i < toks.len() && toks[i] == "::" {
                continue;
            }
            break;
        }
        break;
    }
    let outer = last?;
    // Generic arguments?
    if i < toks.len() && toks[i] == "<" && is_wrapper(outer) {
        // Collect the last top-level type argument inside the angles.
        let mut depth = 1i32;
        let mut j = i + 1;
        let mut arg_start = j;
        let mut last_arg: Option<(usize, usize)> = None;
        while j < toks.len() && depth > 0 {
            match toks[j] {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "<<" => depth += 2,
                "," if depth == 1 => {
                    last_arg = Some((arg_start, j));
                    arg_start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        let end = j.saturating_sub(1);
        let (s, e) = match last_arg {
            Some((_, _)) if arg_start < end => (arg_start, end),
            Some((s, e)) if arg_start >= end => (s, e),
            _ => (arg_start, end),
        };
        if s < e {
            let inner: Vec<&str> = toks[s..e].to_vec();
            // Skip pure-lifetime args (`MutexGuard<'a, T>` handled by
            // last-argument selection already).
            return strip_wrappers(&inner);
        }
        return Some(outer.to_string());
    }
    Some(outer.to_string())
}

/// True if any token names a raw lock guard type.
fn mentions_lock_guard(toks: &[&str]) -> bool {
    toks.iter()
        .any(|t| matches!(*t, "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard"))
}

/// Parse a `// protocol: ...` comment's payload, if it is one.
fn parse_protocol_comment(text: &str, line: u32) -> Option<Annotation> {
    let body = text
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start_matches('*')
        .trim();
    let rest = body.strip_prefix("protocol:")?.trim();
    let (kw, reason) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    let kind = match kw {
        "wal-append" => AnnKind::WalAppend,
        "page-mutation" => AnnKind::PageMutation,
        "no-wal" => AnnKind::NoWal,
        "mixed-ordering" => AnnKind::MixedOrdering,
        _ => return None,
    };
    Some(Annotation {
        kind,
        reason: reason.to_string(),
        line,
    })
}

/// Extract facts from one file. `path` should already be relative and
/// slash-normalized for diagnostics.
pub fn extract_file(path: &str, src: &str) -> FileFacts {
    let toks = lex(src);
    let mut ex = Extractor {
        toks: &toks,
        structs: Vec::new(),
        classes: Vec::new(),
        fns: Vec::new(),
        protocol_comments: Vec::new(),
        ann_used: Vec::new(),
    };
    ex.collect_protocol_comments();
    // Class bindings must exist before bodies are scanned: the body
    // scanner resolves `.lock()` receivers against them.
    ex.mine_class_bindings();
    ex.scan_items(0, toks.len(), &mut Vec::new());
    FileFacts {
        path: to_string_path(path),
        structs: ex.structs,
        classes: ex.classes,
        fns: ex.fns,
    }
}

fn to_string_path(p: &str) -> String {
    p.replace('\\', "/")
}

struct ImplCtx {
    self_type: Option<String>,
    trait_name: Option<String>,
}

struct Extractor<'a, 't> {
    toks: &'a [Tok<'t>],
    structs: Vec<StructInfo>,
    classes: Vec<ClassBinding>,
    fns: Vec<FnInfo>,
    /// `(line, annotation)` for every protocol comment in the file.
    protocol_comments: Vec<Annotation>,
    /// Parallel to `protocol_comments`: consumed by a `fn` attachment.
    /// Each fn-level annotation binds to the first following `fn` only;
    /// without this, two adjacent short fns both fall inside the 6-line
    /// window and the first fn's annotation leaks onto the second.
    ann_used: Vec<bool>,
}

impl<'a, 't> Extractor<'a, 't> {
    fn collect_protocol_comments(&mut self) {
        for t in self.toks {
            if t.kind == TokKind::Comment {
                if let Some(a) = parse_protocol_comment(t.text, t.line) {
                    self.protocol_comments.push(a);
                }
            }
        }
        self.ann_used = vec![false; self.protocol_comments.len()];
    }

    /// Next non-comment token index at or after `i`, bounded by `end`.
    fn sig(&self, mut i: usize, end: usize) -> Option<usize> {
        while i < end {
            if self.toks[i].kind != TokKind::Comment {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Skip a balanced `< ... >` group starting at `i` (which must be `<`).
    /// Returns the index just past the closing `>`.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match self.toks[j].text {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                ";" | "{" => return j, // malformed; bail out
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip a balanced delimiter group; `i` points at the opener.
    /// Returns index just past the matching closer.
    fn skip_group(&self, i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            let t = self.toks[j].text;
            if self.toks[j].kind == TokKind::Punct {
                if t == open {
                    depth += 1;
                } else if t == close {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            j += 1;
        }
        j
    }

    /// Top-level item scan over `[i, end)`. `ctx` is the impl-context
    /// stack.
    fn scan_items(&mut self, mut i: usize, end: usize, ctx: &mut Vec<ImplCtx>) {
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Comment {
                i += 1;
                continue;
            }
            match (t.kind, t.text) {
                // Attributes: detect #[cfg(test)] guarding a mod/fn.
                (TokKind::Punct, "#") => {
                    let open = self.sig(i + 1, end);
                    if let Some(o) = open {
                        if self.toks[o].is_punct("[") {
                            let close = self.skip_group(o, end, "[", "]");
                            let mut is_cfg_test = false;
                            let mut saw_cfg = false;
                            for k in o..close {
                                if self.toks[k].is_ident("cfg") {
                                    saw_cfg = true;
                                }
                                if self.toks[k].is_ident("test") && saw_cfg {
                                    is_cfg_test = true;
                                }
                            }
                            if is_cfg_test {
                                // Skip the guarded item entirely (mod,
                                // fn, impl, use...).
                                i = self.skip_item(close, end);
                                continue;
                            }
                            i = close;
                            continue;
                        }
                    }
                    i += 1;
                }
                (TokKind::Ident, "struct") => {
                    i = self.parse_struct(i, end);
                }
                (TokKind::Ident, "impl") => {
                    i = self.parse_impl(i, end, ctx);
                }
                (TokKind::Ident, "trait") => {
                    i = self.parse_trait(i, end, ctx);
                }
                (TokKind::Ident, "fn") => {
                    i = self.parse_fn(i, end, ctx);
                }
                (TokKind::Ident, "mod") => {
                    // Inline module: recurse into its braces with the
                    // same (empty at this point) impl context.
                    let mut j = i + 1;
                    while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
                        j += 1;
                    }
                    if j < end && self.toks[j].is_punct("{") {
                        let close = self.skip_group(j, end, "{", "}");
                        self.scan_items(j + 1, close.saturating_sub(1), ctx);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// Skip one item after an attribute: consumes to the end of the next
    /// braced block or `;`, whichever comes first at nesting level 0.
    fn skip_item(&self, mut i: usize, end: usize) -> usize {
        // Skip further attributes.
        loop {
            let s = match self.sig(i, end) {
                Some(s) => s,
                None => return end,
            };
            if self.toks[s].is_punct("#") {
                if let Some(o) = self.sig(s + 1, end) {
                    if self.toks[o].is_punct("[") {
                        i = self.skip_group(o, end, "[", "]");
                        continue;
                    }
                }
            }
            i = s;
            break;
        }
        let mut j = i;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct(";") {
                return j + 1;
            }
            if t.is_punct("{") {
                return self.skip_group(j, end, "{", "}");
            }
            j += 1;
        }
        end
    }

    fn parse_struct(&mut self, i: usize, end: usize) -> usize {
        let name_i = match self.sig(i + 1, end) {
            Some(n) if self.toks[n].kind == TokKind::Ident => n,
            _ => return i + 1,
        };
        let name = self.toks[name_i].text.to_string();
        let line = self.toks[name_i].line;
        let mut j = name_i + 1;
        if j < end && self.toks[j].is_punct("<") {
            j = self.skip_angles(j, end);
        }
        // Skip a `where` clause if present.
        while j < end
            && !self.toks[j].is_punct("{")
            && !self.toks[j].is_punct("(")
            && !self.toks[j].is_punct(";")
        {
            j += 1;
        }
        if j >= end || !self.toks[j].is_punct("{") {
            // Tuple struct or unit struct: no named fields to record.
            if j < end && self.toks[j].is_punct("(") {
                let close = self.skip_group(j, end, "(", ")");
                self.structs.push(StructInfo {
                    name,
                    line,
                    fields: Vec::new(),
                });
                // consume trailing `;`
                return if close < end && self.toks[close].is_punct(";") {
                    close + 1
                } else {
                    close
                };
            }
            self.structs.push(StructInfo {
                name,
                line,
                fields: Vec::new(),
            });
            return j + 1;
        }
        let close = self.skip_group(j, end, "{", "}");
        let body_end = close.saturating_sub(1);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < body_end {
            // Skip attrs and visibility.
            if self.toks[k].kind == TokKind::Comment {
                k += 1;
                continue;
            }
            if self.toks[k].is_punct("#") {
                if let Some(o) = self.sig(k + 1, body_end) {
                    if self.toks[o].is_punct("[") {
                        k = self.skip_group(o, body_end, "[", "]");
                        continue;
                    }
                }
                k += 1;
                continue;
            }
            if self.toks[k].is_ident("pub") {
                k += 1;
                if k < body_end && self.toks[k].is_punct("(") {
                    k = self.skip_group(k, body_end, "(", ")");
                }
                continue;
            }
            if self.toks[k].kind == TokKind::Ident {
                // field name `:` type `,`
                let fname = self.toks[k].text.to_string();
                let colon = self.sig(k + 1, body_end);
                if let Some(c) = colon {
                    if self.toks[c].is_punct(":") {
                        // Collect type tokens to the next top-level comma.
                        let mut depth_a = 0i32; // angles
                        let mut depth_p = 0i32; // parens/brackets
                        let mut ty: Vec<&str> = Vec::new();
                        let mut m = c + 1;
                        while m < body_end {
                            let tt = self.toks[m].text;
                            if self.toks[m].kind == TokKind::Punct {
                                match tt {
                                    "<" => depth_a += 1,
                                    "<<" => depth_a += 2,
                                    ">" => depth_a -= 1,
                                    ">>" => depth_a -= 2,
                                    "(" | "[" => depth_p += 1,
                                    ")" | "]" => depth_p -= 1,
                                    "," if depth_a <= 0 && depth_p <= 0 => break,
                                    _ => {}
                                }
                            }
                            if self.toks[m].kind != TokKind::Comment {
                                ty.push(tt);
                            }
                            m += 1;
                        }
                        let is_atomic = ty.iter().any(|t| t.starts_with("Atomic"));
                        fields.push(FieldInfo {
                            name: fname,
                            type_core: strip_wrappers(&ty),
                            is_atomic,
                        });
                        k = m + 1;
                        continue;
                    }
                }
                k += 1;
                continue;
            }
            k += 1;
        }
        self.structs.push(StructInfo { name, line, fields });
        close
    }

    /// Parse the header of an `impl` block and scan its items with the
    /// impl context pushed.
    fn parse_impl(&mut self, i: usize, end: usize, ctx: &mut Vec<ImplCtx>) -> usize {
        let mut j = i + 1;
        if j < end && self.toks[j].is_punct("<") {
            j = self.skip_angles(j, end);
        }
        // First path (self type or trait).
        let (first, j2) = self.parse_type_path(j, end);
        let mut j = j2;
        let (self_type, trait_name);
        if j < end && self.toks[j].is_ident("for") {
            let (second, j3) = self.parse_type_path(j + 1, end);
            j = j3;
            trait_name = first;
            self_type = second;
        } else {
            self_type = first;
            trait_name = None;
        }
        // Skip to `{` (over any where clause).
        while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
            j += 1;
        }
        if j >= end || !self.toks[j].is_punct("{") {
            return j + 1;
        }
        let close = self.skip_group(j, end, "{", "}");
        ctx.push(ImplCtx {
            self_type,
            trait_name,
        });
        self.scan_items(j + 1, close.saturating_sub(1), ctx);
        ctx.pop();
        close
    }

    fn parse_trait(&mut self, i: usize, end: usize, ctx: &mut Vec<ImplCtx>) -> usize {
        let name_i = match self.sig(i + 1, end) {
            Some(n) if self.toks[n].kind == TokKind::Ident => n,
            _ => return i + 1,
        };
        let name = self.toks[name_i].text.to_string();
        let mut j = name_i + 1;
        while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
            j += 1;
        }
        if j >= end || !self.toks[j].is_punct("{") {
            return j + 1;
        }
        let close = self.skip_group(j, end, "{", "}");
        ctx.push(ImplCtx {
            self_type: Some(name.clone()),
            trait_name: Some(name),
        });
        self.scan_items(j + 1, close.saturating_sub(1), ctx);
        ctx.pop();
        close
    }

    /// Parse a type path like `a::b::C<...>`; returns (last ident, next index).
    fn parse_type_path(&self, mut i: usize, end: usize) -> (Option<String>, usize) {
        let mut last = None;
        while i < end {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Comment => i += 1,
                TokKind::Ident if t.text == "dyn" => i += 1,
                TokKind::Ident if t.text == "for" || t.text == "where" => break,
                TokKind::Ident => {
                    last = Some(t.text.to_string());
                    i += 1;
                    if i < end && self.toks[i].is_punct("<") {
                        i = self.skip_angles(i, end);
                    }
                    if i < end && self.toks[i].is_punct("::") {
                        i += 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        (last, i)
    }

    fn parse_fn(&mut self, i: usize, end: usize, ctx: &mut [ImplCtx]) -> usize {
        let name_i = match self.sig(i + 1, end) {
            Some(n) if self.toks[n].kind == TokKind::Ident => n,
            _ => return i + 1,
        };
        let name = self.toks[name_i].text.to_string();
        let fn_line = self.toks[i].line;
        let mut j = name_i + 1;
        if j < end && self.toks[j].is_punct("<") {
            j = self.skip_angles(j, end);
        }
        if j >= end || !self.toks[j].is_punct("(") {
            return j;
        }
        let params_close = self.skip_group(j, end, "(", ")");
        let (params, has_self) = self.parse_params(j + 1, params_close.saturating_sub(1));
        // Return type.
        let mut k = params_close;
        let mut ret_toks: Vec<&str> = Vec::new();
        if k < end && self.toks[k].is_punct("->") {
            k += 1;
            while k < end
                && !self.toks[k].is_punct("{")
                && !self.toks[k].is_punct(";")
                && !self.toks[k].is_ident("where")
            {
                if self.toks[k].kind != TokKind::Comment {
                    ret_toks.push(self.toks[k].text);
                }
                k += 1;
            }
        }
        // Skip where clause.
        while k < end && !self.toks[k].is_punct("{") && !self.toks[k].is_punct(";") {
            k += 1;
        }
        if k >= end || self.toks[k].is_punct(";") {
            return k + 1; // trait method signature without body
        }
        let body_close = self.skip_group(k, end, "{", "}");

        let (impl_type, trait_name) = match ctx.last() {
            Some(c) => (c.self_type.clone(), c.trait_name.clone()),
            None => (None, None),
        };
        // Attach protocol annotations whose line is within 6 lines above
        // the `fn` keyword (doc/attr block). Fns are visited in source
        // order, so consuming on first attachment binds each annotation
        // to the nearest following fn.
        let mut anns: Vec<Annotation> = Vec::new();
        for (ai, a) in self.protocol_comments.iter().enumerate() {
            if self.ann_used[ai]
                || a.kind == AnnKind::MixedOrdering
                || a.line > fn_line
                || fn_line - a.line > 6
            {
                continue;
            }
            self.ann_used[ai] = true;
            anns.push(a.clone());
        }

        let mut body = BodyScanner {
            toks: self.toks,
            classes: &self.classes,
            ops: Vec::new(),
            locals: Vec::new(),
            protocol_comments: &self.protocol_comments,
        };
        body.scan(k + 1, body_close.saturating_sub(1));

        self.fns.push(FnInfo {
            name,
            impl_type,
            trait_name,
            line: fn_line,
            has_self,
            params,
            ret: strip_wrappers(&ret_toks),
            returns_lock_guard: mentions_lock_guard(&ret_toks),
            anns,
            ops: body.ops,
            locals: body.locals,
        });
        body_close
    }

    /// Parse a parameter list between `(` and `)`.
    fn parse_params(&self, start: usize, end: usize) -> (Vec<(String, Option<String>)>, bool) {
        let mut params = Vec::new();
        let mut has_self = false;
        let mut i = start;
        loop {
            // One parameter: tokens up to a top-level comma.
            let mut depth_a = 0i32;
            let mut depth_p = 0i32;
            let mut toks: Vec<(usize, &str)> = Vec::new();
            while i < end {
                let t = &self.toks[i];
                if t.kind == TokKind::Punct {
                    match t.text {
                        "<" => depth_a += 1,
                        "<<" => depth_a += 2,
                        ">" => depth_a -= 1,
                        ">>" => depth_a -= 2,
                        "(" | "[" => depth_p += 1,
                        ")" | "]" => depth_p -= 1,
                        "," if depth_a <= 0 && depth_p <= 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                if t.kind != TokKind::Comment {
                    toks.push((i, t.text));
                }
                i += 1;
            }
            if toks.is_empty() {
                break;
            }
            if toks.iter().any(|(_, t)| *t == "self") && !toks.iter().any(|(_, t)| *t == ":") {
                has_self = true;
            } else if let Some(colon) = toks.iter().position(|(_, t)| *t == ":") {
                // Binding name: last plain ident before the colon.
                let name = toks[..colon]
                    .iter()
                    .rev()
                    .find(|(k, t)| {
                        self.toks[*k].kind == TokKind::Ident && *t != "mut" && *t != "ref"
                    })
                    .map(|(_, t)| t.to_string());
                if let Some(name) = name {
                    if toks[..colon].iter().any(|(_, t)| *t == "(") {
                        // Pattern parameter; no single binding.
                    } else {
                        let ty: Vec<&str> = toks[colon + 1..].iter().map(|(_, t)| *t).collect();
                        params.push((name, strip_wrappers(&ty)));
                    }
                }
            }
            if i >= end {
                break;
            }
        }
        (params, has_self)
    }

    /// Mine `Mutex::named(_, "class")` / `RwLock::named(_, "class")`
    /// bindings anywhere in the file (constructors, locals).
    fn mine_class_bindings(&mut self) {
        let toks = self.toks;
        let n = toks.len();
        let mut i = 0usize;
        while i + 3 < n {
            let is_named = (toks[i].is_ident("Mutex") || toks[i].is_ident("RwLock"))
                && toks[i + 1].is_punct("::")
                && toks[i + 2].is_ident("named")
                && toks[i + 3].is_punct("(");
            if !is_named {
                i += 1;
                continue;
            }
            let close = self.skip_group(i + 3, n, "(", ")");
            // The class is the final top-level string argument.
            let mut depth = 0i32;
            let mut class: Option<String> = None;
            for t in &toks[i + 3..close] {
                if t.kind == TokKind::Punct {
                    match t.text {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    }
                }
                if t.kind == TokKind::Str && depth == 1 && t.text.starts_with('"') {
                    class = Some(t.text.trim_matches('"').to_string());
                }
            }
            // The bound name: `name: Mutex::named(...)` in a struct
            // literal, `let name = ...`, or `self.name = ...`.
            let name = self.binding_name_before(i);
            if let (Some(name), Some(class)) = (name, class) {
                if !self
                    .classes
                    .iter()
                    .any(|c| c.name == name && c.class == class)
                {
                    self.classes.push(ClassBinding { name, class });
                }
            }
            i = close;
        }
    }

    /// For a `Mutex::named` at token `i`, find the field/local name it
    /// is being bound to, looking backwards.
    fn binding_name_before(&self, i: usize) -> Option<String> {
        let toks = self.toks;
        // Walk back over comments.
        let mut j = i;
        while j > 0 && toks[j - 1].kind == TokKind::Comment {
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        let prev = &toks[j - 1];
        if prev.is_punct(":") && j >= 2 && toks[j - 2].kind == TokKind::Ident {
            // struct literal field: `name: Mutex::named(...)`
            return Some(toks[j - 2].text.to_string());
        }
        if prev.is_punct("=") {
            // `let name = ...` or `self.name = ...` or `x.f = ...`
            let mut k = j - 1;
            while k > 0 && toks[k - 1].kind == TokKind::Comment {
                k -= 1;
            }
            if k >= 1 && toks[k - 1].kind == TokKind::Ident {
                return Some(toks[k - 1].text.to_string());
            }
        }
        None
    }
}

/// Scans one function body into an op stream.
struct BodyScanner<'a, 't> {
    toks: &'a [Tok<'t>],
    classes: &'a [ClassBinding],
    ops: Vec<Op>,
    locals: Vec<(String, TyperHint)>,
    protocol_comments: &'a [Annotation],
}

/// An active guard scope during the body walk.
struct ActiveScope {
    id: u32,
    /// Brace depth the scope was opened at; closes when depth drops
    /// below this.
    depth: i32,
    /// For let-bound guards: the binding name (for `drop(name)`).
    name: Option<String>,
    /// Statement-temporary: also closes at the next `;` at `depth`.
    stmt: bool,
}

impl<'a, 't> BodyScanner<'a, 't> {
    fn class_for(&self, name: &str) -> Option<&str> {
        self.classes
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.class.as_str())
    }

    fn scan(&mut self, start: usize, end: usize) {
        let toks = self.toks;
        let mut depth: i32 = 0;
        let mut stmt_start = start;
        let mut active: Vec<ActiveScope> = Vec::new();
        let mut next_scope: u32 = 0;
        let mut i = start;

        while i < end {
            let t = &toks[i];
            if t.kind == TokKind::Comment {
                i += 1;
                continue;
            }
            match t.text {
                "{" if t.kind == TokKind::Punct => {
                    depth += 1;
                    stmt_start = i + 1;
                    i += 1;
                    continue;
                }
                "}" if t.kind == TokKind::Punct => {
                    // Close scopes opened at this depth.
                    let d = depth;
                    let mut k = 0;
                    while k < active.len() {
                        if active[k].depth >= d {
                            let s = active.remove(k);
                            self.ops.push(Op::EndScope { scope: s.id });
                        } else {
                            k += 1;
                        }
                    }
                    depth -= 1;
                    // A statement that *contains* this block (an
                    // `if let`/`match`/`for` header whose scrutinee
                    // created a guard temporary) ends with the block:
                    // close its temporaries too. Slightly
                    // under-approximates `else` chains and temporaries
                    // spanning closure-argument blocks.
                    k = 0;
                    while k < active.len() {
                        if active[k].stmt && active[k].depth >= depth {
                            let s = active.remove(k);
                            self.ops.push(Op::EndScope { scope: s.id });
                        } else {
                            k += 1;
                        }
                    }
                    stmt_start = i + 1;
                    i += 1;
                    continue;
                }
                ";" if t.kind == TokKind::Punct => {
                    let d = depth;
                    let mut k = 0;
                    while k < active.len() {
                        if active[k].stmt && active[k].depth >= d {
                            let s = active.remove(k);
                            self.ops.push(Op::EndScope { scope: s.id });
                        } else {
                            k += 1;
                        }
                    }
                    stmt_start = i + 1;
                    i += 1;
                    continue;
                }
                _ => {}
            }

            // `drop(name)` releases a named guard early.
            if t.is_ident("drop")
                && i + 3 < end
                && toks[i + 1].is_punct("(")
                && toks[i + 2].kind == TokKind::Ident
                && toks[i + 3].is_punct(")")
            {
                let name = toks[i + 2].text;
                if let Some(pos) = active.iter().position(|s| s.name.as_deref() == Some(name)) {
                    let s = active.remove(pos);
                    self.ops.push(Op::EndScope { scope: s.id });
                    i += 4;
                    continue;
                }
            }

            // Candidate call/atomic: Ident followed by `(`, or
            // turbofish `Ident::<...>(`.
            if t.kind == TokKind::Ident && !KEYWORDS.contains(&t.text) {
                let name = t.text;
                let mut after = i + 1;
                if after < end
                    && toks[after].is_punct("::")
                    && after + 1 < end
                    && toks[after + 1].is_punct("<")
                {
                    let close = self.skip_angles_fwd(after + 1, end);
                    after = close;
                }
                let is_macro = after < end && toks[after].is_punct("!");
                if !is_macro && after < end && toks[after].is_punct("(") {
                    // Skip declarations: `fn name(`.
                    let prev_sig = self.prev_sig(i, start);
                    let prev_is_fn = prev_sig.map(|p| toks[p].is_ident("fn")).unwrap_or(false);
                    if !prev_is_fn {
                        let args_close = self.skip_group_fwd(after, end, "(", ")");
                        self.handle_call(
                            i,
                            name,
                            after,
                            args_close,
                            start,
                            stmt_start,
                            depth,
                            &mut active,
                            &mut next_scope,
                        );
                        // NOTE: we do not jump over the argument list —
                        // nested calls inside the arguments must also be
                        // scanned. Continue right after the name.
                        i += 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
        // Function end: close everything.
        for s in active.drain(..) {
            self.ops.push(Op::EndScope { scope: s.id });
        }
    }

    fn prev_sig(&self, i: usize, floor: usize) -> Option<usize> {
        let mut j = i;
        while j > floor {
            j -= 1;
            if self.toks[j].kind != TokKind::Comment {
                return Some(j);
            }
        }
        None
    }

    fn skip_angles_fwd(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match self.toks[j].text {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                ";" | "{" => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    fn skip_group_fwd(&self, i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            let t = &self.toks[j];
            if t.kind == TokKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            j += 1;
        }
        j
    }

    /// Walk the receiver chain ending just before the `.` that precedes
    /// token index `name_i` (the called method name). Returns None when
    /// there is no `.` (free or path call).
    fn receiver_chain(&self, name_i: usize, floor: usize) -> Option<Vec<Seg>> {
        let toks = self.toks;
        let dot = self.prev_sig(name_i, floor)?;
        if !toks[dot].is_punct(".") {
            return None;
        }
        let mut segs: Vec<Seg> = Vec::new();
        let mut j = dot; // points at a `.`; the segment is before it
        while let Some(before) = self.prev_sig(j, floor) {
            let t = &toks[before];
            if t.is_punct(")") {
                // Method call segment: skip back over the balanced
                // parens, then expect the method name.
                let open = self.match_back(before, floor, "(", ")")?;
                let m = self.prev_sig(open, floor)?;
                if toks[m].is_punct(">") {
                    return None; // turbofish receiver: give up
                }
                if toks[m].kind != TokKind::Ident {
                    return None;
                }
                segs.push(Seg::Method(toks[m].text.to_string()));
                match self.prev_sig(m, floor) {
                    Some(b) if toks[b].is_punct(".") => {
                        j = b;
                        continue;
                    }
                    Some(b) if toks[b].is_punct("::") => {
                        // `Type::method(...)` at chain base.
                        let ty = self.prev_sig(b, floor)?;
                        if toks[ty].kind == TokKind::Ident {
                            segs.push(Seg::Base(toks[ty].text.to_string()));
                        }
                        break;
                    }
                    _ => break,
                }
            } else if t.is_punct("?") {
                // `expr?.method()` — step over the `?`.
                j = before;
                continue;
            } else if t.is_punct("]") {
                return None; // indexing receiver: unresolvable
            } else if t.kind == TokKind::Ident {
                let id = t.text.to_string();
                let before_id = self.prev_sig(before, floor);
                match before_id {
                    Some(b) if toks[b].is_punct(".") => {
                        segs.push(Seg::Field(id));
                        j = b;
                        continue;
                    }
                    _ => {
                        segs.push(Seg::Base(id));
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if segs.is_empty() {
            return None;
        }
        segs.reverse();
        Some(segs)
    }

    /// Find the matching opener scanning backwards from `close_i`
    /// (which holds the closer).
    fn match_back(&self, close_i: usize, floor: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = close_i + 1;
        while j > floor {
            j -= 1;
            let t = &self.toks[j];
            if t.kind == TokKind::Punct {
                if t.text == close {
                    depth += 1;
                } else if t.text == open {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
            }
        }
        None
    }

    /// Current statement starts with `let`? Returns the binding name
    /// (None for `_`/patterns).
    fn let_binding(&self, stmt_start: usize, at: usize) -> (bool, Option<String>) {
        let toks = self.toks;
        let first = match self.sig_fwd(stmt_start, at) {
            Some(f) => f,
            None => return (false, None),
        };
        if !toks[first].is_ident("let") {
            return (false, None);
        }
        let mut j = first + 1;
        while j < at && (toks[j].is_ident("mut") || toks[j].kind == TokKind::Comment) {
            j += 1;
        }
        if j < at && toks[j].kind == TokKind::Ident && toks[j].text != "_" {
            (true, Some(toks[j].text.to_string()))
        } else {
            (true, None)
        }
    }

    fn sig_fwd(&self, mut i: usize, end: usize) -> Option<usize> {
        while i < end {
            if self.toks[i].kind != TokKind::Comment {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// True when the call's result is consumed by further chaining —
    /// the next significant token after its argument list (allowing one
    /// `?`) is `.`. A guard produced mid-chain (`.lock().get(..)`) is a
    /// statement temporary no matter what the statement binds: the
    /// `let`, if any, holds the chain's *final* value, not this guard.
    fn chained_after(&self, mut j: usize) -> bool {
        let end = self.toks.len();
        while j < end && self.toks[j].kind == TokKind::Comment {
            j += 1;
        }
        if j < end && self.toks[j].is_punct("?") {
            j += 1;
            while j < end && self.toks[j].kind == TokKind::Comment {
                j += 1;
            }
        }
        j < end && self.toks[j].is_punct(".")
    }

    /// A protocol `mixed-ordering` annotation on this line or the line
    /// above?
    fn mixed_ordering_at(&self, line: u32) -> bool {
        self.protocol_comments
            .iter()
            .any(|a| a.kind == AnnKind::MixedOrdering && (a.line == line || a.line + 1 == line))
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        name_i: usize,
        name: &str,
        args_open: usize,
        args_close: usize,
        floor: usize,
        stmt_start: usize,
        depth: i32,
        active: &mut Vec<ActiveScope>,
        next_scope: &mut u32,
    ) {
        let toks = self.toks;
        let line = toks[name_i].line;
        let chain = self.receiver_chain(name_i, floor);

        // Atomic access?
        if ATOMIC_METHODS.contains(&name) {
            let mut orderings = Vec::new();
            let mut k = args_open;
            while k + 2 < args_close {
                if toks[k].is_ident("Ordering")
                    && toks[k + 1].is_punct("::")
                    && toks[k + 2].kind == TokKind::Ident
                {
                    orderings.push(toks[k + 2].text.to_string());
                    k += 3;
                    continue;
                }
                k += 1;
            }
            if !orderings.is_empty() {
                if let Some(chain) = chain {
                    // Site-level exemption is recorded as an empty
                    // orderings list with a sentinel "exempt" entry so
                    // downstream can skip it without re-reading files.
                    let exempt = self.mixed_ordering_at(line);
                    let mut a = RawAtomic {
                        chain,
                        method: name.to_string(),
                        orderings,
                        line,
                    };
                    if exempt {
                        a.orderings.clear();
                        a.orderings.push("Exempt".to_string());
                    }
                    self.ops.push(Op::Atomic(a));
                    return;
                }
            }
        }

        // Lock acquisition with a syntactically resolvable class?
        if LOCK_METHODS.contains(&name) {
            if let Some(ch) = &chain {
                let final_name = match ch.last() {
                    Some(Seg::Field(f)) => Some(f.as_str()),
                    Some(Seg::Base(b)) if ch.len() == 1 => Some(b.as_str()),
                    _ => None,
                };
                if let Some(fname) = final_name {
                    if let Some(class) = self.class_for(fname) {
                        let class = class.to_string();
                        let (is_let, bind_name) = if self.chained_after(args_close) {
                            (false, None)
                        } else {
                            self.let_binding(stmt_start, name_i)
                        };
                        let id = *next_scope;
                        *next_scope += 1;
                        let stmt = !is_let || bind_name.is_none();
                        self.ops.push(Op::Acquire {
                            class,
                            scope: id,
                            line,
                        });
                        active.push(ActiveScope {
                            id,
                            depth,
                            name: bind_name,
                            stmt,
                        });
                        return;
                    }
                }
            }
        }

        // Plain call.
        let recv = match chain {
            Some(ch) => Recv::Chain(ch),
            None => {
                // Path call `A::name(`?
                let prev = self.prev_sig(name_i, floor);
                match prev {
                    Some(p) if toks[p].is_punct("::") => {
                        let ty = self.prev_sig(p, floor);
                        match ty {
                            Some(t) if toks[t].kind == TokKind::Ident => {
                                Recv::Path(toks[t].text.to_string())
                            }
                            _ => Recv::None,
                        }
                    }
                    _ => Recv::None,
                }
            }
        };
        let (is_let, bind_name) = if self.chained_after(args_close) {
            (false, None)
        } else {
            self.let_binding(stmt_start, name_i)
        };
        let scope = if is_let {
            let id = *next_scope;
            *next_scope += 1;
            active.push(ActiveScope {
                id,
                depth,
                name: bind_name.clone(),
                stmt: bind_name.is_none(),
            });
            Some(id)
        } else {
            None
        };
        if let (Some(bn), Recv::Chain(_) | Recv::Path(_) | Recv::None) = (&bind_name, &recv) {
            self.locals.push((
                bn.clone(),
                TyperHint::FromCall(RawCall {
                    name: name.to_string(),
                    recv: recv.clone(),
                    line,
                }),
            ));
        }
        self.ops.push(Op::Call {
            call: RawCall {
                name: name.to_string(),
                recv,
                line,
            },
            scope,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract_file("test.rs", src)
    }

    #[test]
    fn struct_fields_and_atomics() {
        let f = facts(
            "pub struct Frame { pub id: PageId, data: RwLock<Page>, pin: AtomicU32, dirty: AtomicBool }",
        );
        assert_eq!(f.structs.len(), 1);
        let s = &f.structs[0];
        assert_eq!(s.name, "Frame");
        let dirty = s.fields.iter().find(|x| x.name == "dirty").unwrap();
        assert!(dirty.is_atomic);
        let data = s.fields.iter().find(|x| x.name == "data").unwrap();
        assert_eq!(data.type_core.as_deref(), Some("Page"));
    }

    #[test]
    fn class_bindings_from_named() {
        let f = facts(
            r#"
            impl Shard {
                fn new() -> Shard {
                    Shard { frames: Mutex::named(HashMap::new(), "pool.shard.frames") }
                }
            }
            fn local() {
                let m = Mutex::named(0u32, "x.local");
            }
            "#,
        );
        assert!(f
            .classes
            .iter()
            .any(|c| c.name == "frames" && c.class == "pool.shard.frames"));
        assert!(f
            .classes
            .iter()
            .any(|c| c.name == "m" && c.class == "x.local"));
    }

    #[test]
    fn acquire_with_let_scope_and_drop() {
        let f = facts(
            r#"
            impl P {
                fn new() -> P { P { frames: Mutex::named((), "c.frames") } }
                fn go(&self) {
                    let g = self.frames.lock();
                    touch();
                    drop(g);
                    after();
                }
            }
            "#,
        );
        let go = f.fns.iter().find(|x| x.name == "go").unwrap();
        let kinds: Vec<String> = go
            .ops
            .iter()
            .map(|o| match o {
                Op::Acquire { class, .. } => format!("acq:{class}"),
                Op::Call { call, .. } => format!("call:{}", call.name),
                Op::EndScope { .. } => "end".into(),
                Op::Atomic(a) => format!("atomic:{}", a.method),
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["acq:c.frames", "call:touch", "end", "call:after"]
        );
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let f = facts(
            r#"
            impl P {
                fn new() -> P { P { deps: Mutex::named((), "c.deps") } }
                fn go(&self) {
                    self.deps.lock().insert(1);
                    after();
                }
            }
            "#,
        );
        let go = f.fns.iter().find(|x| x.name == "go").unwrap();
        // Acquire, (insert call), EndScope at the `;`, then after().
        let mut saw_end_before_after = false;
        let mut ended = false;
        for o in &go.ops {
            match o {
                Op::EndScope { .. } => ended = true,
                Op::Call { call, .. } if call.name == "after" => {
                    saw_end_before_after = ended;
                }
                _ => {}
            }
        }
        assert!(saw_end_before_after);
    }

    #[test]
    fn atomic_orderings_extracted() {
        let f = facts(
            r#"
            impl W {
                fn publish(&self) {
                    self.durable.fetch_max(1, Ordering::AcqRel);
                    let v = self.durable.load(Ordering::Acquire);
                }
            }
            "#,
        );
        let p = f.fns.iter().find(|x| x.name == "publish").unwrap();
        let atomics: Vec<(&str, &str)> = p
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Atomic(a) => Some((a.method.as_str(), a.orderings[0].as_str())),
                _ => None,
            })
            .collect();
        assert_eq!(atomics, vec![("fetch_max", "AcqRel"), ("load", "Acquire")]);
    }

    #[test]
    fn annotations_attach_to_fn() {
        let f = facts(
            r#"
            impl L {
                /// Appends a record.
                // protocol: wal-append
                pub fn append(&self) -> u64 { 0 }
            }
            "#,
        );
        let a = f.fns.iter().find(|x| x.name == "append").unwrap();
        assert!(a.anns.iter().any(|x| x.kind == AnnKind::WalAppend));
    }

    #[test]
    fn annotations_do_not_leak_onto_the_next_fn() {
        let f = facts(
            r#"
            impl L {
                // protocol: wal-append
                pub fn append(&self) {}
                pub fn tail(&self) {}
            }
            "#,
        );
        let a = f.fns.iter().find(|x| x.name == "append").unwrap();
        let t = f.fns.iter().find(|x| x.name == "tail").unwrap();
        assert!(a.anns.iter().any(|x| x.kind == AnnKind::WalAppend));
        assert!(
            t.anns.is_empty(),
            "tail is within the 6-line window but the annotation is consumed"
        );
    }

    #[test]
    fn cfg_test_mods_are_skipped() {
        let f = facts(
            r#"
            fn real() {}
            #[cfg(test)]
            mod tests {
                fn fake() {}
            }
            "#,
        );
        assert!(f.fns.iter().any(|x| x.name == "real"));
        assert!(!f.fns.iter().any(|x| x.name == "fake"));
    }

    #[test]
    fn receiver_chains() {
        let f = facts(
            r#"
            impl T {
                fn go(&self) {
                    self.pool.fetch(id).unwrap().write();
                    helper(1);
                    LeafView::new(page);
                }
            }
            "#,
        );
        let go = f.fns.iter().find(|x| x.name == "go").unwrap();
        let calls: Vec<&RawCall> = go
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Call { call, .. } => Some(call),
                _ => None,
            })
            .collect();
        let w = calls.iter().find(|c| c.name == "write").unwrap();
        match &w.recv {
            Recv::Chain(ch) => {
                assert_eq!(
                    ch,
                    &vec![
                        Seg::Base("self".into()),
                        Seg::Field("pool".into()),
                        Seg::Method("fetch".into()),
                        Seg::Method("unwrap".into()),
                    ]
                );
            }
            other => panic!("unexpected recv {other:?}"),
        }
        assert!(calls
            .iter()
            .any(|c| c.name == "helper" && c.recv == Recv::None));
        assert!(calls
            .iter()
            .any(|c| c.name == "new" && c.recv == Recv::Path("LeafView".into())));
    }

    #[test]
    fn params_and_ret_types() {
        let f =
            facts("fn build(page: &mut Page, n: usize) -> StorageResult<FrameGuard> { body() }");
        let b = &f.fns[0];
        assert_eq!(b.params[0], ("page".to_string(), Some("Page".to_string())));
        assert_eq!(b.ret.as_deref(), Some("FrameGuard"));
    }

    #[test]
    fn strip_wrapper_cases() {
        assert_eq!(
            strip_wrappers(&["Arc", "<", "dyn", "DiskManager", ">"]).as_deref(),
            Some("DiskManager")
        );
        assert_eq!(
            strip_wrappers(&["RwLockWriteGuard", "<", "'", "a", ",", "Page", ">"]).as_deref(),
            Some("Page")
        );
        assert_eq!(strip_wrappers(&["(", "u32", ",", "u32", ")"]), None);
        assert_eq!(
            strip_wrappers(&["&", "mut", "Page"]).as_deref(),
            Some("Page")
        );
    }
}
