//! A small hand-rolled Rust lexer: the foundation for the protocol checker
//! and the comment/string-aware source lint.
//!
//! Goals (and non-goals): we need a token stream that
//!
//! * never confuses comments or string literals with code,
//! * preserves line numbers for diagnostics,
//! * survives nested block comments, raw strings (`r#"..."#`), char
//!   literals (including lifetimes, which look like unterminated chars),
//!   and numeric literals with suffixes,
//! * keeps comments as tokens so `// protocol:` annotations stay visible.
//!
//! It is *not* a full Rust grammar: no macro expansion, no type checking.
//! Downstream passes work over this stream with brace matching and a few
//! deliberately simple heuristics, documented where they live.

/// Kind of a single lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `self`, `Ordering`, ...).
    Ident,
    /// Lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// Numeric literal, including suffixes (`0x1f`, `42u64`, `1_000`).
    Number,
    /// String (`"..."`), raw string (`r#"..."#`), byte string, or char
    /// literal. The payload is the *raw source text* including quotes.
    Str,
    /// Line (`//`) or block (`/* */`) comment, raw text included.
    Comment,
    /// Any punctuation/operator character sequence we care to group
    /// (`::`, `->`, `=>`, `..=`) or a single punct char.
    Punct,
}

/// One token: kind, the source slice, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Raw source slice of the token.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl<'a> Tok<'a> {
    /// True for a punct token with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// True for an ident token with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Lex `src` into tokens. Comments are kept; whitespace is dropped.
///
/// The lexer is total: on malformed input (unterminated string, stray
/// byte) it degrades by consuming a single character as punctuation
/// rather than failing, so the checker can always produce *some* view
/// of a file.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::with_capacity(src.len() / 6);
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines inside src[start..end) and advance `line`.
    fn bump_lines(bytes: &[u8], start: usize, end: usize, line: &mut u32) {
        for &b in &bytes[start..end] {
            if b == b'\n' {
                *line += 1;
            }
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let start_line = line;

        // Whitespace.
        if b.is_ascii_whitespace() {
            if b == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if b == b'/' && i + 1 < bytes.len() {
            match bytes[i + 1] {
                b'/' => {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Comment,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
                b'*' => {
                    i += 2;
                    let mut depth = 1usize;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            if bytes[i] == b'\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Comment,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
                _ => {}
            }
        }

        // Raw strings: r"..."  r#"..."#  br##"..."## etc.
        if b == b'r' || b == b'b' {
            if let Some((end, nl_end)) = try_raw_string(bytes, i) {
                bump_lines(bytes, start, end, &mut line);
                let _ = nl_end;
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: &src[start..end],
                    line: start_line,
                });
                i = end;
                continue;
            }
        }

        // Identifiers / keywords (also swallows the `b` of b'x' handled above).
        if b == b'_' || b.is_ascii_alphabetic() {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            // b"..." / b'...' prefix: if the ident is exactly `b` and a
            // quote follows, fall through to the literal cases below by
            // not consuming here.
            if !(j == i + 1
                && b == b'b'
                && j < bytes.len()
                && (bytes[j] == b'"' || bytes[j] == b'\''))
            {
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: &src[i..j],
                    line: start_line,
                });
                i = j;
                continue;
            }
            i = j; // position on the quote; the cases below consume it
        }

        let b = bytes[i];
        let lit_start = start; // include any b prefix in the token text

        // String literal. Newlines are counted over the whole span after
        // scanning, so line-continuation escapes (`\` + newline) — which
        // the escape arm skips in one step — still advance the counter.
        if b == b'"' {
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let j = j.min(src.len());
            bump_lines(bytes, i, j, &mut line);
            toks.push(Tok {
                kind: TokKind::Str,
                text: &src[lit_start..j],
                line: start_line,
            });
            i = j;
            continue;
        }

        // Char literal vs lifetime. A lifetime is `'ident` not followed
        // by a closing quote; `'a'` is a char.
        if b == b'\'' {
            let j = i + 1;
            if j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphabetic()) {
                // Scan the ident run; if the next byte is NOT `'`, it is
                // a lifetime.
                let mut k = j + 1;
                while k < bytes.len() && (bytes[k] == b'_' || bytes[k].is_ascii_alphanumeric()) {
                    k += 1;
                }
                if k >= bytes.len() || bytes[k] != b'\'' {
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: &src[i..k],
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
            // Char literal: consume until the closing quote, honoring
            // escapes.
            let mut k = i + 1;
            while k < bytes.len() {
                match bytes[k] {
                    b'\\' => k += 2,
                    b'\'' => {
                        k += 1;
                        break;
                    }
                    _ => k += 1,
                }
            }
            let k = k.min(src.len());
            bump_lines(bytes, i, k, &mut line);
            toks.push(Tok {
                kind: TokKind::Str,
                text: &src[lit_start..k],
                line: start_line,
            });
            i = k;
            continue;
        }

        // Numbers (decimal, hex/oct/bin, underscores, suffixes, floats).
        if b.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len()
                && (bytes[j].is_ascii_alphanumeric()
                    || bytes[j] == b'_'
                    || (bytes[j] == b'.' && j + 1 < bytes.len() && bytes[j + 1].is_ascii_digit()))
            {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text: &src[i..j],
                line: start_line,
            });
            i = j;
            continue;
        }

        // Multi-char puncts we want to keep atomic (longest first).
        const MULTI: &[&str] = &[
            "..=", "::", "->", "=>", "..", "&&", "||", "<<", ">>", "==", "!=", "<=", ">=", "+=",
            "-=", "*=", "/=", "|=", "&=", "^=",
        ];
        let rest = &src[i..];
        let mut matched = false;
        for m in MULTI {
            if rest.starts_with(m) {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: &src[i..i + m.len()],
                    line: start_line,
                });
                i += m.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        // Single punct char (or degradation path for anything else).
        let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
        toks.push(Tok {
            kind: TokKind::Punct,
            text: &src[i..i + ch_len],
            line: start_line,
        });
        i += ch_len;
    }

    toks
}

/// Try to lex a raw (byte) string starting at `i`. Returns `(end, end)` of
/// the literal if one starts here.
fn try_raw_string(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < bytes.len() && seen < hashes && bytes[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some((k, k));
            }
        }
        j += 1;
    }
    Some((bytes.len(), bytes.len()))
}

/// Render the *code-only* view of a source file, line by line: comments
/// and the contents of string/char literals are blanked (quotes kept so
/// column structure stays plausible), everything else passes through.
///
/// `srclint` matches its needles against these lines, which is what makes
/// it immune to the "pattern inside a string literal or block comment"
/// false-positive class.
pub fn code_lines(src: &str) -> Vec<String> {
    let n_lines = src.lines().count().max(1);
    let mut out: Vec<String> = vec![String::new(); n_lines];
    for t in lex(src) {
        let idx = (t.line as usize).saturating_sub(1);
        match t.kind {
            TokKind::Comment => {}
            TokKind::Str => {
                if idx < out.len() {
                    let line = &mut out[idx];
                    if !line.is_empty() {
                        line.push(' ');
                    }
                    line.push_str("\"\"");
                }
            }
            _ => {
                // Multi-line tokens other than strings/comments do not
                // exist, so the token lands wholly on its start line.
                if idx < out.len() {
                    let line = &mut out[idx];
                    if !line.is_empty() {
                        line.push(' ');
                    }
                    line.push_str(t.text);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r##"
// self.x.load(Ordering::Relaxed) in a comment
let s = "self.y.load(Ordering::Relaxed)";
/* block
   self.z.store(1, Ordering::Relaxed)
*/
let t = r#"raw Ordering::Relaxed"#;
self.real.load(Ordering::Relaxed);
"##;
        let lines = code_lines(src);
        let joined = lines.join("\n");
        assert!(!joined.contains("self . x"));
        assert!(!joined.contains("self . y") && !joined.contains("self.y"));
        assert!(!joined.contains("self.z"));
        assert!(!joined.contains("raw"));
        // The real access survives (tokens joined by single spaces).
        assert!(joined.contains("self . real . load ( Ordering :: Relaxed )"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ still comment */ fn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Comment);
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "'x'"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r####"let s = r##"contains "# inside"##; x"####);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.starts_with("r##")));
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = lex(r#"let a = b"bytes"; let c = b'q'; done"#);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "b'q'"));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "let a = \"one\ntwo\";\nfn g() {}";
        let toks = lex(src);
        let g = toks.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 3);
    }

    #[test]
    fn line_continuation_escape_still_counts_lines() {
        // The `\` + newline escape is skipped in one step by the string
        // scanner; the newline must still advance the line counter.
        let src = "let a = \"one \\\n    two\";\nfn g() {}";
        let toks = lex(src);
        let g = toks.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 3);
    }

    #[test]
    fn multi_char_puncts_stay_atomic() {
        let toks = lex("a::b -> c => d..=e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>", "..="]);
    }
}
