//! Findings and reports shared by every checker.

use std::fmt;

use obr_storage::{Lsn, PageId};

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but not provably wrong (e.g. a crash-shaped log tail).
    Warning,
    /// A violated invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One violated (or suspicious) invariant, anchored to the page and/or LSN
/// it was observed at.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which checker produced this (`"fsck"`, `"locks"`, `"wal"`).
    pub checker: &'static str,
    /// Stable short identifier of the invariant, e.g. `"leaf-key-order"`.
    pub code: &'static str,
    /// Severity of the violation.
    pub severity: Severity,
    /// The page the finding names, when page-anchored.
    pub page: Option<PageId>,
    /// The log sequence number the finding names, when log-anchored.
    pub lsn: Option<Lsn>,
    /// Human-readable description of what was expected and what was found.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}", self.checker, self.severity, self.code)?;
        if let Some(p) = self.page {
            write!(f, " page={p}")?;
        }
        if let Some(l) = self.lsn {
            write!(f, " lsn={l}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The outcome of one checker run: findings plus free-form summary lines.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Informational summary lines (never affect [`Report::is_clean`]).
    pub info: Vec<String>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// True when no finding of any severity was recorded.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of [`Severity::Error`] findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// The most severe finding recorded, or `None` on a clean report.
    /// Severity derives `Ord` with `Warning < Error`, so callers can gate
    /// exit codes on `worst_severity() >= Some(Severity::Error)`.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// True when the report holds at least one [`Severity::Error`] finding.
    /// Warnings (crash-shaped tails, empty units) do not trip this.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Record an error finding.
    pub fn error(
        &mut self,
        checker: &'static str,
        code: &'static str,
        page: Option<PageId>,
        lsn: Option<Lsn>,
        detail: impl Into<String>,
    ) {
        self.findings.push(Finding {
            checker,
            code,
            severity: Severity::Error,
            page,
            lsn,
            detail: detail.into(),
        });
    }

    /// Record a warning finding.
    pub fn warning(
        &mut self,
        checker: &'static str,
        code: &'static str,
        page: Option<PageId>,
        lsn: Option<Lsn>,
        detail: impl Into<String>,
    ) {
        self.findings.push(Finding {
            checker,
            code,
            severity: Severity::Warning,
            page,
            lsn,
            detail: detail.into(),
        });
    }

    /// Add an informational summary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.info.push(line.into());
    }

    /// Append every finding and note of `other` to `self`.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.info.extend(other.info);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.info {
            writeln!(f, "  {line}")?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        if self.findings.is_empty() {
            writeln!(f, "  clean: no findings")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_until_a_finding_lands() {
        let mut r = Report::new();
        r.note("checked 5 pages");
        assert!(r.is_clean());
        r.warning("fsck", "odd", Some(PageId(3)), None, "looks odd");
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 0);
        r.error("wal", "torn", None, Some(Lsn(7)), "torn tail");
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
        let mut r = Report::new();
        assert_eq!(r.worst_severity(), None);
        assert!(!r.has_errors());
        r.warning("wal", "empty-unit", None, None, "w");
        assert_eq!(r.worst_severity(), Some(Severity::Warning));
        assert!(!r.has_errors());
        r.error("fsck", "lost-page", None, None, "e");
        assert_eq!(r.worst_severity(), Some(Severity::Error));
        assert!(r.has_errors());
    }

    #[test]
    fn display_names_page_and_lsn() {
        let mut r = Report::new();
        r.error("fsck", "chain", Some(PageId(9)), None, "broken chain");
        let s = r.to_string();
        assert!(s.contains("page=9"), "{s}");
        assert!(s.contains("chain"), "{s}");
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.error("fsck", "x", None, None, "a");
        let mut b = Report::new();
        b.error("wal", "y", None, None, "b");
        b.note("n");
        a.merge(b);
        assert_eq!(a.findings.len(), 2);
        assert_eq!(a.info.len(), 1);
    }
}
